"""Ablation — all-to-all backdoors (the paper's stated limitation)."""

from repro.eval.experiments import ablations
from conftest import run_once


def test_ablation_all_to_all(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, ablations.run_all_to_all, bench_profile, bench_seed)
    assert len(result["rows"]) == 2
