"""Ablation — meta-classifier family (beyond the paper's tables)."""

from repro.eval.experiments import ablations
from conftest import run_once


def test_ablation_meta_classifier(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, ablations.run_meta_classifier, bench_profile, bench_seed)
    assert result["rows"]
