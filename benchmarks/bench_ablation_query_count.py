"""Ablation — number of query samples q in the meta-feature."""

from repro.eval.experiments import ablations
from conftest import run_once


def test_ablation_query_count(benchmark, bench_profile, bench_seed):
    result = run_once(
        benchmark, ablations.run_query_count, bench_profile, bench_seed, query_counts=(2, 4),
    )
    assert result["rows"]
