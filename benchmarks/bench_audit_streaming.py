"""Streaming vs. batch audit: time-to-first-verdict and throughput.

Fits one BPROM detector, builds a fleet of suspicious models, then screens the
same catalogue twice: through the synchronous ``AuditService.audit`` batch
path (no verdict until the whole batch finishes) and through
``AsyncAuditService.stream`` (verdicts yielded as models finish, bounded
in-flight backpressure).  Correctness is asserted on every run — streaming
verdicts must be bit-identical to the batch report — so the benchmark doubles
as an equivalence check.  Results are written as machine-readable JSON so the
perf trajectory can be tracked across commits.

Run with:  PYTHONPATH=src python benchmarks/bench_audit_streaming.py \
               [--profile tiny|fast|bench] [--arch mlp] [--workers 4] \
               [--models 8] [--max-in-flight 4] [--json BENCH_audit_streaming.json]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.config import RuntimeConfig, get_profile
from repro.core.detector import BpromDetector
from repro.datasets.registry import load_dataset
from repro.models.registry import build_classifier
from repro.runtime import AsyncAuditService, AuditService


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="fast", help="experiment profile preset")
    parser.add_argument("--arch", default="resnet18", help="suspicious/shadow architecture")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--backend", default="thread", choices=("thread", "process"))
    parser.add_argument("--models", type=int, default=8, help="catalogue size")
    parser.add_argument("--max-in-flight", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        default="BENCH_audit_streaming.json",
        help="output path for machine-readable results",
    )
    args = parser.parse_args()

    profile = get_profile(args.profile)
    runtime = RuntimeConfig(
        workers=args.workers, backend=args.backend, max_in_flight=args.max_in_flight
    )
    train, test = load_dataset("cifar10", profile, seed=args.seed)
    target_train, target_test = load_dataset("stl10", profile, seed=args.seed)

    print(
        f"profile={profile.name} arch={args.arch} models={args.models} "
        f"workers={args.workers} backend={args.backend} cores={os.cpu_count() or 1}"
    )

    print("fitting the detector once ...")
    detector = BpromDetector(
        profile=profile, architecture=args.arch, seed=args.seed, runtime=runtime
    )
    detector.fit(test, target_train, target_test)

    print(f"building a catalogue of {args.models} vendor models ...")
    catalogue = {}
    for index in range(args.models):
        model = build_classifier(
            args.arch,
            train.num_classes,
            image_size=profile.image_size,
            rng=1000 + index,
            name=f"vendor-{index}",
        )
        model.fit(train, profile.classifier, rng=2000 + index)
        catalogue[model.name] = model

    print("batch path (AuditService.audit):")
    batch_service = AuditService(detector, runtime=runtime)
    start = time.perf_counter()
    batch_report = batch_service.audit(catalogue)
    batch_total_s = time.perf_counter() - start
    # the batch path yields nothing until the whole report is assembled
    print(f"  total {batch_total_s:8.2f}s   first verdict {batch_total_s:8.2f}s")

    print("streaming path (AsyncAuditService.stream):")
    stream_service = AsyncAuditService(detector, runtime=runtime)
    streamed = []
    first_verdict_s = None
    start = time.perf_counter()
    for verdict in stream_service.stream(catalogue):
        if first_verdict_s is None:
            first_verdict_s = time.perf_counter() - start
        streamed.append(verdict)
    stream_total_s = time.perf_counter() - start
    print(f"  total {stream_total_s:8.2f}s   first verdict {first_verdict_s:8.2f}s")

    expected = {v.name: v for v in batch_report}
    assert len(streamed) == len(batch_report)
    for verdict in streamed:
        reference = expected[verdict.name]
        assert verdict.backdoor_score == reference.backdoor_score, verdict.name
        assert verdict.is_backdoored == reference.is_backdoored, verdict.name
        assert verdict.prompted_accuracy == reference.prompted_accuracy, verdict.name
    print("  streaming verdicts bit-identical to the batch report")

    results = {
        "benchmark": "audit_streaming",
        "profile": profile.name,
        "arch": args.arch,
        "workers": args.workers,
        "backend": args.backend,
        "models": args.models,
        "max_in_flight": stream_service.max_in_flight,
        "batch_total_seconds": batch_total_s,
        "batch_first_verdict_seconds": batch_total_s,
        "stream_total_seconds": stream_total_s,
        "stream_first_verdict_seconds": first_verdict_s,
        "first_verdict_speedup": batch_total_s / max(first_verdict_s, 1e-9),
        "batch_models_per_second": args.models / max(batch_total_s, 1e-9),
        "stream_models_per_second": args.models / max(stream_total_s, 1e-9),
        "verdicts_bit_identical": True,
    }
    with open(args.json, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print(
        f"time-to-first-verdict speedup {results['first_verdict_speedup']:.2f}x; "
        f"results written to {args.json}"
    )


if __name__ == "__main__":
    main()
