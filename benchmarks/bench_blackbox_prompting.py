"""Sequential vs. batched black-box prompting: seconds-per-inspection and QPS.

Fits one BPROM detector, builds a fleet of suspicious models, then inspects
the same fleet twice: once with the sequential objective (one ``query()`` per
CMA-ES candidate, re-resizing the optimisation batch every call) and once with
the batched query engine (one megabatch ``query()`` per generation over a
cached base canvas).  Correctness is asserted on every run — batched verdicts
must match the sequential path (scores within 1e-9, identical labels, same
query budget) — so the benchmark doubles as an equivalence check.  Results are
written as machine-readable JSON so the perf trajectory can be tracked across
commits.

Run with:  PYTHONPATH=src python benchmarks/bench_blackbox_prompting.py \
               [--profile tiny|fast|bench] [--arch mlp] [--models 4] \
               [--json BENCH_prompting.json]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace

from repro.config import get_profile
from repro.core.detector import BpromDetector
from repro.datasets.registry import load_dataset
from repro.models.registry import build_classifier


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="fast", help="experiment profile preset")
    parser.add_argument("--arch", default="mlp", help="suspicious/shadow architecture")
    parser.add_argument("--models", type=int, default=4, help="fleet size")
    parser.add_argument(
        "--iterations", type=int, default=None, help="override blackbox_iterations"
    )
    parser.add_argument(
        "--population", type=int, default=None, help="override blackbox_population"
    )
    parser.add_argument(
        "--image-size",
        type=int,
        default=None,
        help="override the profile's image_size (and the prompt canvas to match)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="timed passes per path; the minimum is reported (noise robustness)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        default="BENCH_prompting.json",
        help="output path for machine-readable results",
    )
    args = parser.parse_args()

    profile = get_profile(args.profile)
    overrides = {}
    if args.iterations is not None:
        overrides["blackbox_iterations"] = args.iterations
    if args.population is not None:
        overrides["blackbox_population"] = args.population
    if args.image_size is not None:
        # the prompt canvas is the suspicious model's input, so both move together
        overrides["source_size"] = args.image_size
        profile = profile.with_overrides(image_size=args.image_size)
    if overrides:
        profile = profile.with_overrides(prompt=replace(profile.prompt, **overrides))
    train, test = load_dataset("cifar10", profile, seed=args.seed)
    target_train, target_test = load_dataset("stl10", profile, seed=args.seed)

    prompt_config = profile.prompt
    print(
        f"profile={profile.name} arch={args.arch} models={args.models} "
        f"iterations={prompt_config.blackbox_iterations} "
        f"population={prompt_config.blackbox_population} cores={os.cpu_count() or 1}"
    )

    print("fitting the detector once ...")
    detector = BpromDetector(profile=profile, architecture=args.arch, seed=args.seed)
    detector.fit(test, target_train, target_test)

    print(f"building a fleet of {args.models} suspicious models ...")
    fleet = []
    for index in range(args.models):
        model = build_classifier(
            args.arch,
            train.num_classes,
            image_size=profile.image_size,
            rng=1000 + index,
            name=f"vendor-{index}",
        )
        model.fit(train, profile.classifier, rng=2000 + index)
        fleet.append(model)

    # the blackbox engine is selected by the profile's PromptConfig, read at
    # inspect time — swap it between the two timed passes so both run against
    # the *same* fitted detector state (identical meta-classifier and prompts)
    def inspect_fleet(batched: bool):
        detector.profile = profile.with_overrides(
            prompt=replace(prompt_config, blackbox_batched=batched)
        )
        start = time.perf_counter()
        results = [detector.inspect(model) for model in fleet]
        return results, time.perf_counter() - start

    # interleave the timed passes so machine-load drift hits both paths
    # equally; the minimum over repeats is reported (noise robustness)
    sequential_s = batched_s = float("inf")
    for _ in range(max(args.repeats, 1)):
        sequential_results, elapsed = inspect_fleet(batched=False)
        sequential_s = min(sequential_s, elapsed)
        batched_results, elapsed = inspect_fleet(batched=True)
        batched_s = min(batched_s, elapsed)

    print("sequential objective (one query per candidate):")
    print(f"  total {sequential_s:8.2f}s   {sequential_s / args.models:8.3f}s/inspection")
    print("batched query engine (one megabatch per generation):")
    print(f"  total {batched_s:8.2f}s   {batched_s / args.models:8.3f}s/inspection")

    for model, seq, bat in zip(fleet, sequential_results, batched_results):
        assert abs(bat.backdoor_score - seq.backdoor_score) <= 1e-9, model.name
        assert bat.is_backdoored == seq.is_backdoored, model.name
        assert bat.query_count == seq.query_count, model.name
        assert bat.query_calls <= seq.query_calls, model.name
    print("  batched verdicts match the sequential path (scores within 1e-9)")

    total_queries = sum(result.query_count for result in batched_results)
    sequential_calls = sum(result.query_calls for result in sequential_results)
    batched_calls = sum(result.query_calls for result in batched_results)
    speedup = sequential_s / max(batched_s, 1e-9)
    results = {
        "benchmark": "blackbox_prompting",
        "profile": profile.name,
        "arch": args.arch,
        "models": args.models,
        "blackbox_optimizer": prompt_config.blackbox_optimizer,
        "blackbox_iterations": prompt_config.blackbox_iterations,
        "blackbox_population": prompt_config.blackbox_population,
        "queries_per_model": total_queries // max(args.models, 1),
        "sequential_total_seconds": sequential_s,
        "batched_total_seconds": batched_s,
        "sequential_seconds_per_inspection": sequential_s / args.models,
        "batched_seconds_per_inspection": batched_s / args.models,
        "sequential_queries_per_second": total_queries / max(sequential_s, 1e-9),
        "batched_queries_per_second": total_queries / max(batched_s, 1e-9),
        "sequential_query_calls": sequential_calls,
        "batched_query_calls": batched_calls,
        "speedup": speedup,
        "verdicts_equivalent": True,
    }
    with open(args.json, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print(
        f"batched speedup {speedup:.2f}x "
        f"({results['sequential_queries_per_second']:.0f} -> "
        f"{results['batched_queries_per_second']:.0f} queries/s); "
        f"results written to {args.json}"
    )


if __name__ == "__main__":
    main()
