"""Figure 3 — class-subspace inconsistency of clean vs infected models."""

from repro.eval.experiments import figure03_subspace
from conftest import run_once


def test_figure03_subspace(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, figure03_subspace.run_figure3, bench_profile, bench_seed)
    assert len(result["rows"]) == 2
