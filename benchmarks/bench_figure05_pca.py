"""Figure 5 — PCA of prompted meta-features across many models."""

from repro.eval.experiments import figure03_subspace
from conftest import run_once


def test_figure05_pca(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, figure03_subspace.run_figure5, bench_profile, bench_seed)
    assert result["rows"]
