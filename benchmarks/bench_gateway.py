"""Multi-tenant gateway vs. sequential per-tenant audits: TTFV and throughput.

Stands two tenants up through the :class:`~repro.runtime.registry.
DetectorRegistry` (two architecture families on two suspicious tasks), builds
a mixed vendor catalogue, then screens it twice:

* **baseline** — one synchronous ``AuditService.audit`` per tenant, run back
  to back: no verdict until the first tenant's whole batch finishes, and the
  second tenant waits for the first;
* **gateway** — one ``AuditGateway.stream`` over the interleaved submissions:
  routing by architecture family, shared in-flight budget, merged
  completion-ordered verdicts;
* **verdict cache** — a zipf-distributed redundant fleet workload (production
  audit traffic resubmits the same popular models over and over) screened
  twice: through an uncached gateway (every submission pays the full
  inspection) and through a cache-enabled gateway (warm submissions are
  served from the fingerprint-keyed verdict cache for free).  Reports the
  cache hit-rate, the amortised queries-per-verdict and the warm-vs-cold
  verdicts/s speedup.
* **worker-pool backends** — the same interleaved workload screened through a
  ``gateway_backend="thread"`` and a ``gateway_backend="process"`` gateway
  over one warm store (process workers hydrate the fitted detectors by
  registry key — zero refits).  Verdicts must be **bit-identical** across
  backends (exact float equality, not a tolerance), and the report carries
  ``process_speedup`` plus ``cpu_count`` so the versioned baseline can gate
  the multi-core win on runners that actually have the cores.

Correctness is asserted on every run — gateway verdicts must match the
per-tenant baseline to <= 1e-9 with identical labels, and cached verdicts
must match the uncached path exactly — so the benchmark doubles as the
acceptance check for the gateway's equivalence property.  Results are
written as machine-readable JSON so the perf trajectory can be tracked
across commits.

Run with:  PYTHONPATH=src python benchmarks/bench_gateway.py \
               [--profile tiny|fast|bench] [--arch-a mlp] [--arch-b resnet18] \
               [--models 4] [--workers 2] [--max-in-flight 4] \
               [--zipf-submissions 48] [--zipf-exponent 1.1] \
               [--json BENCH_gateway.json]
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.config import RuntimeConfig, get_profile
from repro.datasets.registry import load_dataset
from repro.models.registry import build_classifier
from repro.obs import get_tracer
from repro.obs.export import export_jsonl, export_metrics
from repro.obs.report import queries_per_verdict, render_report, stage_summary
from repro.runtime import AuditGateway, AuditService, DetectorRegistry, VerdictCache
from repro.runtime.registry import DetectorSpec


def build_catalogue(profile, architecture, train, count, seed):
    catalogue = {}
    for index in range(count):
        name = f"{architecture}-vendor-{index}"
        model = build_classifier(
            architecture, train.num_classes, image_size=profile.image_size,
            rng=seed + index, name=name,
        )
        model.fit(train, profile.classifier, rng=seed + 100 + index)
        catalogue[name] = model
    return catalogue


def zipf_draws(names, count, exponent, seed):
    """A redundant fleet workload: ``count`` submissions, popularity ~ 1/rank^s."""
    ranks = np.arange(1, len(names) + 1, dtype=np.float64)
    probabilities = ranks ** -float(exponent)
    probabilities /= probabilities.sum()
    rng = np.random.default_rng(seed)
    return [names[i] for i in rng.choice(len(names), size=count, p=probabilities)]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="tiny", help="experiment profile preset")
    parser.add_argument("--arch-a", default="mlp", help="tenant A architecture")
    parser.add_argument("--arch-b", default="resnet18", help="tenant B architecture")
    parser.add_argument("--models", type=int, default=4, help="catalogue size per tenant")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--backend", default="thread", choices=("thread", "process"))
    parser.add_argument("--max-in-flight", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--zipf-submissions", type=int, default=None,
        help="redundant-workload length (default: 8x the distinct catalogue)",
    )
    parser.add_argument(
        "--zipf-exponent", type=float, default=1.1,
        help="zipf popularity exponent for the redundant workload",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="registry store root (default: a fresh temp dir, i.e. a cold fit)",
    )
    parser.add_argument(
        "--json", default="BENCH_gateway.json",
        help="output path for machine-readable results",
    )
    args = parser.parse_args()

    profile = get_profile(args.profile)
    scratch = None
    cache_dir = args.cache_dir
    if cache_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="bench-gateway-")
        cache_dir = str(Path(scratch.name) / "store")
    runtime = RuntimeConfig(workers=args.workers, backend=args.backend, cache_dir=cache_dir)

    target_train, target_test = load_dataset("stl10", profile, seed=args.seed)
    train_a, test_a = load_dataset("cifar10", profile, seed=args.seed)
    train_b, test_b = load_dataset("svhn", profile, seed=args.seed)
    print(
        f"profile={profile.name} tenants=({args.arch_a} on cifar10, {args.arch_b} on svhn) "
        f"models={args.models}/tenant workers={args.workers} backend={args.backend} "
        f"cores={os.cpu_count() or 1}"
    )

    print("standing tenants up through the detector registry ...")
    registry = DetectorRegistry(runtime=runtime)
    spec_a = DetectorSpec(defense="bprom", profile=profile, architecture=args.arch_a, seed=args.seed)
    spec_b = DetectorSpec(defense="bprom", profile=profile, architecture=args.arch_b, seed=args.seed)
    start = time.perf_counter()
    entry_a = registry.get_or_fit(spec_a, test_a, target_train, target_test)
    entry_b = registry.get_or_fit(spec_b, test_b, target_train, target_test)
    registry_s = time.perf_counter() - start
    print(f"  tenants ready in {registry_s:6.2f}s (A: {entry_a.source}, B: {entry_b.source})")

    print(f"building {2 * args.models} vendor models ...")
    catalogue_a = build_catalogue(profile, args.arch_a, train_a, args.models, seed=1000)
    catalogue_b = build_catalogue(profile, args.arch_b, train_b, args.models, seed=2000)

    print("baseline (two sequential AuditService.audit runs):")
    start = time.perf_counter()
    report_a = AuditService(entry_a.detector, runtime=runtime).audit(catalogue_a)
    baseline_first_s = time.perf_counter() - start  # nothing lands before batch A ends
    report_b = AuditService(entry_b.detector, runtime=runtime).audit(catalogue_b)
    baseline_total_s = time.perf_counter() - start
    print(f"  total {baseline_total_s:8.2f}s   first verdict {baseline_first_s:8.2f}s")

    print("gateway (merged multi-tenant stream):")
    with AuditGateway(registry=registry, max_in_flight=args.max_in_flight) as gateway:
        gateway.register_tenant("tenant-a", spec_a, test_a, target_train, target_test)
        gateway.register_tenant("tenant-b", spec_b, test_b, target_train, target_test)
        # interleave tenants so routing alternates and both pools stay busy
        submissions = [
            item
            for pair in zip(catalogue_a.items(), catalogue_b.items())
            for item in pair
        ]
        streamed = []
        first_verdict_s = None
        start = time.perf_counter()
        for verdict in gateway.stream(submissions):
            if first_verdict_s is None:
                first_verdict_s = time.perf_counter() - start
            streamed.append(verdict)
        gateway_total_s = time.perf_counter() - start
        stats = gateway.stats()
    print(f"  total {gateway_total_s:8.2f}s   first verdict {first_verdict_s:8.2f}s")

    expected = {v.name: v for v in report_a + report_b}
    by_tenant = {"tenant-a": set(catalogue_a), "tenant-b": set(catalogue_b)}
    assert len(streamed) == len(expected)
    max_deviation = 0.0
    for verdict in streamed:
        reference = expected[verdict.name]
        deviation = abs(verdict.backdoor_score - reference.backdoor_score)
        max_deviation = max(max_deviation, deviation)
        assert deviation <= 1e-9, (verdict.name, deviation)
        assert verdict.is_backdoored == reference.is_backdoored, verdict.name
        assert verdict.name in by_tenant[verdict.tenant], verdict.name
    print(f"  gateway verdicts match per-tenant audits (max deviation {max_deviation:.2e})")

    total_models = 2 * args.models
    print("worker-pool backends (thread vs process, one warm store):")
    backend_runs = {}
    for backend_name in ("thread", "process"):
        # telemetry ON only for the process leg: the bit-identity assert below
        # then doubles as the telemetry ON == OFF acceptance check, and the
        # trace exercises the cross-process span shipping path
        backend_runtime = runtime.with_overrides(
            gateway_backend=backend_name,
            gateway_workers=args.workers,
            telemetry=(backend_name == "process"),
        )
        # a fresh registry over the same store: detectors warm-load, and the
        # process pool's workers hydrate from the same artifacts by key
        backend_registry = DetectorRegistry(runtime=backend_runtime)
        with AuditGateway(
            registry=backend_registry, max_in_flight=args.max_in_flight
        ) as backend_gateway:
            backend_gateway.register_tenant("tenant-a", spec_a, test_a, target_train, target_test)
            backend_gateway.register_tenant("tenant-b", spec_b, test_b, target_train, target_test)
            # fresh model copies per run: concurrent inspections must not share
            # forward-pass state, and the process backend pickles each upload
            workload = [(name, copy.deepcopy(model)) for name, model in submissions]
            start = time.perf_counter()
            verdicts = {v.name: v for v in backend_gateway.stream(workload)}
            elapsed = time.perf_counter() - start
            backend_stats = backend_gateway.stats()
            pool_stats = backend_stats["worker_pool"]
        backend_runs[backend_name] = (verdicts, elapsed)
        if backend_name == "process":
            process_metrics = backend_stats["telemetry"]["metrics"]
        print(
            f"  {backend_name:7s} total {elapsed:8.2f}s "
            f"({total_models / max(elapsed, 1e-9):.2f} verdicts/s, "
            f"pool {pool_stats['workers']}x{pool_stats['backend']}, "
            f"{pool_stats['tasks']} tasks)"
        )
    # harvest the process leg's trace before the zipf sections start (the
    # tracer is process-global and stays enabled once a gateway turned it on)
    tracer = get_tracer()
    trace_spans = tracer.drain()
    tracer.disable()
    thread_verdicts, thread_s = backend_runs["thread"]
    process_verdicts, process_s = backend_runs["process"]
    assert set(thread_verdicts) == set(process_verdicts)
    for name, thread_verdict in thread_verdicts.items():
        process_verdict = process_verdicts[name]
        # bit-identity, not a tolerance: hydration round-trips exactly and the
        # per-key seed derivation is shared, so any drift is a real bug
        assert process_verdict.backdoor_score == thread_verdict.backdoor_score, name
        assert process_verdict.is_backdoored == thread_verdict.is_backdoored, name
        assert process_verdict.query_count == thread_verdict.query_count, name
    process_speedup = thread_s / max(process_s, 1e-9)
    cpu_count = os.cpu_count() or 1
    print(
        f"  process verdicts bit-identical to thread (telemetry ON == OFF); "
        f"process speedup {process_speedup:.2f}x on {cpu_count} core(s)"
    )

    trace_path = Path(args.json).with_name("TRACE_gateway.jsonl")
    metrics_path = Path(args.json).with_name("METRICS_gateway.json")
    export_jsonl(trace_spans, str(trace_path))
    export_metrics(process_metrics, str(metrics_path))
    stage_stats = stage_summary(trace_spans)
    economy = queries_per_verdict(trace_spans)
    print(render_report(trace_spans, top=2, title="process-backend flight recorder"))
    print(f"  trace -> {trace_path}   metrics -> {metrics_path}")

    merged = {**catalogue_a, **catalogue_b}
    submission_count = args.zipf_submissions
    if submission_count is None:
        submission_count = 8 * len(merged)
    draws = zipf_draws(sorted(merged), submission_count, args.zipf_exponent, args.seed)
    distinct = len(set(draws))
    print(
        f"redundant fleet workload: {submission_count} zipf submissions "
        f"(s={args.zipf_exponent}) over {distinct} distinct models"
    )

    def uploads():
        # every submission is its own upload: a fresh copy of the weights, as
        # a fleet of independent vendors would produce (and model forward
        # passes are not safe to share across concurrent inspections);
        # materialised outside the timed region — upload ingestion is not the
        # serving path under measurement
        return [(name, copy.deepcopy(merged[name])) for name in draws]

    print("  uncached gateway (every submission pays the full inspection):")
    with AuditGateway(registry=registry, max_in_flight=args.max_in_flight) as uncached:
        uncached.register_tenant("tenant-a", spec_a, test_a, target_train, target_test)
        uncached.register_tenant("tenant-b", spec_b, test_b, target_train, target_test)
        workload = uploads()
        start = time.perf_counter()
        uncached_verdicts = list(uncached.stream(workload))
        uncached_zipf_s = time.perf_counter() - start
        uncached_queries = sum(
            t["query_count"] for t in uncached.stats()["tenants"].values()
        )
    # repeated submissions of one key are deterministic, so the first
    # occurrence is the reference every cached serving must match exactly
    reference = {}
    for verdict in uncached_verdicts:
        reference.setdefault(verdict.name, verdict)
    print(
        f"    total {uncached_zipf_s:8.2f}s "
        f"({submission_count / max(uncached_zipf_s, 1e-9):.2f} verdicts/s, "
        f"{uncached_queries} queries)"
    )

    print("  cached gateway (fingerprint-keyed verdict memoisation):")
    cache = VerdictCache(store=registry.store, runtime=runtime)
    with AuditGateway(
        registry=registry, max_in_flight=args.max_in_flight, verdict_cache=cache
    ) as cached:
        cached.register_tenant("tenant-a", spec_a, test_a, target_train, target_test)
        cached.register_tenant("tenant-b", spec_b, test_b, target_train, target_test)
        workload = uploads()
        start = time.perf_counter()
        cached_verdicts = list(cached.stream(workload))
        cached_zipf_s = time.perf_counter() - start
        cached_stats = cached.stats()
    cache_stats = cached_stats["verdict_cache"]
    cached_queries = sum(
        t["query_count"] for t in cached_stats["tenants"].values()
    )
    warm_deviation = 0.0
    assert len(cached_verdicts) == submission_count
    for verdict in cached_verdicts:
        expected_verdict = reference[verdict.name]
        deviation = abs(verdict.backdoor_score - expected_verdict.backdoor_score)
        warm_deviation = max(warm_deviation, deviation)
        assert deviation <= 1e-9, (verdict.name, deviation)
        assert verdict.is_backdoored == expected_verdict.is_backdoored, verdict.name
    cache_hit_rate = cache_stats["hit_rate"]
    cache_speedup = uncached_zipf_s / max(cached_zipf_s, 1e-9)
    print(
        f"    total {cached_zipf_s:8.2f}s "
        f"({submission_count / max(cached_zipf_s, 1e-9):.2f} verdicts/s, "
        f"{cached_queries} queries, hit-rate {cache_hit_rate:.3f}, "
        f"{cache_stats['inspections']} inspections)"
    )
    print(
        f"    cached verdicts match the uncached path "
        f"(max deviation {warm_deviation:.2e}); cache speedup {cache_speedup:.2f}x"
    )

    results = {
        "benchmark": "gateway",
        "profile": profile.name,
        "arch_a": args.arch_a,
        "arch_b": args.arch_b,
        "models_per_tenant": args.models,
        "workers": args.workers,
        "backend": args.backend,
        "max_in_flight": stats["max_in_flight"],
        "registry_standup_seconds": registry_s,
        "registry": stats["registry"],
        "baseline_total_seconds": baseline_total_s,
        "baseline_first_verdict_seconds": baseline_first_s,
        "gateway_total_seconds": gateway_total_s,
        "gateway_first_verdict_seconds": first_verdict_s,
        "first_verdict_speedup": baseline_first_s / max(first_verdict_s, 1e-9),
        "baseline_verdicts_per_second": total_models / max(baseline_total_s, 1e-9),
        "gateway_verdicts_per_second": total_models / max(gateway_total_s, 1e-9),
        "max_score_deviation": max_deviation,
        "verdicts_match": True,
        "cpu_count": cpu_count,
        "thread_total_seconds": thread_s,
        "process_total_seconds": process_s,
        "thread_verdicts_per_second": total_models / max(thread_s, 1e-9),
        "process_verdicts_per_second": total_models / max(process_s, 1e-9),
        "process_speedup": process_speedup,
        "process_verdicts_bit_identical": True,
        "zipf_submissions": submission_count,
        "zipf_exponent": args.zipf_exponent,
        "zipf_distinct_models": distinct,
        "cache_hit_rate": cache_hit_rate,
        "cache_inspections": cache_stats["inspections"],
        "cache_dedup_hits": cache_stats["dedup_hits"],
        "uncached_queries": uncached_queries,
        "cached_queries": cached_queries,
        "uncached_amortized_queries_per_verdict": uncached_queries / submission_count,
        "cached_amortized_queries_per_verdict": cached_queries / submission_count,
        "uncached_zipf_verdicts_per_second": submission_count / max(uncached_zipf_s, 1e-9),
        "cached_zipf_verdicts_per_second": submission_count / max(cached_zipf_s, 1e-9),
        "cache_speedup": cache_speedup,
        "max_warm_score_deviation": warm_deviation,
        "telemetry": {
            "spans": len(trace_spans),
            "trace": trace_path.name,
            "metrics": metrics_path.name,
            "stages": {
                name: {
                    "count": int(summary["count"]),
                    "p50": summary["p50"],
                    "p95": summary["p95"],
                }
                for name, summary in stage_stats.items()
            },
            "amortized_queries_per_verdict": economy["amortized_queries_per_verdict"],
        },
    }
    with open(args.json, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print(
        f"time-to-first-verdict speedup {results['first_verdict_speedup']:.2f}x, "
        f"{results['baseline_verdicts_per_second']:.2f} -> "
        f"{results['gateway_verdicts_per_second']:.2f} verdicts/s; "
        f"verdict cache: hit-rate {cache_hit_rate:.3f}, "
        f"{results['uncached_zipf_verdicts_per_second']:.2f} -> "
        f"{results['cached_zipf_verdicts_per_second']:.2f} verdicts/s "
        f"({cache_speedup:.2f}x), "
        f"{results['uncached_amortized_queries_per_verdict']:.1f} -> "
        f"{results['cached_amortized_queries_per_verdict']:.1f} queries/verdict; "
        f"process backend {process_speedup:.2f}x on {cpu_count} core(s); "
        f"results written to {args.json}"
    )
    if scratch is not None:
        scratch.cleanup()


if __name__ == "__main__":
    main()
