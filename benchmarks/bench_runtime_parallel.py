"""Sequential vs. parallel shadow-pool build and batch inspection.

Measures the wall-clock effect of the runtime's worker fan-out on the two
embarrassingly-parallel hot paths: shadow-model training
(``ShadowModelFactory.build_pool``) and serve-many inspection
(``BpromDetector.inspect_many``).  Correctness is asserted on every run —
the parallel pool must contain bit-identical models, and batch scores must
equal sequential scores — so the benchmark doubles as an equivalence check.

Results are also written as machine-readable JSON (``--json``) so the perf
trajectory can be tracked across commits.

Run with:  PYTHONPATH=src python benchmarks/bench_runtime_parallel.py \
               [--profile tiny|fast|bench] [--arch mlp] [--workers 4] [--backend thread] \
               [--json BENCH_runtime_parallel.json]
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.core.detector import BpromDetector
from repro.core.shadow import ShadowModelFactory
from repro.config import get_profile
from repro.datasets.registry import load_dataset
from repro.models.registry import build_classifier
from repro.runtime import ParallelExecutor


def _time(label: str, fn):
    start = time.perf_counter()
    value = fn()
    elapsed = time.perf_counter() - start
    print(f"  {label:<28s} {elapsed:8.2f}s")
    return value, elapsed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="fast", help="experiment profile preset")
    parser.add_argument("--arch", default="resnet18", help="shadow architecture")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--backend", default="thread", choices=("thread", "process"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        default="BENCH_runtime_parallel.json",
        help="output path for machine-readable results",
    )
    args = parser.parse_args()

    profile = get_profile(args.profile)
    executor = ParallelExecutor(args.workers, args.backend)
    train, test = load_dataset("cifar10", profile, seed=args.seed)
    target_train, target_test = load_dataset("stl10", profile, seed=args.seed)

    cores = os.cpu_count() or 1
    print(
        f"profile={profile.name} arch={args.arch} shadows="
        f"{profile.total_shadow_models} workers={args.workers} backend={args.backend} "
        f"cores={cores}"
    )
    if cores < 2:
        print(
            "  note: only one CPU core is available — expect speedup ~1.0x here; "
            "the parallel path can only win on multi-core hardware"
        )

    print("shadow-pool build:")
    factory = ShadowModelFactory(profile=profile, architecture=args.arch, seed=args.seed)
    sequential_pool, shadow_sequential_s = _time(
        "sequential", lambda: factory.build_pool(test)
    )
    parallel_pool, shadow_parallel_s = _time(
        f"parallel ({args.workers} workers)",
        lambda: factory.build_pool(test, executor=executor),
    )
    for left, right in zip(sequential_pool, parallel_pool):
        for p, q in zip(left.classifier.model.parameters(), right.classifier.model.parameters()):
            np.testing.assert_array_equal(p.data, q.data)
    shadow_speedup = shadow_sequential_s / max(shadow_parallel_s, 1e-9)
    print(f"  pools identical; speedup {shadow_speedup:.2f}x")

    print("batch inspection (serve-many):")
    detector = BpromDetector(profile=profile, architecture=args.arch, seed=args.seed)
    detector.fit(test, target_train, target_test, shadow_models=sequential_pool)
    fleet = []
    for index in range(max(4, args.workers)):
        model = build_classifier(
            args.arch,
            train.num_classes,
            image_size=profile.image_size,
            rng=1000 + index,
            name=f"fleet-{index}",
        )
        model.fit(train, profile.classifier, rng=2000 + index)
        fleet.append(model)
    sequential_scores, sequential_s = _time(
        "sequential",
        lambda: [detector.inspect(model).backdoor_score for model in fleet],
    )
    batch_results, parallel_s = _time(
        f"parallel ({args.workers} workers)",
        lambda: detector.inspect_many(fleet, executor=executor),
    )
    batch_scores = [result.backdoor_score for result in batch_results]
    assert batch_scores == sequential_scores, "parallel scores must match sequential"
    inspect_speedup = sequential_s / max(parallel_s, 1e-9)
    print(f"  scores identical; speedup {inspect_speedup:.2f}x")

    results = {
        "benchmark": "runtime_parallel",
        "profile": profile.name,
        "arch": args.arch,
        "workers": args.workers,
        "backend": args.backend,
        "cores": cores,
        "shadow_models": profile.total_shadow_models,
        "fleet_size": len(fleet),
        "shadow_sequential_seconds": shadow_sequential_s,
        "shadow_parallel_seconds": shadow_parallel_s,
        "shadow_speedup": shadow_speedup,
        "inspect_sequential_seconds": sequential_s,
        "inspect_parallel_seconds": parallel_s,
        "inspect_speedup": inspect_speedup,
        "results_bit_identical": True,
    }
    with open(args.json, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print(f"results written to {args.json}")


if __name__ == "__main__":
    main()
