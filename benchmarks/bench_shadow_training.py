"""Sequential vs. stacked shadow-pool training: models trained per second.

Builds the same pool of clean + backdoored shadow models twice — once with the
sequential per-model training loop and once with the stacked model-axis engine
(``repro.nn.stacked``) — and reports models-trained-per-second for both.
Correctness is asserted on every run, so the benchmark doubles as an
equivalence check:

* pool labels, target classes and training histories must match,
* every state-dict entry must agree within 1e-9,
* the artifact-store cache keys must not depend on the training mode (a
  stacked run warms the cache for a sequential run and vice versa).

The stacked engine fuses K models' Python/numpy dispatch into single ops, so
it shines where per-op overhead dominates — the transformer zoo's many small
token-space ops, small batches, large pools.  The default smoke configuration
(``--arch vit --models 8 --batch-size 4 --image-size 8``) sits in that regime;
cache-bound CNN/MLP shapes stay near 1x, which is why ``auto`` mode only
stacks transformer pools.  Results are written as machine-readable JSON so the
perf trajectory can be tracked across commits.

Run with:  PYTHONPATH=src python benchmarks/bench_shadow_training.py \
               [--profile tiny|fast|bench] [--arch vit] [--models 8] \
               [--json BENCH_shadow_training.json]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from dataclasses import replace

import numpy as np

from repro.config import RuntimeConfig, get_profile
from repro.core.detector import BpromDetector
from repro.core.shadow import ShadowModelFactory
from repro.datasets.registry import load_dataset


def assert_pools_equivalent(sequential, stacked, tolerance=1e-9) -> float:
    """Check the two pools agree; returns the maximum state-dict deviation."""
    assert [s.is_backdoored for s in sequential] == [s.is_backdoored for s in stacked]
    assert [s.target_class for s in sequential] == [s.target_class for s in stacked]
    max_diff = 0.0
    for left, right in zip(sequential, stacked):
        np.testing.assert_allclose(
            left.classifier.history.losses,
            right.classifier.history.losses,
            rtol=0.0,
            atol=tolerance,
        )
        state_left, state_right = left.classifier.state_dict(), right.classifier.state_dict()
        assert set(state_left) == set(state_right)
        for key in state_left:
            diff = float(np.max(np.abs(state_left[key] - state_right[key]), initial=0.0))
            max_diff = max(max_diff, diff)
            assert diff <= tolerance, f"{key}: {diff}"
    return max_diff


def check_cache_interop(profile, arch, seed, reserved, target_train, target_test) -> None:
    """A stacked fit must warm the shadow cache for a sequential fit, and back."""
    for first_mode, second_mode in (("stacked", "sequential"), ("sequential", "stacked")):
        with tempfile.TemporaryDirectory(prefix="bench-shadow-cache-") as cache_dir:
            cached_flags = []
            for mode in (first_mode, second_mode):
                detector = BpromDetector(
                    profile=profile,
                    architecture=arch,
                    seed=seed,
                    runtime=RuntimeConfig(cache_dir=cache_dir, shadow_training=mode),
                )
                detector.fit(reserved, target_train, target_test)
                cached_flags.append(
                    {r.name: r.cached for r in detector.stage_reports}["shadow"]
                )
            assert cached_flags == [False, True], (
                f"{first_mode} run did not warm the shadow cache for the "
                f"{second_mode} run: {cached_flags}"
            )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="tiny", help="experiment profile preset")
    parser.add_argument("--arch", default="vit", help="shadow architecture")
    parser.add_argument("--models", type=int, default=8, help="pool size (clean + backdoored)")
    parser.add_argument(
        "--batch-size", type=int, default=4, help="override the profile's training batch size"
    )
    parser.add_argument("--epochs", type=int, default=None, help="override training epochs")
    parser.add_argument(
        "--image-size", type=int, default=8, help="override the profile's image size"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="timed passes per path; the minimum is reported (noise robustness)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skip-cache-check",
        action="store_true",
        help="skip the (detector-fitting) artifact-cache interop assertion",
    )
    parser.add_argument(
        "--json",
        default="BENCH_shadow_training.json",
        help="output path for machine-readable results",
    )
    args = parser.parse_args()

    profile = get_profile(args.profile)
    classifier_overrides = {}
    if args.batch_size is not None:
        classifier_overrides["batch_size"] = args.batch_size
    if args.epochs is not None:
        classifier_overrides["epochs"] = args.epochs
    if classifier_overrides:
        profile = profile.with_overrides(
            classifier=replace(profile.classifier, **classifier_overrides)
        )
    if args.image_size is not None:
        # the prompt canvas is the shadow model's input, so both move together
        profile = profile.with_overrides(
            image_size=args.image_size,
            prompt=replace(
                profile.prompt,
                source_size=args.image_size,
                inner_size=min(profile.prompt.inner_size, args.image_size - 2),
            ),
        )
    train, test = load_dataset("cifar10", profile, seed=args.seed)
    num_clean = args.models // 2
    num_backdoor = args.models - num_clean
    config = profile.classifier
    print(
        f"profile={profile.name} arch={args.arch} models={args.models} "
        f"(clean={num_clean} backdoor={num_backdoor}) epochs={config.epochs} "
        f"batch={config.batch_size} image={profile.image_size} "
        f"cores={os.cpu_count() or 1}"
    )

    factories = {
        mode: ShadowModelFactory(
            profile=profile, architecture=args.arch, seed=args.seed, training_mode=mode
        )
        for mode in ("sequential", "stacked")
    }

    def build(mode):
        start = time.perf_counter()
        pool = factories[mode].build_pool(test, num_clean=num_clean, num_backdoor=num_backdoor)
        return pool, time.perf_counter() - start

    # interleave the timed passes so machine-load drift hits both paths equally
    sequential_s = stacked_s = float("inf")
    for _ in range(max(args.repeats, 1)):
        sequential_pool, elapsed = build("sequential")
        sequential_s = min(sequential_s, elapsed)
        stacked_pool, elapsed = build("stacked")
        stacked_s = min(stacked_s, elapsed)

    print("sequential loop (one Python training loop per shadow):")
    print(f"  total {sequential_s:8.2f}s   {args.models / sequential_s:8.2f} models/s")
    print("stacked engine (K models as one model-axis computation):")
    print(f"  total {stacked_s:8.2f}s   {args.models / stacked_s:8.2f} models/s")

    max_diff = assert_pools_equivalent(sequential_pool, stacked_pool)
    print(f"  pools equivalent (max state-dict deviation {max_diff:.2e})")

    if not args.skip_cache_check:
        reserved = test.sample_fraction(profile.reserved_fraction, rng=args.seed)
        target_train, target_test = load_dataset("stl10", profile, seed=args.seed)
        check_cache_interop(profile, args.arch, args.seed, reserved, target_train, target_test)
        print("  artifact-store cache keys are training-mode independent")

    speedup = sequential_s / max(stacked_s, 1e-9)
    results = {
        "benchmark": "shadow_training",
        "profile": profile.name,
        "arch": args.arch,
        "models": args.models,
        "epochs": config.epochs,
        "batch_size": config.batch_size,
        "image_size": profile.image_size,
        "sequential_total_seconds": sequential_s,
        "stacked_total_seconds": stacked_s,
        "sequential_models_per_second": args.models / max(sequential_s, 1e-9),
        "stacked_models_per_second": args.models / max(stacked_s, 1e-9),
        "speedup": speedup,
        "max_state_dict_deviation": max_diff,
        "pools_equivalent": True,
        "cache_keys_mode_independent": not args.skip_cache_check,
    }
    with open(args.json, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print(
        f"stacked speedup {speedup:.2f}x "
        f"({results['sequential_models_per_second']:.2f} -> "
        f"{results['stacked_models_per_second']:.2f} models/s); "
        f"results written to {args.json}"
    )


if __name__ == "__main__":
    main()
