"""Sequential vs. stacked shadow-pool training: models trained per second.

Builds the same pool of clean + backdoored shadow models twice — once with the
sequential per-model training loop and once with the stacked model-axis engine
(``repro.nn.stacked``) — and reports models-trained-per-second for both.
Correctness is asserted on every run, so the benchmark doubles as an
equivalence check:

* pool labels, target classes and training histories must match,
* every state-dict entry must agree within 1e-9,
* the artifact-store cache keys must not depend on the training mode (a
  stacked run warms the cache for a sequential run and vice versa).

The stacked engine fuses K models' Python/numpy dispatch into single ops, so
it shines where per-op overhead dominates — the transformer zoo's many small
token-space ops, small batches, large pools.  The default smoke configuration
(``--arch vit --models 8 --batch-size 4 --image-size 8``) sits in that regime;
cache-bound CNN/MLP shapes stay near 1x, which is why ``auto`` mode only
stacks transformer pools.  Results are written as machine-readable JSON so the
perf trajectory can be tracked across commits.

``--tier-compare`` switches the benchmark to the precision-tier axis instead:
the same CNN pool is trained sequentially in the float64 reference tier and
the float32 fast tier, and models/s are reported for both.  Correctness is
again asserted on every run — the tiers must agree on pool composition (same
RNG streams), and an MNTD detector fitted on each tier's pool must give the
suspicious models near-identical scores (``--score-tolerance``) with matching
verdicts away from the threshold.  The float32 tier halves memory traffic
through the conv layers, where CNN training is bandwidth-bound.

Run with:  PYTHONPATH=src python benchmarks/bench_shadow_training.py \
               [--profile tiny|fast|bench] [--arch vit] [--models 8] \
               [--tier-compare] [--json BENCH_shadow_training.json]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from dataclasses import replace

import numpy as np

from repro.config import RuntimeConfig, get_profile
from repro.core.detector import BpromDetector
from repro.core.shadow import ShadowModelFactory
from repro.datasets.registry import load_dataset


def assert_pools_equivalent(sequential, stacked, tolerance=1e-9) -> float:
    """Check the two pools agree; returns the maximum state-dict deviation."""
    assert [s.is_backdoored for s in sequential] == [s.is_backdoored for s in stacked]
    assert [s.target_class for s in sequential] == [s.target_class for s in stacked]
    max_diff = 0.0
    for left, right in zip(sequential, stacked):
        np.testing.assert_allclose(
            left.classifier.history.losses,
            right.classifier.history.losses,
            rtol=0.0,
            atol=tolerance,
        )
        state_left, state_right = left.classifier.state_dict(), right.classifier.state_dict()
        assert set(state_left) == set(state_right)
        for key in state_left:
            diff = float(np.max(np.abs(state_left[key] - state_right[key]), initial=0.0))
            max_diff = max(max_diff, diff)
            assert diff <= tolerance, f"{key}: {diff}"
    return max_diff


def check_cache_interop(profile, arch, seed, reserved, target_train, target_test) -> None:
    """A stacked fit must warm the shadow cache for a sequential fit, and back."""
    for first_mode, second_mode in (("stacked", "sequential"), ("sequential", "stacked")):
        with tempfile.TemporaryDirectory(prefix="bench-shadow-cache-") as cache_dir:
            cached_flags = []
            for mode in (first_mode, second_mode):
                detector = BpromDetector(
                    profile=profile,
                    architecture=arch,
                    seed=seed,
                    runtime=RuntimeConfig(cache_dir=cache_dir, shadow_training=mode),
                )
                detector.fit(reserved, target_train, target_test)
                cached_flags.append(
                    {r.name: r.cached for r in detector.stage_reports}["shadow"]
                )
            assert cached_flags == [False, True], (
                f"{first_mode} run did not warm the shadow cache for the "
                f"{second_mode} run: {cached_flags}"
            )


def run_tier_compare(profile, arch, models, seed, repeats, test, score_tolerance):
    """Benchmark float64 vs float32 shadow training; assert detector parity.

    Returns the machine-readable results dict.  The equivalence contract is
    behavioural, not numerical: the tiers train different-precision weights,
    so instead of comparing state dicts we fit one MNTD detector per tier
    (reusing that tier's pool) and require the two detectors to agree on the
    suspicious models — scores within ``score_tolerance`` and identical
    verdicts for every model whose float64 score is at least the tolerance
    away from the decision threshold.
    """
    from repro.defenses.model_level import MNTDDefense

    tiers = ("float64", "float32")
    num_clean = models // 2
    num_backdoor = models - num_clean
    factories = {
        tier: ShadowModelFactory(
            profile=profile,
            architecture=arch,
            seed=seed,
            training_mode="sequential",
            precision=tier,
        )
        for tier in tiers
    }
    # interleave the timed passes so machine-load drift hits both tiers equally
    times = dict.fromkeys(tiers, float("inf"))
    pools = {}
    for _ in range(max(repeats, 1)):
        for tier in tiers:
            start = time.perf_counter()
            pools[tier] = factories[tier].build_pool(
                test, num_clean=num_clean, num_backdoor=num_backdoor
            )
            times[tier] = min(times[tier], time.perf_counter() - start)

    for tier in tiers:
        expected = np.float32 if tier == "float32" else np.float64
        assert all(s.classifier.dtype == expected for s in pools[tier]), tier
        print(f"{tier} tier (sequential CNN pool):")
        print(f"  total {times[tier]:8.2f}s   {models / times[tier]:8.2f} models/s")
    # both tiers initialise in float64 from the same derived seeds, so the
    # pool composition (labels, attack targets) must be identical
    assert [s.is_backdoored for s in pools["float64"]] == [
        s.is_backdoored for s in pools["float32"]
    ]
    assert [s.target_class for s in pools["float64"]] == [
        s.target_class for s in pools["float32"]
    ]

    defenses = {
        tier: MNTDDefense(
            profile=profile, architecture=arch, seed=seed, precision=tier
        ).fit(test, shadow_models=pools[tier])
        for tier in tiers
    }
    threshold = defenses["float64"].threshold
    suspicious = [shadow.classifier for shadow in pools["float64"]]
    max_gap = 0.0
    for model in suspicious:
        reference = defenses["float64"].score_model(model, test)
        fast = defenses["float32"].score_model(model, test)
        gap = abs(reference - fast)
        max_gap = max(max_gap, gap)
        assert gap <= score_tolerance, (
            f"detector scores diverge across tiers for {model.name}: "
            f"float64={reference:.4f} float32={fast:.4f} (tolerance {score_tolerance})"
        )
        if abs(reference - threshold) > score_tolerance:
            assert (reference >= threshold) == (fast >= threshold), (
                f"verdict flip across tiers for {model.name}: "
                f"float64={reference:.4f} float32={fast:.4f} threshold={threshold}"
            )
    print(
        f"  detectors equivalent across tiers "
        f"(max score gap {max_gap:.4f} <= {score_tolerance})"
    )

    speedup = times["float64"] / max(times["float32"], 1e-9)
    return {
        "benchmark": "shadow_training_precision",
        "profile": profile.name,
        "arch": arch,
        "models": models,
        "epochs": profile.classifier.epochs,
        "batch_size": profile.classifier.batch_size,
        "image_size": profile.image_size,
        "float64_total_seconds": times["float64"],
        "float32_total_seconds": times["float32"],
        "float64_models_per_second": models / max(times["float64"], 1e-9),
        "float32_models_per_second": models / max(times["float32"], 1e-9),
        "float32_speedup": speedup,
        "max_detector_score_gap": max_gap,
        "score_tolerance": score_tolerance,
        "detector_verdicts_match": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="tiny", help="experiment profile preset")
    parser.add_argument("--arch", default="vit", help="shadow architecture")
    parser.add_argument("--models", type=int, default=8, help="pool size (clean + backdoored)")
    parser.add_argument(
        "--batch-size", type=int, default=4, help="override the profile's training batch size"
    )
    parser.add_argument("--epochs", type=int, default=None, help="override training epochs")
    parser.add_argument(
        "--image-size", type=int, default=8, help="override the profile's image size"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="timed passes per path; the minimum is reported (noise robustness)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tier-compare",
        action="store_true",
        help="benchmark the float64 vs float32 precision tiers (sequential "
        "training) instead of the sequential vs stacked engines",
    )
    parser.add_argument(
        "--score-tolerance",
        type=float,
        default=0.25,
        help="maximum MNTD score gap allowed between the precision tiers; "
        "forest probabilities are averages over discrete tree votes, so a "
        "handful of leaf flips from float32 rounding moves scores by "
        "1/meta_trees steps — the default absorbs that while still catching "
        "a detector that actually disagrees",
    )
    parser.add_argument(
        "--skip-cache-check",
        action="store_true",
        help="skip the (detector-fitting) artifact-cache interop assertion",
    )
    parser.add_argument(
        "--json",
        default="BENCH_shadow_training.json",
        help="output path for machine-readable results",
    )
    args = parser.parse_args()

    profile = get_profile(args.profile)
    classifier_overrides = {}
    if args.batch_size is not None:
        classifier_overrides["batch_size"] = args.batch_size
    if args.epochs is not None:
        classifier_overrides["epochs"] = args.epochs
    if classifier_overrides:
        profile = profile.with_overrides(
            classifier=replace(profile.classifier, **classifier_overrides)
        )
    if args.image_size is not None:
        # the prompt canvas is the shadow model's input, so both move together
        profile = profile.with_overrides(
            image_size=args.image_size,
            prompt=replace(
                profile.prompt,
                source_size=args.image_size,
                inner_size=min(profile.prompt.inner_size, args.image_size - 2),
            ),
        )
    train, test = load_dataset("cifar10", profile, seed=args.seed)
    num_clean = args.models // 2
    num_backdoor = args.models - num_clean
    config = profile.classifier
    print(
        f"profile={profile.name} arch={args.arch} models={args.models} "
        f"(clean={num_clean} backdoor={num_backdoor}) epochs={config.epochs} "
        f"batch={config.batch_size} image={profile.image_size} "
        f"cores={os.cpu_count() or 1}"
    )

    if args.tier_compare:
        results = run_tier_compare(
            profile, args.arch, args.models, args.seed, args.repeats, test,
            args.score_tolerance,
        )
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(
            f"float32 tier speedup {results['float32_speedup']:.2f}x "
            f"({results['float64_models_per_second']:.2f} -> "
            f"{results['float32_models_per_second']:.2f} models/s); "
            f"results written to {args.json}"
        )
        return

    factories = {
        mode: ShadowModelFactory(
            profile=profile, architecture=args.arch, seed=args.seed, training_mode=mode
        )
        for mode in ("sequential", "stacked")
    }

    def build(mode):
        start = time.perf_counter()
        pool = factories[mode].build_pool(test, num_clean=num_clean, num_backdoor=num_backdoor)
        return pool, time.perf_counter() - start

    # interleave the timed passes so machine-load drift hits both paths equally
    sequential_s = stacked_s = float("inf")
    for _ in range(max(args.repeats, 1)):
        sequential_pool, elapsed = build("sequential")
        sequential_s = min(sequential_s, elapsed)
        stacked_pool, elapsed = build("stacked")
        stacked_s = min(stacked_s, elapsed)

    print("sequential loop (one Python training loop per shadow):")
    print(f"  total {sequential_s:8.2f}s   {args.models / sequential_s:8.2f} models/s")
    print("stacked engine (K models as one model-axis computation):")
    print(f"  total {stacked_s:8.2f}s   {args.models / stacked_s:8.2f} models/s")

    max_diff = assert_pools_equivalent(sequential_pool, stacked_pool)
    print(f"  pools equivalent (max state-dict deviation {max_diff:.2e})")

    if not args.skip_cache_check:
        reserved = test.sample_fraction(profile.reserved_fraction, rng=args.seed)
        target_train, target_test = load_dataset("stl10", profile, seed=args.seed)
        check_cache_interop(profile, args.arch, args.seed, reserved, target_train, target_test)
        print("  artifact-store cache keys are training-mode independent")

    speedup = sequential_s / max(stacked_s, 1e-9)
    results = {
        "benchmark": "shadow_training",
        "profile": profile.name,
        "arch": args.arch,
        "models": args.models,
        "epochs": config.epochs,
        "batch_size": config.batch_size,
        "image_size": profile.image_size,
        "sequential_total_seconds": sequential_s,
        "stacked_total_seconds": stacked_s,
        "sequential_models_per_second": args.models / max(sequential_s, 1e-9),
        "stacked_models_per_second": args.models / max(stacked_s, 1e-9),
        "speedup": speedup,
        "max_state_dict_deviation": max_diff,
        "pools_equivalent": True,
        "cache_keys_mode_independent": not args.skip_cache_check,
    }
    with open(args.json, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print(
        f"stacked speedup {speedup:.2f}x "
        f"({results['sequential_models_per_second']:.2f} -> "
        f"{results['stacked_models_per_second']:.2f} models/s); "
        f"results written to {args.json}"
    )


if __name__ == "__main__":
    main()
