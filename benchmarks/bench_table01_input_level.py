"""Table 1 — input-level detectors degrade on clean models."""

from repro.eval.experiments import table01_input_level
from conftest import run_once


def test_table01_input_level(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, table01_input_level.run, bench_profile, bench_seed)
    assert result["rows"]
