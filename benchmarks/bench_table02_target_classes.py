"""Table 2 — prompted accuracy vs. number of target classes."""

from repro.eval.experiments import table02_target_classes
from conftest import run_once


def test_table02_target_classes(benchmark, bench_profile, bench_seed):
    result = run_once(
        benchmark, table02_target_classes.run, bench_profile, bench_seed,
        datasets=("cifar10",), target_class_counts=(1, 2, 3),
    )
    assert len(result["rows"]) == 3
