"""Table 3 — prompted accuracy for different trigger sizes."""

from repro.eval.experiments import table03_04_prompted_accuracy
from conftest import run_once


def test_table03_trigger_size(benchmark, bench_profile, bench_seed):
    result = run_once(
        benchmark, table03_04_prompted_accuracy.run_trigger_size,
        bench_profile, bench_seed, datasets=("cifar10",),
    )
    assert result["rows"]
