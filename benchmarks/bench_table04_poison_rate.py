"""Table 4 — prompted accuracy for different poison rates."""

from repro.eval.experiments import table03_04_prompted_accuracy
from conftest import run_once


def test_table04_poison_rate(benchmark, bench_profile, bench_seed):
    result = run_once(
        benchmark, table03_04_prompted_accuracy.run_poison_rate,
        bench_profile, bench_seed, datasets=("cifar10",),
    )
    assert result["rows"]
