"""Table 5 / Table 16 — main defense comparison on CIFAR-10 and GTSRB."""

from repro.eval.experiments import defense_comparison
from conftest import run_once


def test_table05_main(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, defense_comparison.run_table05, bench_profile, bench_seed)
    assert any(row["defense"] == "bprom" for row in result["rows"])
