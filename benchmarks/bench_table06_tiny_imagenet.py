"""Table 6 — Tiny-ImageNet stand-in."""

from repro.eval.experiments import defense_comparison
from conftest import run_once


def test_table06_tiny_imagenet(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, defense_comparison.run_table06, bench_profile, bench_seed)
    assert result["rows"]
