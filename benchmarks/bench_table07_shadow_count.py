"""Table 7 — AUROC vs. number of shadow models."""

from repro.eval.experiments import table07_shadow_count
from conftest import run_once


def test_table07_shadow_count(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, table07_shadow_count.run, bench_profile, bench_seed)
    assert result["rows"]
