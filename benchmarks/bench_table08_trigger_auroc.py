"""Table 8 — ASR and AUROC vs. trigger size."""

from repro.eval.experiments import table08_09_attack_strength
from conftest import run_once


def test_table08_trigger_auroc(benchmark, bench_profile, bench_seed):
    result = run_once(
        benchmark, table08_09_attack_strength.run_trigger_size, bench_profile, bench_seed,
        attacks=("blend",),
    )
    assert result["rows"]
