"""Table 9 — ASR and AUROC vs. poison rate."""

from repro.eval.experiments import table08_09_attack_strength
from conftest import run_once


def test_table09_poison_auroc(benchmark, bench_profile, bench_seed):
    result = run_once(
        benchmark, table08_09_attack_strength.run_poison_rate, bench_profile, bench_seed,
        attacks=("blend",),
    )
    assert result["rows"]
