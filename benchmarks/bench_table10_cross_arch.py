"""Table 10 — shadow/suspicious architecture mismatch."""

from repro.eval.experiments import table10_cross_architecture
from conftest import run_once


def test_table10_cross_architecture(benchmark, bench_profile, bench_seed):
    result = run_once(
        benchmark, table10_cross_architecture.run, bench_profile, bench_seed,
        attacks=("wanet", "adaptive_blend"),
    )
    assert result["rows"]
