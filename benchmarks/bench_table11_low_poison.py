"""Table 11 — adaptive attack with very low poison rates."""

from repro.eval.experiments import table11_low_poison
from conftest import run_once


def test_table11_low_poison(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, table11_low_poison.run, bench_profile, bench_seed)
    assert result["rows"]
