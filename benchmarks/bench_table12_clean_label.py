"""Table 12 — clean-label adaptive attacks (SIG, LC)."""

from repro.eval.experiments import table12_clean_label
from conftest import run_once


def test_table12_clean_label(benchmark, bench_profile, bench_seed):
    result = run_once(
        benchmark, table12_clean_label.run, bench_profile, bench_seed, datasets=("cifar10",),
    )
    assert result["rows"]
