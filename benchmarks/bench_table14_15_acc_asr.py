"""Tables 14/15 — clean accuracy and ASR of the infected models."""

from repro.eval.experiments import table14_15_accuracy_asr
from conftest import run_once


def test_table14_15_accuracy_asr(benchmark, bench_profile, bench_seed):
    result = run_once(
        benchmark, table14_15_accuracy_asr.run, bench_profile, bench_seed,
        datasets=("cifar10",), architectures=("resnet18",),
        attacks=("badnets", "blend", "wanet"),
    )
    assert result["rows"]
