"""Tables 17/18 — MobileNetV2 architecture."""

from repro.eval.experiments import defense_comparison
from conftest import run_once


def test_table17_18_mobilenet(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, defense_comparison.run_table17_18, bench_profile, bench_seed)
    assert result["rows"]
