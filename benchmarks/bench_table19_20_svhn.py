"""Tables 19/20 — external dataset D_T switched to SVHN."""

from repro.eval.experiments import defense_comparison
from conftest import run_once


def test_table19_20_svhn(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, defense_comparison.run_table19_20, bench_profile, bench_seed)
    assert result["rows"]
