"""Table 21 — CIFAR-100 as D_S (class-count mismatch)."""

from repro.eval.experiments import defense_comparison
from conftest import run_once


def test_table21_cifar100(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, defense_comparison.run_table21, bench_profile, bench_seed)
    assert result["rows"]
