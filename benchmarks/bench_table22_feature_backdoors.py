"""Table 22 — feature-based backdoors (Refool, BPP, Poison Ink)."""

from repro.eval.experiments import table22_feature_backdoors
from conftest import run_once


def test_table22_feature_backdoors(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, table22_feature_backdoors.run, bench_profile, bench_seed)
    assert result["rows"]
