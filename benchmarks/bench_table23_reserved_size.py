"""Table 23 — reserved clean dataset size (1% / 5% / 10%)."""

from repro.eval.experiments import table23_reserved_size
from conftest import run_once


def test_table23_reserved_size(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, table23_reserved_size.run, bench_profile, bench_seed)
    assert result["rows"]
