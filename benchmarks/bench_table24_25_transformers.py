"""Tables 24/25 — MobileViT / Swin-like architectures."""

from repro.eval.experiments import defense_comparison
from conftest import run_once


def test_table24_25_transformers(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, defense_comparison.run_table24_25, bench_profile, bench_seed)
    assert result["rows"]
