"""Table 26 — ImageNet stand-in."""

from repro.eval.experiments import defense_comparison
from conftest import run_once


def test_table26_imagenet(benchmark, bench_profile, bench_seed):
    result = run_once(benchmark, defense_comparison.run_table26, bench_profile, bench_seed)
    assert result["rows"]
