"""Gate CI on the versioned benchmark baselines.

Each JSON file in ``benchmarks/baselines/`` names one benchmark-results file
(the ``BENCH_*.json`` a smoke run writes into the working directory) and the
metrics in it that must not regress.  Only *ratio* metrics are versioned —
stacked-vs-sequential speedup, float32-vs-float64 speedup, and the like — so
the gate is meaningful across machines; absolute models/s depend on the
runner and would flap.

A metric fails when it regresses more than ``--tolerance`` (default 20%)
past its baseline in the bad direction::

    direction "higher":  current < baseline * (1 - tolerance)   -> regression
    direction "lower":   current > baseline * (1 + tolerance)   -> regression

A metric may carry a ``requires`` clause naming minimum values of *other*
fields in the results file, e.g. ``{"cpu_count": 2}`` for a process-pool
speedup that only a multi-core runner can demonstrate.  When the results
don't meet the requirement the metric is reported as skipped rather than
compared — the gate stays meaningful on 1-core smoke runners without going
soft on real CI hardware.

Run after the smoke benchmarks::

    PYTHONPATH=src python benchmarks/compare_baselines.py \
        [--baselines benchmarks/baselines] [--results-dir .] \
        [--tolerance 0.2] [--update]

``--update`` rewrites the baseline values from the current results (commit
the diff deliberately — the new numbers become the floor future runs are
held to).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def compare_one(baseline_path: Path, results_dir: Path, tolerance: float, update: bool):
    """Compare one baseline file; returns (failures, lines, updated_payload)."""
    baseline = json.loads(baseline_path.read_text())
    results_path = results_dir / baseline_path.name
    if not results_path.exists():
        return [f"{baseline_path.name}: results file {results_path} not found"], [], None

    results = json.loads(results_path.read_text())
    failures, lines = [], []
    if baseline.get("telemetry"):
        # a bench that once emitted flight-recorder data must keep doing so —
        # a silently dropped telemetry section is an observability regression
        telemetry = results.get("telemetry")
        if not isinstance(telemetry, dict) or not telemetry:
            failures.append(
                f"{baseline_path.name}: telemetry section missing or empty "
                "(the bench stopped emitting its flight-recorder data)"
            )
        else:
            lines.append(
                f"  telemetry: present ({telemetry.get('spans', 0)} spans, "
                f"{len(telemetry.get('stages') or {})} stages) ... ok"
            )
    for metric, spec in baseline["metrics"].items():
        requires = spec.get("requires") or {}
        unmet = [
            f"{field} >= {minimum}"
            for field, minimum in sorted(requires.items())
            if float(results.get(field) or 0) < float(minimum)
        ]
        if unmet:
            lines.append(f"  {metric}: skipped (requires {', '.join(unmet)})")
            continue
        if metric not in results:
            failures.append(f"{baseline_path.name}: metric {metric!r} missing from results")
            continue
        current = float(results[metric])
        reference = float(spec["value"])
        direction = spec.get("direction", "higher")
        if direction == "higher":
            floor = reference * (1.0 - tolerance)
            regressed = current < floor
            bound = f">= {floor:.3f}"
        elif direction == "lower":
            ceiling = reference * (1.0 + tolerance)
            regressed = current > ceiling
            bound = f"<= {ceiling:.3f}"
        else:
            failures.append(f"{baseline_path.name}: unknown direction {direction!r} for {metric}")
            continue
        status = "REGRESSION" if regressed else "ok"
        lines.append(
            f"  {metric}: current {current:.3f} vs baseline {reference:.3f} "
            f"(must be {bound}) ... {status}"
        )
        if regressed:
            failures.append(
                f"{baseline_path.name}: {metric} regressed to {current:.3f} "
                f"(baseline {reference:.3f}, bound {bound})"
            )
        if update:
            spec["value"] = current
    return failures, lines, (baseline if update else None)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baselines", default="benchmarks/baselines", help="directory of baseline JSON files"
    )
    parser.add_argument(
        "--results-dir", default=".", help="directory the smoke runs wrote BENCH_*.json into"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20, help="allowed fractional regression (0.2 = 20%%)"
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite baseline values from the current results"
    )
    args = parser.parse_args()

    baselines_dir = Path(args.baselines)
    results_dir = Path(args.results_dir)
    baseline_files = sorted(baselines_dir.glob("*.json"))
    if not baseline_files:
        print(f"no baseline files under {baselines_dir}", file=sys.stderr)
        return 2

    all_failures = []
    for baseline_path in baseline_files:
        failures, lines, updated = compare_one(
            baseline_path, results_dir, args.tolerance, args.update
        )
        print(baseline_path.name)
        for line in lines:
            print(line)
        all_failures.extend(failures)
        if updated is not None:
            baseline_path.write_text(json.dumps(updated, indent=2, sort_keys=True) + "\n")
            print(f"  baseline updated from {results_dir / baseline_path.name}")

    if all_failures:
        print(f"\n{len(all_failures)} baseline check(s) failed:", file=sys.stderr)
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall baseline checks passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
