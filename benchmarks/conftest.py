"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures through the
experiment modules in :mod:`repro.eval.experiments`.  Benchmarks run once
(``rounds=1``) because the quantity of interest is the *table content*, not
the wall-clock statistics; trained models are shared across benchmarks through
the process-wide :func:`repro.eval.harness.get_context` cache.

Environment variables:

* ``REPRO_BENCH_PROFILE`` — ``fast`` (default), ``bench`` or ``paper``.
* ``REPRO_BENCH_SEED`` — integer seed (default 0).
"""

from __future__ import annotations

import os

import pytest

from repro.config import get_profile


def pytest_configure(config):
    config.addinivalue_line("markers", "table: benchmark reproducing a paper table/figure")


@pytest.fixture(scope="session")
def bench_profile():
    name = os.environ.get("REPRO_BENCH_PROFILE", "fast")
    return get_profile(name)


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and print its table."""
    result = benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
    if isinstance(result, dict) and "table" in result:
        print()
        print(result["table"])
    return result
