"""Adaptive-attack study (Section 6.4 of the paper).

Measures how BPROM behaves against the paper's two candidate adaptive attacks:
(1) very low poison rates and (2) clean-label backdoors (SIG, LC), plus the
paper's stated limitation (all-to-all backdoors) as a contrast.

Run with:  python examples/adaptive_attack_study.py
"""

from __future__ import annotations

from repro.config import FAST
from repro.eval.experiments import ablations, table11_low_poison, table12_clean_label
from repro.eval.tables import format_table


def main() -> None:
    profile = FAST
    print("1) low poison rates (Table 11) — detection vs. attack stealth")
    low_poison = table11_low_poison.run(profile, seed=0, poison_rates=(0.05, 0.10, 0.20))
    print(low_poison["table"])

    print("\n2) clean-label backdoors (Table 12) — SIG and Label-Consistent")
    clean_label = table12_clean_label.run(profile, seed=0, datasets=("cifar10",))
    print(clean_label["table"])

    print("\n3) the paper's stated limitation — all-to-all backdoors")
    limitation = ablations.run_all_to_all(profile, seed=0)
    print(limitation["table"])

    summary = [
        {"study": "low poison rate", "rows": len(low_poison["rows"])},
        {"study": "clean label", "rows": len(clean_label["rows"])},
        {"study": "all-to-all limitation", "rows": len(limitation["rows"])},
    ]
    print()
    print(format_table(summary, title="adaptive-attack study summary"))


if __name__ == "__main__":
    main()
