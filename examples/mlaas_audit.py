"""MLaaS audit scenario: screening query-only models before deployment.

This is the deployment story from the paper's introduction: an organisation
sources image classifiers from a model market / MLaaS provider and only has
black-box query access (confidence vectors).  BPROM is used as the front-line
model-level screen; models flagged as backdoored are then subjected to
input-level filtering (STRIP) at inference time, while clean models skip the
per-input overhead — avoiding the false-positive cost shown in Table 1.

Run with:  python examples/mlaas_audit.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import attack_defaults, build_attack
from repro.config import FAST
from repro.core import BpromDetector
from repro.datasets import load_dataset
from repro.defenses import StripDefense
from repro.defenses.base import triggered_and_clean_split
from repro.models import build_classifier


def build_vendor_models(profile, source_train, seed: int = 0):
    """Simulate a vendor catalogue: two clean models and two compromised ones."""
    catalogue = []
    for index in range(2):
        model = build_classifier("resnet18", source_train.num_classes, profile.image_size, rng=seed + index, name=f"vendor-clean-{index}")
        model.fit(source_train, profile.classifier, rng=seed + 10 + index)
        catalogue.append((f"vendor-clean-{index}", model, None))
    for index, attack_name in enumerate(("blend", "adaptive_patch")):
        attack = build_attack(attack_name, target_class=1, seed=seed + 20 + index)
        defaults = attack_defaults(attack_name)
        poisoning = attack.poison(source_train, poison_rate=defaults.poison_rate, cover_rate=defaults.cover_rate, rng=seed + 30 + index)
        model = build_classifier("resnet18", source_train.num_classes, profile.image_size, rng=seed + 40 + index, name=f"vendor-{attack_name}")
        model.fit(poisoning.dataset, profile.classifier, rng=seed + 50 + index)
        catalogue.append((f"vendor-{attack_name}", model, attack))
    return catalogue


def main() -> None:
    profile = FAST
    source_train, source_test = load_dataset("cifar10", profile, seed=0)
    target_train, target_test = load_dataset("stl10", profile, seed=0)

    print("building the vendor catalogue (2 clean, 2 backdoored models) ...")
    catalogue = build_vendor_models(profile, source_train)

    print("fitting BPROM once (reused for every vendor model) ...")
    detector = BpromDetector(profile=profile, seed=0)
    detector.fit(source_test, target_train, target_test)

    print("\n--- audit report ---")
    for name, model, attack in catalogue:
        # the auditor only calls model.predict_proba — a black-box query interface
        result = detector.inspect(model, query_function=model.predict_proba)
        verdict = "REJECT / quarantine" if result.is_backdoored else "accept"
        print(f"{name:24s} backdoor score {result.backdoor_score:.3f} -> {verdict}")

        if result.is_backdoored and attack is not None:
            # second line of defense: per-input filtering on the quarantined model
            strip = StripDefense(source_test, num_overlays=6, rng=0)
            clean_images, triggered_images = triggered_and_clean_split(attack, source_test, max_samples=24, rng=0)
            evaluation = strip.evaluate(model, clean_images, triggered_images)
            print(f"{'':24s} STRIP input filter on quarantined model: AUROC {evaluation.auroc:.3f}")


if __name__ == "__main__":
    main()
