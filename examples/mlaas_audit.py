"""MLaaS audit scenario: screening query-only models before deployment.

This is the deployment story from the paper's introduction: an organisation
sources image classifiers from a model market / MLaaS provider and only has
black-box query access (confidence vectors).  BPROM is used as the front-line
model-level screen; models flagged as backdoored are then subjected to
input-level filtering (STRIP) at inference time, while clean models skip the
per-input overhead — avoiding the false-positive cost shown in Table 1.

The example runs on the staged pipeline runtime: the detector is fitted once
(shadow training and prompting fan out over worker threads), persisted to
disk, and the vendor catalogue is screened through the *streaming* audit
endpoint — ``AsyncAuditService.stream`` yields each verdict the moment its
model finishes, so quarantine actions start before the slowest model is
scored, while bounded in-flight backpressure keeps memory constant however
large the catalogue grows.  Verdicts are bit-identical to the batch
``AuditService.audit`` path.

Run with:  python examples/mlaas_audit.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.attacks import attack_defaults, build_attack
from repro.config import FAST, RuntimeConfig
from repro.core import BpromDetector
from repro.datasets import load_dataset
from repro.defenses import StripDefense
from repro.defenses.base import triggered_and_clean_split
from repro.models import build_classifier
from repro.runtime import AsyncAuditService


def build_vendor_models(profile, source_train, seed: int = 0):
    """Simulate a vendor catalogue: two clean models and two compromised ones."""
    catalogue = {}
    attacks = {}
    for index in range(2):
        name = f"vendor-clean-{index}"
        model = build_classifier("resnet18", source_train.num_classes, profile.image_size, rng=seed + index, name=name)
        model.fit(source_train, profile.classifier, rng=seed + 10 + index)
        catalogue[name] = model
    for index, attack_name in enumerate(("blend", "adaptive_patch")):
        name = f"vendor-{attack_name}"
        attack = build_attack(attack_name, target_class=1, seed=seed + 20 + index)
        defaults = attack_defaults(attack_name)
        poisoning = attack.poison(source_train, poison_rate=defaults.poison_rate, cover_rate=defaults.cover_rate, rng=seed + 30 + index)
        model = build_classifier("resnet18", source_train.num_classes, profile.image_size, rng=seed + 40 + index, name=name)
        model.fit(poisoning.dataset, profile.classifier, rng=seed + 50 + index)
        catalogue[name] = model
        attacks[name] = attack
    return catalogue, attacks


def main() -> None:
    profile = FAST
    runtime = RuntimeConfig(workers=4)
    source_train, source_test = load_dataset("cifar10", profile, seed=0)
    target_train, target_test = load_dataset("stl10", profile, seed=0)

    print("building the vendor catalogue (2 clean, 2 backdoored models) ...")
    catalogue, attacks = build_vendor_models(profile, source_train)

    print("fitting BPROM once (shadow training / prompting fan out over 4 workers) ...")
    detector = BpromDetector(profile=profile, seed=0, runtime=runtime)
    detector.fit(source_test, target_train, target_test)

    with tempfile.TemporaryDirectory() as scratch:
        artifact = detector.save(Path(scratch) / "detector")
        print(f"detector persisted to {artifact} — standing up the streaming audit service from disk")
        service = AsyncAuditService.from_saved(artifact, runtime=runtime, max_in_flight=4)

        # the auditor only calls model.predict_proba — a black-box query interface
        query_functions = {name: model.predict_proba for name, model in catalogue.items()}
        print("\n--- audit report (verdicts stream in as each model finishes) ---")
        start = time.perf_counter()
        first_verdict_s = None
        quarantined = []
        for verdict in service.stream(catalogue, query_functions=query_functions):
            if first_verdict_s is None:
                first_verdict_s = time.perf_counter() - start
            action = "REJECT / quarantine" if verdict.is_backdoored else "accept"
            print(
                f"{verdict.name:24s} backdoor score {verdict.backdoor_score:.3f} "
                f"({verdict.query_count} queries in {verdict.query_calls} calls) -> {action}"
            )
            if verdict.is_backdoored and verdict.name in attacks:
                quarantined.append(verdict.name)
        # STRIP runs after the timed loop so the reported throughput measures
        # the streaming audit path alone
        total_s = time.perf_counter() - start
        print(
            f"\ntime to first verdict {first_verdict_s:.2f}s, full catalogue {total_s:.2f}s "
            f"({len(catalogue) / total_s:.2f} models/s)"
        )

        for name in quarantined:
            # second line of defense: per-input filtering on the quarantined model
            attack = attacks[name]
            strip = StripDefense(source_test, num_overlays=6, rng=0)
            clean_images, triggered_images = triggered_and_clean_split(attack, source_test, max_samples=24, rng=0)
            evaluation = strip.evaluate(catalogue[name], clean_images, triggered_images)
            print(f"{name:24s} STRIP input filter on quarantined model: AUROC {evaluation.auroc:.3f}")


if __name__ == "__main__":
    main()
