"""MLaaS audit scenario: a multi-tenant gateway screening query-only models.

This is the deployment story from the paper's introduction, scaled to the
shape a production auditor actually has: an organisation sources image
classifiers from *several* model markets — different architecture families,
different suspicious tasks — and only has black-box query access (confidence
vectors).  One :class:`~repro.runtime.gateway.AuditGateway` is the front door
for the whole fleet:

* each *tenant* (here: a ResNet vision catalogue on CIFAR-10 and an MLP
  catalogue on SVHN) gets its detector through the
  :class:`~repro.runtime.registry.DetectorRegistry` — fitted at most once
  fleet-wide and reusable from the registry's artifact store by any other
  process (this demo uses a throwaway store directory, so each run fits
  cold; point ``cache_dir`` at a durable path to watch later runs stand
  both tenants up with zero training);
* mixed submissions are routed to their tenant by architecture family and
  metadata, fanned out under one shared in-flight budget, and the per-tenant
  verdict streams merge into a single completion-ordered stream;
* models flagged as backdoored are then subjected to input-level filtering
  (STRIP) at inference time, while clean models skip the per-input overhead —
  avoiding the false-positive cost shown in Table 1;
* the fleet-scale **verdict cache** (``verdict_cache=True``) memoises
  verdicts by model-weight fingerprint: resubmitting an already-audited
  model — the common case in redundant production traffic — is served from
  the cache with *zero* additional black-box queries;
* inspections run on a shared **process-backed worker pool**
  (``gateway_backend="process"``): pool workers hydrate each tenant's
  detector from the artifact store by registry key — never refitting — so
  the fleet uses every core while verdicts stay bit-identical to the
  thread and serial paths;
* a :class:`~repro.runtime.gateway.TenantProvisioner` stands tenants up on
  **first touch**: when a brand-new model market shows up mid-stream, the
  gateway derives the detector spec from the submission's metadata and fits
  it through the registry's single-flight lock — exactly once, fleet-wide;
* ``gateway.stats()`` closes the loop: per-tenant verdict counts, query
  budgets, cache hit-rate, amortised queries-per-verdict, worker-pool task
  counters, registry hit/miss/evict counters and store statistics in one
  snapshot;
* ``telemetry=True`` traces every submission end to end — worker-side
  inspection spans ship back across the process-pool boundary — and the
  **flight recorder** at the bottom renders per-stage latency percentiles,
  query economics and critical-path waterfalls from the exported trace
  (the same report as ``python -m repro.obs report <trace.jsonl>``).

Run with:  python examples/mlaas_audit.py
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.attacks import attack_defaults, build_attack
from repro.config import FAST, RuntimeConfig
from repro.datasets import load_dataset
from repro.defenses import StripDefense
from repro.defenses.base import triggered_and_clean_split
from repro.models import build_classifier
from repro.obs import get_tracer
from repro.obs.export import export_jsonl
from repro.obs.report import render_report
from repro.runtime import AuditGateway, DetectorRegistry, DetectorSpec, TenantProvisioner


def build_vendor_models(profile, architecture, source_train, seed=0):
    """Simulate one market's catalogue: two clean models, two compromised."""
    catalogue = {}
    attacks = {}
    for index in range(2):
        name = f"{architecture}-clean-{index}"
        model = build_classifier(
            architecture, source_train.num_classes, profile.image_size,
            rng=seed + index, name=name,
        )
        model.fit(source_train, profile.classifier, rng=seed + 10 + index)
        catalogue[name] = model
    for index, attack_name in enumerate(("blend", "adaptive_patch")):
        name = f"{architecture}-{attack_name}"
        attack = build_attack(attack_name, target_class=1, seed=seed + 20 + index)
        defaults = attack_defaults(attack_name)
        poisoning = attack.poison(
            source_train, poison_rate=defaults.poison_rate,
            cover_rate=defaults.cover_rate, rng=seed + 30 + index,
        )
        model = build_classifier(
            architecture, source_train.num_classes, profile.image_size,
            rng=seed + 40 + index, name=name,
        )
        model.fit(poisoning.dataset, profile.classifier, rng=seed + 50 + index)
        catalogue[name] = model
        attacks[name] = attack
    return catalogue, attacks


def main() -> None:
    profile = FAST
    target_train, target_test = load_dataset("stl10", profile, seed=0)

    # two tenants, two architecture families, two suspicious tasks
    cifar_train, cifar_test = load_dataset("cifar10", profile, seed=0)
    svhn_train, svhn_test = load_dataset("svhn", profile, seed=0)

    print("building two vendor catalogues (2 clean + 2 backdoored models each) ...")
    cnn_catalogue, cnn_attacks = build_vendor_models(profile, "resnet18", cifar_train, seed=0)
    mlp_catalogue, _ = build_vendor_models(profile, "mlp", svhn_train, seed=100)

    with tempfile.TemporaryDirectory() as scratch:
        # the registry's store persists fitted detectors: re-pointing
        # cache_dir at a durable path makes every later gateway process stand
        # its tenants up with zero training
        # the process backend dispatches inspections to a persistent pool of
        # OS processes; workers warm-load detectors from this store by
        # registry key (never refitting), so the fleet scales across cores
        # telemetry=True turns on span tracing: every submission gets a trace
        # from route through pool execution to verdict, and the worker-side
        # inspection spans ship back across the process boundary
        runtime = RuntimeConfig(
            workers=4,
            cache_dir=str(Path(scratch) / "store"),
            verdict_cache=True,
            gateway_backend="process",
            gateway_workers=2,
            telemetry=True,
        )
        registry = DetectorRegistry(runtime=runtime)
        provisioner = TenantProvisioner(
            reserved_clean=cifar_test,
            target_train=target_train,
            target_test=target_test,
            template=DetectorSpec(
                defense="bprom", profile=profile, architecture="resnet18", seed=0
            ),
        )
        with AuditGateway(
            registry=registry, max_in_flight=4, provisioner=provisioner
        ) as gateway:
            print("standing up two tenants through the detector registry ...")
            start = time.perf_counter()
            cnn_tenant = gateway.register_tenant(
                "vision-cnn",
                DetectorSpec(defense="bprom", profile=profile, architecture="resnet18", seed=0),
                cifar_test, target_train, target_test,
            )
            mlp_tenant = gateway.register_tenant(
                "tabular-mlp",
                DetectorSpec(defense="bprom", profile=profile, architecture="mlp", seed=0),
                svhn_test, target_train, target_test,
            )
            print(
                f"tenants ready in {time.perf_counter() - start:.2f}s "
                f"(vision-cnn: {cnn_tenant.entry.source}, tabular-mlp: {mlp_tenant.entry.source})"
            )

            # mixed submission stream; the auditor only calls predict_proba
            submissions = [
                (name, model, {"architecture": model.architecture})
                for name, model in {**cnn_catalogue, **mlp_catalogue}.items()
            ]
            query_functions = {
                name: model.predict_proba
                for name, model in {**cnn_catalogue, **mlp_catalogue}.items()
            }

            print("\n--- merged audit stream (verdicts arrive as models finish) ---")
            start = time.perf_counter()
            first_verdict_s = None
            quarantined = []
            for verdict in gateway.stream(submissions, query_functions=query_functions):
                if first_verdict_s is None:
                    first_verdict_s = time.perf_counter() - start
                action = "REJECT / quarantine" if verdict.is_backdoored else "accept"
                print(
                    f"[{verdict.tenant:11s}] {verdict.name:24s} "
                    f"score {verdict.backdoor_score:.3f} "
                    f"({verdict.query_count} queries in {verdict.query_calls} calls) -> {action}"
                )
                if verdict.is_backdoored and verdict.name in cnn_attacks:
                    quarantined.append(verdict.name)
            total_s = time.perf_counter() - start
            print(
                f"\ntime to first verdict {first_verdict_s:.2f}s, mixed catalogue "
                f"{total_s:.2f}s ({len(submissions) / total_s:.2f} models/s)"
            )

            for name in quarantined:
                # second line of defense: per-input filtering on quarantined models
                attack = cnn_attacks[name]
                strip = StripDefense(cifar_test, num_overlays=6, rng=0)
                clean_images, triggered_images = triggered_and_clean_split(
                    attack, cifar_test, max_samples=24, rng=0
                )
                evaluation = strip.evaluate(cnn_catalogue[name], clean_images, triggered_images)
                print(f"{name:24s} STRIP input filter on quarantined model: AUROC {evaluation.auroc:.3f}")

            # redundant traffic: a vendor re-uploads an already-audited model
            # under a new key; the verdict cache recognises the weights by
            # fingerprint and serves the verdict without spending a query
            resubmitted = next(iter(mlp_catalogue))
            print("\n--- warm resubmission (verdict cache) ---")
            start = time.perf_counter()
            [warm] = list(
                gateway.stream([(f"resubmit-{resubmitted}", mlp_catalogue[resubmitted])])
            )
            warm_s = time.perf_counter() - start
            print(
                f"{warm.name:32s} served from cache tier {warm.cache!r} in "
                f"{warm_s * 1000:.1f}ms with 0 new queries"
            )

            # a brand-new model market appears mid-stream: submissions route
            # by architecture *family*, and no transformer tenant was ever
            # registered — so the first mobilevit submission triggers the
            # provisioner: the spec derives from the metadata, the fit goes
            # through the registry's single-flight lock (exactly once even
            # with racing gateways), and the verdict arrives as usual
            print("\n--- first-touch auto-provisioning (new transformer market) ---")
            vit = build_classifier(
                "mobilevit", cifar_train.num_classes, profile.image_size,
                rng=200, name="mobilevit-clean-0",
            )
            vit.fit(cifar_train, profile.classifier, rng=201)
            start = time.perf_counter()
            [fresh] = list(
                gateway.stream(
                    [(vit.name, vit, {"architecture": vit.architecture})],
                    query_functions={vit.name: vit.predict_proba},
                )
            )
            print(
                f"{fresh.name:24s} routed to auto-provisioned tenant "
                f"{fresh.tenant!r} in {time.perf_counter() - start:.2f}s "
                f"(score {fresh.backdoor_score:.3f})"
            )

            stats = gateway.stats()
            pool_stats = stats["worker_pool"]
            print(
                f"\nworker pool: {pool_stats['backend']} backend x "
                f"{pool_stats['workers']} workers, {pool_stats['tasks']} inspection "
                f"tasks dispatched"
            )
            provisioned = sorted(
                tenant_id
                for tenant_id, tenant in stats["tenants"].items()
                if tenant["provisioned"]
            )
            print(f"auto-provisioned tenants: {provisioned}")
            cache_stats = stats["verdict_cache"]
            print(
                f"cache hit-rate {cache_stats['hit_rate']:.3f} "
                f"({cache_stats['memory_hits']} memory / {cache_stats['store_hits']} store / "
                f"{cache_stats['dedup_hits']} dedup hits, {cache_stats['misses']} misses, "
                f"{cache_stats['inspections']} inspections)"
            )
            print(
                f"amortised queries/verdict: fleet {stats['amortized_queries_per_verdict']:.1f}"
                + "".join(
                    f", {tenant_id} {tenant['amortized_queries_per_verdict']:.1f}"
                    for tenant_id, tenant in sorted(stats["tenants"].items())
                )
            )

            print("\n--- serving dashboard (gateway.stats()) ---")
            print(json.dumps(stats, indent=2, sort_keys=True))

        # everything above was traced; the flight recorder turns the span
        # buffer into per-stage percentiles, query economics and waterfalls
        # (the same report `python -m repro.obs report <trace>` renders)
        spans = get_tracer().drain()
        export_jsonl(spans, str(Path(scratch) / "trace.jsonl"))
        print("\n--- flight recorder (python -m repro.obs report) ---")
        print(render_report(spans, top=2))


if __name__ == "__main__":
    main()
