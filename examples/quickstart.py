"""Quickstart: detect a backdoor in a suspicious model with BPROM.

This walks through the full paper pipeline on the scaled-down synthetic
substrate: train a clean and a BadNets-backdoored "suspicious" classifier,
fit a BPROM detector (shadow models + visual prompting + meta-classifier),
and inspect both suspicious models.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.attacks import attack_defaults, build_attack
from repro.config import FAST
from repro.core import BpromDetector
from repro.datasets import load_dataset
from repro.models import build_classifier
from repro.prompting import train_prompt_whitebox


def main() -> None:
    profile = FAST
    print(f"profile: {profile.name} (image size {profile.image_size})")

    # the suspicious task (D_S domain) and the external clean dataset (D_T)
    source_train, source_test = load_dataset("cifar10", profile, seed=0)
    target_train, target_test = load_dataset("stl10", profile, seed=0)

    # --- a clean and a backdoored suspicious model -------------------------------
    print("training a clean suspicious model ...")
    clean_model = build_classifier("resnet18", source_train.num_classes, profile.image_size, rng=1, name="suspicious-clean")
    clean_model.fit(source_train, profile.classifier, rng=2)
    print(f"  clean accuracy: {clean_model.evaluate(source_test):.3f}")

    print("training a BadNets-backdoored suspicious model ...")
    attack = build_attack("badnets", target_class=0, seed=3)
    defaults = attack_defaults("badnets")
    poisoning = attack.poison(source_train, poison_rate=defaults.poison_rate, rng=4)
    backdoored_model = build_classifier("resnet18", source_train.num_classes, profile.image_size, rng=5, name="suspicious-backdoored")
    backdoored_model.fit(poisoning.dataset, profile.classifier, rng=6)
    triggered = attack.triggered_test_set(source_test)
    print(f"  clean accuracy: {backdoored_model.evaluate(source_test):.3f}")
    print(f"  attack success rate: {backdoored_model.evaluate_attack_success(triggered.images, 0, source_test.labels):.3f}")

    # --- the class-subspace-inconsistency signal (Figure 2 / Tables 3-4) ----------
    print("visual prompting both models on the external dataset (white-box view) ...")
    prompted_clean = train_prompt_whitebox(clean_model, target_train, profile.prompt, rng=7)
    prompted_backdoored = train_prompt_whitebox(backdoored_model, target_train, profile.prompt, rng=7)
    print(f"  prompted accuracy (clean model):      {prompted_clean.evaluate(target_test):.3f}")
    print(f"  prompted accuracy (backdoored model): {prompted_backdoored.evaluate(target_test):.3f}")

    # --- the full BPROM detector ----------------------------------------------------
    print("fitting the BPROM detector (shadow models + prompting + meta-classifier) ...")
    reserved_clean = source_test  # the defender's reserved clean dataset D_S
    detector = BpromDetector(profile=profile, seed=0)
    detector.fit(reserved_clean, target_train, target_test)

    for name, model in (("clean", clean_model), ("backdoored", backdoored_model)):
        result = detector.inspect(model)
        verdict = "BACKDOORED" if result.is_backdoored else "clean"
        print(
            f"  suspicious ({name}): backdoor score {result.backdoor_score:.3f} "
            f"-> {verdict} (prompted accuracy {result.prompted_accuracy:.3f})"
        )


if __name__ == "__main__":
    main()
