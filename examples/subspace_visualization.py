"""Class-subspace inconsistency visualisation (Figures 2, 3 and 5 of the paper).

Trains a clean and a Trojan-backdoored model, projects their per-class
penultimate features to 2-D with PCA, and prints summary geometry (how much
the backdoor's target class crowds its neighbours).  Also reproduces the
Figure 5 view: PCA of the prompted meta-features of clean vs. backdoored
models.  The projections are printed as coarse ASCII scatter plots so the
example has no plotting dependency.

Run with:  python examples/subspace_visualization.py
"""

from __future__ import annotations

import numpy as np

from repro.config import FAST
from repro.eval.experiments import figure03_subspace


def ascii_scatter(points: np.ndarray, labels: np.ndarray, width: int = 48, height: int = 16) -> str:
    """Render labelled 2-D points as a small ASCII scatter plot."""
    canvas = [[" "] * width for _ in range(height)]
    x, y = points[:, 0], points[:, 1]
    x = (x - x.min()) / (np.ptp(x) + 1e-12) * (width - 1)
    y = (y - y.min()) / (np.ptp(y) + 1e-12) * (height - 1)
    glyphs = "0123456789abcdefghijklmnop"
    for px, py, label in zip(x.astype(int), y.astype(int), labels):
        canvas[height - 1 - py][px] = glyphs[int(label) % len(glyphs)]
    return "\n".join("".join(row) for row in canvas)


def main() -> None:
    profile = FAST
    print("reproducing Figure 3: feature-space class subspaces (clean vs infected)")
    figure3 = figure03_subspace.run_figure3(profile, seed=0, dataset="cifar10", attack="badnets")
    print(figure3["table"])
    print("\nclean model feature projection (digit = class):")
    print(ascii_scatter(figure3["clean_projection"]["projection"], figure3["clean_projection"]["labels"]))
    print("\ninfected model feature projection (digit = class):")
    print(ascii_scatter(figure3["infected_projection"]["projection"], figure3["infected_projection"]["labels"]))

    print("\nreproducing Figure 5: PCA of prompted meta-features (0 = clean, 1 = backdoored)")
    figure5 = figure03_subspace.run_figure5(profile, seed=0, dataset="cifar10", attack="trojan")
    print(figure5["table"])
    projection = figure5["projection"]
    print(ascii_scatter(projection["projection"], projection["labels"]))


if __name__ == "__main__":
    main()
