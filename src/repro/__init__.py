"""Reproduction of BPROM: black-box model-level backdoor detection via visual prompting.

The package is organised as a set of substrates (``repro.nn``, ``repro.models``,
``repro.datasets``, ``repro.attacks``, ``repro.prompting``, ``repro.ml``) on top
of which the paper's contribution (``repro.core``), the baseline defenses
(``repro.defenses``) and the evaluation harness (``repro.eval``) are built.

The most common entry point is :class:`repro.core.BpromDetector`; see
``examples/quickstart.py`` for a runnable walk-through.
"""

from repro.version import __version__

__all__ = ["__version__"]
