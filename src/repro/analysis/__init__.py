"""repro-lint: AST-based contract linter for the repository's invariants.

Four rule families guard the contracts every PR so far has shipped by
convention (see ARCHITECTURE.md "Static contracts"):

* **D-series** — determinism: no global RNG state, no unseeded generators, no
  wall clocks feeding computation, no filesystem/set iteration order leaks;
* **P-series** — precision tiers: no float64 scalars/scratch upcasting the
  float32 tier in ``repro/nn`` forward/backward paths;
* **K-series** — config/key sync: every ``RuntimeConfig``-style knob is wired
  to its ``REPRO_*`` env var and documented; key builders only record a
  precision entry off the float64 reference tier;
* **L-series** — lock/exception hygiene in ``repro/runtime``.

Run as ``python -m repro.analysis src/``; exits non-zero on new findings.
Silence a deliberate exception inline with a reason::

    value = risky()  # repro-lint: disable=D104 -- timestamps only label logs

or tolerate pre-existing findings with ``--baseline`` / ``--write-baseline``.
"""

from repro.analysis.baseline import fingerprint, load_baseline, write_baseline
from repro.analysis.core import RULES, Finding, Rule, register
from repro.analysis.engine import LintResult, lint_paths, lint_source
from repro.analysis.report import render_json, render_rule_list, render_text

__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "fingerprint",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "render_json",
    "render_rule_list",
    "render_text",
    "write_baseline",
]
