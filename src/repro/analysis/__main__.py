"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 — clean (after inline suppressions and the baseline), 1 — new
findings (or unparsable files), 2 — usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.baseline import write_baseline
from repro.analysis.engine import lint_paths
from repro.analysis.report import render_json, render_rule_list, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: contract linter for determinism, precision-tier, "
        "config-sync and lock-safety invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="tolerate findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids or family letters to run (e.g. D,P or D105)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids or family letters to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list every rule and exit"
    )
    return parser


def _split(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    result = lint_paths(
        args.paths,
        baseline=args.baseline,
        select=_split(args.select),
        ignore=_split(args.ignore),
    )

    if args.write_baseline:
        write_baseline(args.write_baseline, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to baseline "
            f"{args.write_baseline}"
        )
        return 0

    print(render_json(result) if args.format == "json" else render_text(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
