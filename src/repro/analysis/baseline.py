"""Checked-in baselines: tolerate pre-existing findings, fail on new ones.

A baseline entry fingerprints a finding by ``(rule, path, offending line
text)`` rather than line number, so unrelated edits above a baselined finding
do not resurrect it.  Identical lines are counted: a baseline with two entries
for the same fingerprint tolerates at most two such findings.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import List, Tuple, Union

from repro.analysis.core import Finding

PathLike = Union[str, Path]

BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    payload = f"{finding.rule}|{finding.path}|{finding.line_text}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def write_baseline(path: PathLike, findings: List[Finding]) -> None:
    entries = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "fingerprint": fingerprint(finding),
            "message": finding.message,
        }
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_baseline(path: PathLike) -> "Counter[str]":
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline version {version!r} in {path}")
    return Counter(entry["fingerprint"] for entry in payload.get("findings", []))


def split_new(
    findings: List[Finding], baseline: "Counter[str]"
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, baselined) against a baseline counter."""
    budget = Counter(baseline)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        digest = fingerprint(finding)
        if budget[digest] > 0:
            budget[digest] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
