"""K-series rules: config/env wiring and cache-key construction stay in sync.

Two contracts:

* every field of a config dataclass that ships a ``from_env`` classmethod must
  be wired to a ``REPRO_<FIELD>`` environment variable and documented in the
  ``from_env`` docstring — a new knob cannot silently miss its env plumbing
  (K101/K102/K103);
* artifact/registry key builders only add a ``"precision"`` entry *off* the
  float64 reference tier, so every hash minted before the precision split
  stays warm while the tiers can never share an artifact (K201);
* verdict-cache key builders always carry the detector digest and the
  precision tier, so a detector refit (or a precision switch) can never serve
  another detector's memoised verdict (K202).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, LintModule, Rule, register

_ENV_RE = re.compile(r"REPRO_[A-Z0-9_]+")


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


def _field_names(node: ast.ClassDef) -> List[Tuple[str, ast.AnnAssign]]:
    fields = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        if stmt.target.id.startswith("_"):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append((stmt.target.id, stmt))
    return fields


def _from_env(node: ast.ClassDef) -> Optional[ast.FunctionDef]:
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "from_env":
            return stmt
    return None


def _constructor_keywords(cls: ast.ClassDef, fn: ast.FunctionDef) -> Set[str]:
    keywords: Set[str] = set()
    for call in ast.walk(fn):
        if not isinstance(call, ast.Call):
            continue
        name = getattr(call.func, "id", None)
        if name in ("cls", cls.name):
            keywords.update(k.arg for k in call.keywords if k.arg is not None)
    return keywords


def _env_references(fn: ast.FunctionDef) -> Set[str]:
    refs: Set[str] = set()
    docstring = ast.get_docstring(fn) or ""
    for node in ast.walk(fn):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value != docstring:
                refs.update(_ENV_RE.findall(node.value))
    return refs


def _iter_env_dataclasses(
    module: LintModule,
) -> Iterator[Tuple[ast.ClassDef, ast.FunctionDef]]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and _is_dataclass(node):
            fn = _from_env(node)
            if fn is not None:
                yield node, fn


@register
class ConfigFieldUnwired(Rule):
    id = "K101"
    name = "config-field-unwired"
    summary = "dataclass field missing from the from_env constructor call"

    def check(self, module: LintModule) -> Iterable[Finding]:
        for cls, fn in _iter_env_dataclasses(module):
            wired = _constructor_keywords(cls, fn)
            for name, stmt in _field_names(cls):
                if name not in wired:
                    yield module.finding(
                        self,
                        stmt,
                        f"{cls.name}.{name} is not passed in from_env's "
                        f"constructor call — a process configured via REPRO_* "
                        "env vars silently loses this knob",
                    )


@register
class ConfigEnvNameDrift(Rule):
    id = "K102"
    name = "config-env-name-drift"
    summary = "dataclass field has no matching REPRO_<FIELD> read in from_env"

    def check(self, module: LintModule) -> Iterable[Finding]:
        for cls, fn in _iter_env_dataclasses(module):
            refs = _env_references(fn)
            for name, stmt in _field_names(cls):
                expected = f"REPRO_{name.upper()}"
                if expected not in refs:
                    yield module.finding(
                        self,
                        stmt,
                        f"{cls.name}.{name} expects the environment variable "
                        f"{expected}, which from_env never reads",
                    )


@register
class ConfigEnvDocDrift(Rule):
    id = "K103"
    name = "config-env-doc-drift"
    summary = "REPRO_* vars read by from_env and its docstring list disagree"

    def check(self, module: LintModule) -> Iterable[Finding]:
        for _cls, fn in _iter_env_dataclasses(module):
            refs = _env_references(fn)
            documented = set(_ENV_RE.findall(ast.get_docstring(fn) or ""))
            for env in sorted(refs - documented):
                yield module.finding(
                    self,
                    fn,
                    f"{env} is read by from_env but missing from its docstring's "
                    "documented env-var list",
                )
            for env in sorted(documented - refs):
                yield module.finding(
                    self,
                    fn,
                    f"{env} is documented in the from_env docstring but never "
                    "read — stale documentation",
                )


@register
class PrecisionKeyUnguarded(Rule):
    id = "K201"
    name = "precision-key-unguarded"
    summary = (
        'key builders must add a "precision" entry only off the float64 tier, '
        "or every pre-split float64 hash goes cold"
    )

    def _guarded(self, module: LintModule, node: ast.AST) -> bool:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.If):
                for sub in ast.walk(ancestor.test):
                    if isinstance(sub, ast.Constant) and sub.value == "float64":
                        return True
        return False

    def check(self, module: LintModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and target.slice.value == "precision"
                ):
                    if not self._guarded(module, node):
                        yield module.finding(
                            self,
                            node,
                            'unconditional key["precision"] assignment: guard '
                            'with `if precision != "float64"` so float64-tier '
                            "hashes match the pre-precision-split artifacts",
                        )


_VERDICT_KEY_FN_RE = re.compile(r"(verdict.*key|key.*verdict)", re.IGNORECASE)

#: coordinates every verdict-cache key must carry: the fitted detector's
#: digest (a refit must invalidate its verdicts) and the precision tier
#: (float32 and float64 deployments must never share an entry)
_VERDICT_KEY_REQUIRED = ("detector_digest", "precision")


@register
class VerdictKeyMissingCoordinate(Rule):
    id = "K202"
    name = "verdict-key-missing-coordinate"
    summary = (
        "verdict-cache key builders must include the detector digest and the "
        "precision tier, or refits/precision switches serve stale verdicts"
    )

    @staticmethod
    def _string_keys(fn: ast.AST) -> Set[str]:
        """String keys a function puts into key payloads: dict-literal keys
        plus constant-subscript assignment targets."""
        keys: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        keys.add(target.slice.value)
        return keys

    def check(self, module: LintModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _VERDICT_KEY_FN_RE.search(node.name):
                continue
            keys = self._string_keys(node)
            if not keys:
                continue  # no key payload built here (e.g. a lookup helper)
            for required in _VERDICT_KEY_REQUIRED:
                if required not in keys:
                    yield module.finding(
                        self,
                        node,
                        f"verdict-cache key builder {node.name!r} never sets "
                        f"{required!r}: a cached verdict could outlive its "
                        "detector fit or leak across precision tiers",
                    )
