"""Core linter primitives: findings, the rule registry, per-module context.

``repro-lint`` is a contract linter, not a style linter: every rule encodes an
invariant the repository's bit-identity / determinism story depends on (see
ARCHITECTURE.md "Static contracts").  Rules are small classes registered in
:data:`RULES`; each receives one parsed :class:`LintModule` and yields
:class:`Finding` rows.  The engine (:mod:`repro.analysis.engine`) owns file
walking, suppression comments and baselines, so rules stay purely syntactic.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

#: pseudo-rule ids emitted by the engine rather than a registered rule
PARSE_ERROR_RULE = "X001"
SUPPRESSION_REASON_RULE = "S001"

#: engine-level pseudo-rules, documented alongside the real registry
PSEUDO_RULES: Dict[str, str] = {
    PARSE_ERROR_RULE: "file does not parse as Python (reported, never suppressed)",
    SUPPRESSION_REASON_RULE: (
        "a `# repro-lint: disable=...` comment has no `-- reason`; every "
        "suppression must say why the invariant does not apply"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: stripped source text of the offending line (baseline fingerprints key
    #: on this, so findings survive unrelated line-number drift)
    line_text: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


class LintModule:
    """One parsed source file plus the name-resolution context rules need.

    ``relpath`` is the posix-style path the file was addressed by (relative to
    the lint invocation), which is what path-scoped rules match against —
    fixture tests lint in-memory sources under synthetic paths like
    ``src/repro/nn/fixture.py`` to hit the same scoping.
    """

    def __init__(self, relpath: str, text: str, tree: ast.Module) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                child._repro_parent = parent  # type: ignore[attr-defined]
        self.aliases = _import_aliases(tree)

    # -- path scoping ---------------------------------------------------------
    @property
    def filename(self) -> str:
        return self.relpath.rsplit("/", 1)[-1]

    def within(self, prefix: str) -> bool:
        """Whether this module lives under a package sub-path like ``repro/nn``."""
        padded = "/" + self.relpath
        return f"/{prefix}/" in padded or padded.endswith("/" + prefix)

    def is_file(self, suffix: str) -> bool:
        """Whether this module is exactly the file ``suffix`` names."""
        return ("/" + self.relpath).endswith("/" + suffix)

    # -- name resolution ------------------------------------------------------
    def canonical(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to its canonical dotted import path.

        ``np.random.seed`` resolves to ``numpy.random.seed`` under
        ``import numpy as np``; names the imports don't explain resolve to
        ``None`` (rules must not guess about locals).
        """
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.canonical(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "_repro_parent", None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def statement_line(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.id,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            line_text=self.statement_line(node),
        )


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map every imported local name to its canonical dotted path."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname is not None:
                    aliases[item.asname] = item.name
                else:
                    # ``import numpy.random`` binds the *root* name
                    root = item.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = f"{node.module}.{item.name}"
    return aliases


class Rule:
    """Base class for one lint rule; subclasses register via :func:`register`."""

    #: short stable id like ``D101`` — what suppressions and baselines name
    id: str = ""
    #: kebab-case slug for humans
    name: str = ""
    #: one-line description of the protected invariant
    summary: str = ""

    def check(self, module: LintModule) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of the rule to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


# -- suppression comments -----------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9]+(?:\s*,\s*[A-Za-z0-9]+)*)"
    r"(?:\s+--\s*(\S.*))?"
)


@dataclass
class Suppression:
    """One ``# repro-lint: disable=...`` comment on one line."""

    line: int
    rules: Tuple[str, ...]
    reason: Optional[str]
    #: findings this suppression actually silenced (engine bookkeeping)
    used: List[Finding] = field(default_factory=list)

    def covers(self, finding: Finding) -> bool:
        return finding.line == self.line and (
            finding.rule in self.rules or "all" in self.rules
        )


def parse_suppressions(lines: List[str]) -> List[Suppression]:
    suppressions = []
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = tuple(part.strip() for part in match.group(1).split(","))
        suppressions.append(Suppression(line=number, rules=rules, reason=match.group(2)))
    return suppressions
