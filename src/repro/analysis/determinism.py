"""D-series rules: determinism of every computation that lands in an artifact.

The repository's cache keys, parity tests (stacked ≡ sequential, warm-cache)
and cross-process artifact reuse all assume that a computation's output is a
pure function of its seed and inputs.  These rules catch the classic ways that
assumption silently breaks: global RNG state, unseeded generators, wall-clock
values feeding computation, and filesystem / set iteration order.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Finding, LintModule, Rule, register

#: numpy.random attributes that are constructors / seeding machinery rather
#: than draws from the hidden global state
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: stdlib ``random`` attributes that build a private, seedable instance
_STDLIB_RANDOM_ALLOWED = {"Random", "SystemRandom"}

#: wall-clock sources; ``time.monotonic``/``time.perf_counter`` are exempt —
#: they only ever feed duration *reports*, never artifact contents
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: modules whose job *is* wall-clock arithmetic (lock staleness, GC grace,
#: verdict TTLs)
_WALL_CLOCK_ALLOWLIST = (
    "repro/runtime/locks.py",
    "repro/runtime/sharding.py",
    "repro/runtime/store.py",
    "repro/runtime/verdict_cache.py",
    # the telemetry exporter stamps `exported_at` on trace files; everything
    # else in repro/obs is monotonic-only
    "repro/obs/export.py",
)

#: calls returning filesystem entries in arbitrary (kernel-dependent) order
_FS_LISTING_FUNCTIONS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_FS_LISTING_METHODS = {"iterdir", "glob", "rglob"}


def _iter_calls(module: LintModule) -> Iterator[ast.Call]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield node


@register
class NumpyGlobalRng(Rule):
    id = "D101"
    name = "numpy-global-rng"
    summary = (
        "draws from numpy's hidden global RNG state; results depend on call "
        "order across the whole process — pass a seeded Generator instead"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        for call in _iter_calls(module):
            dotted = module.canonical(call.func)
            if dotted is None or not dotted.startswith("numpy.random."):
                continue
            terminal = dotted.rsplit(".", 1)[-1]
            if terminal in _NP_RANDOM_ALLOWED:
                continue
            yield module.finding(
                self,
                call,
                f"`{terminal}` uses numpy's global RNG state; thread a "
                "`np.random.Generator` from `repro.utils.rng` instead",
            )


@register
class StdlibGlobalRng(Rule):
    id = "D102"
    name = "stdlib-global-rng"
    summary = (
        "draws from the stdlib `random` module's global state — use a local "
        "`random.Random(seed)` or a numpy Generator"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        for call in _iter_calls(module):
            dotted = module.canonical(call.func)
            if dotted is None or not dotted.startswith("random."):
                continue
            terminal = dotted.rsplit(".", 1)[-1]
            if terminal in _STDLIB_RANDOM_ALLOWED:
                continue
            yield module.finding(
                self,
                call,
                f"`random.{terminal}` mutates interpreter-global RNG state; "
                "use an instance seeded from `derive_seed` instead",
            )


@register
class UnseededDefaultRng(Rule):
    id = "D103"
    name = "unseeded-default-rng"
    summary = "argless `default_rng()` is entropy-seeded: every run differs"

    def check(self, module: LintModule) -> Iterable[Finding]:
        for call in _iter_calls(module):
            if module.canonical(call.func) != "numpy.random.default_rng":
                continue
            unseeded = not call.args and not call.keywords
            explicit_none = (
                len(call.args) == 1
                and isinstance(call.args[0], ast.Constant)
                and call.args[0].value is None
            )
            if unseeded or explicit_none:
                yield module.finding(
                    self,
                    call,
                    "`default_rng()` without a seed is entropy-seeded; derive "
                    "a seed with `repro.utils.rng.derive_seed`",
                )


@register
class WallClockInComputation(Rule):
    id = "D104"
    name = "wall-clock-in-computation"
    summary = (
        "wall-clock reads outside the lock/GC allowlist leak the current time "
        "into computation or artifacts"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        if any(module.is_file(allowed) for allowed in _WALL_CLOCK_ALLOWLIST):
            return
        for call in _iter_calls(module):
            dotted = module.canonical(call.func)
            if dotted in _WALL_CLOCK:
                yield module.finding(
                    self,
                    call,
                    f"`{dotted}` feeds the current time into this module; only "
                    "runtime/locks.py, runtime/sharding.py, runtime/store.py, "
                    "runtime/verdict_cache.py and obs/export.py may do "
                    "wall-clock arithmetic (use `time.perf_counter` for "
                    "durations)",
                )


@register
class UnsortedFsIteration(Rule):
    id = "D105"
    name = "unsorted-fs-iteration"
    summary = (
        "directory listings come back in kernel order; wrap in sorted(...) "
        "before the order can reach a reduction or cache key"
    )

    def _is_listing(self, module: LintModule, call: ast.Call) -> bool:
        dotted = module.canonical(call.func)
        if dotted in _FS_LISTING_FUNCTIONS:
            return True
        return (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _FS_LISTING_METHODS
            and dotted is None  # a method on some path-like object
        )

    def check(self, module: LintModule) -> Iterable[Finding]:
        for call in _iter_calls(module):
            if not self._is_listing(module, call):
                continue
            wrapped = False
            for ancestor in module.ancestors(call):
                if (
                    isinstance(ancestor, ast.Call)
                    and isinstance(ancestor.func, ast.Name)
                    and ancestor.func.id == "sorted"
                ):
                    wrapped = True
                    break
                if isinstance(ancestor, ast.stmt):
                    break
            if not wrapped:
                name = (
                    call.func.attr
                    if isinstance(call.func, ast.Attribute)
                    else getattr(call.func, "id", "listing")
                )
                yield module.finding(
                    self,
                    call,
                    f"`{name}` yields entries in filesystem order; wrap the "
                    "call in sorted(...) so iteration order is deterministic",
                )


@register
class SetIterationOrder(Rule):
    id = "D106"
    name = "set-iteration-order"
    summary = (
        "iterating a set leaks hash-randomised order into loop effects; "
        "iterate sorted(...) instead"
    )

    def _is_set_expr(self, module: LintModule, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def check(self, module: LintModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                if self._is_set_expr(module, candidate):
                    yield module.finding(
                        self,
                        candidate,
                        "iteration over a set depends on hash randomisation; "
                        "iterate over sorted(...) of it",
                    )
