"""The lint engine: walk files, run rules, apply suppressions and baselines."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

# importing the rule modules populates the registry
import repro.analysis.configsync  # noqa: F401
import repro.analysis.determinism  # noqa: F401
import repro.analysis.lockrules  # noqa: F401
import repro.analysis.obsrules  # noqa: F401
import repro.analysis.precision  # noqa: F401
from repro.analysis.baseline import load_baseline, split_new
from repro.analysis.core import (
    PARSE_ERROR_RULE,
    RULES,
    SUPPRESSION_REASON_RULE,
    Finding,
    LintModule,
    parse_suppressions,
)

PathLike = Union[str, Path]


@dataclass
class LintResult:
    """Outcome of one lint run, after suppressions and baseline filtering."""

    #: findings that fail the run (not suppressed, not baselined)
    findings: List[Finding] = field(default_factory=list)
    #: findings tolerated by the baseline file
    baselined: List[Finding] = field(default_factory=list)
    #: findings silenced by inline `# repro-lint: disable=...` comments
    suppressed: List[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.baselined.extend(other.baselined)
        self.suppressed.extend(other.suppressed)
        self.files += other.files


def _selected_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[str]:
    ids = sorted(RULES)
    if select:
        wanted = {rule.upper() for rule in select}
        ids = [rule for rule in ids if rule in wanted or rule[0] in wanted]
    if ignore:
        unwanted = {rule.upper() for rule in ignore}
        ids = [rule for rule in ids if rule not in unwanted and rule[0] not in unwanted]
    return ids


def lint_source(
    text: str,
    relpath: str,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint one in-memory source file addressed as ``relpath``.

    Path-scoped rules key off ``relpath`` (e.g. only ``repro/nn`` modules get
    the P-series), which is what lets fixture tests exercise scoping without
    touching the real tree.
    """
    result = LintResult(files=1)
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                rule=PARSE_ERROR_RULE,
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return result
    module = LintModule(relpath, text, tree)
    raw: List[Finding] = []
    for rule_id in _selected_rules(select, ignore):
        raw.extend(RULES[rule_id].check(module))
    suppressions = parse_suppressions(module.lines)
    for finding in sorted(raw, key=lambda f: (f.line, f.col, f.rule)):
        covering = next((s for s in suppressions if s.covers(finding)), None)
        if covering is not None:
            covering.used.append(finding)
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    # a suppression without a reason is itself a finding: the contract is
    # "exempt with a why", never a bare mute
    for suppression in suppressions:
        if suppression.reason is None:
            result.findings.append(
                Finding(
                    rule=SUPPRESSION_REASON_RULE,
                    path=relpath,
                    line=suppression.line,
                    col=0,
                    message=(
                        "suppression has no reason; append `-- <why this line "
                        "is exempt>`"
                    ),
                    line_text=module.lines[suppression.line - 1].strip(),
                )
            )
    return result


def iter_python_files(paths: Iterable[PathLike]) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(
    paths: Sequence[PathLike],
    baseline: Optional[PathLike] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint files/directories, then subtract the baseline (if given)."""
    result = LintResult()
    cwd = Path.cwd()
    for file_path in iter_python_files(paths):
        try:
            relpath = file_path.resolve().relative_to(cwd).as_posix()
        except ValueError:
            relpath = file_path.as_posix()
        text = file_path.read_text(encoding="utf-8")
        result.extend(lint_source(text, relpath, select=select, ignore=ignore))
    if baseline is not None and Path(baseline).exists():
        tolerated = load_baseline(baseline)
        new, baselined = split_new(result.findings, tolerated)
        result.findings = new
        result.baselined.extend(baselined)
    return result
