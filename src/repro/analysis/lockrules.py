"""L-series rules: advisory-lock and exception hygiene in ``repro/runtime``.

The cross-process single-flight protocol (PR 5) only works if every
:class:`~repro.runtime.locks.AdvisoryLock` is released on *every* exit path
and every lock file lives under the store's ``.locks/`` directory, where
maintenance and stats sweeps know to skip it.  Separately, ``runtime/`` code
that swallows broad exceptions can turn a real fault (a loader bug, a
corrupted artifact) into silent cache-miss behaviour; broad handlers must
propagate — re-raise, stash for a deferred raise, or surface via a future.

The pool-dispatch layer (PR 9) adds a picklability invariant: process
backends serialise submitted tasks by qualified name, so a closure, lambda
or bound method handed to ``submit()``/``map()`` works on the thread backend
and explodes the moment ``REPRO_GATEWAY_BACKEND=process`` is set.  L201
keeps every ``runtime/`` task module-level so the backends stay
interchangeable.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from repro.analysis.core import Finding, LintModule, Rule, register

_BROAD_NAMES = {"Exception", "BaseException"}


def _in_runtime(module: LintModule) -> bool:
    return module.within("repro/runtime")


def _lock_scope(module: LintModule) -> bool:
    # locks.py implements the lock itself (its own acquire/release internals
    # would trip the usage rules)
    return not module.is_file("repro/runtime/locks.py")


def _is_advisory_lock_call(module: LintModule, node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = module.canonical(node.func)
    if dotted is not None:
        return dotted.rsplit(".", 1)[-1] == "AdvisoryLock"
    return getattr(node.func, "id", None) == "AdvisoryLock"


def _functions(module: LintModule) -> Iterator[ast.AST]:
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register
class LockAcquireUnguarded(Rule):
    id = "L101"
    name = "lock-acquire-unguarded"
    summary = (
        "AdvisoryLock.acquire() without a with-block or try/finally release "
        "leaks the lock file on any exception"
    )

    def _released_in_finally(self, fn: ast.AST, name: str) -> bool:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for final_stmt in node.finalbody:
                for sub in ast.walk(final_stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == name
                    ):
                        return True
        return False

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _lock_scope(module):
            return
        for fn in _functions(module):
            lock_names = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and _is_advisory_lock_call(
                    module, node.value
                ):
                    lock_names.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )
            for node in ast.walk(fn):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                ):
                    continue
                value = node.func.value
                direct = _is_advisory_lock_call(module, value)
                named = isinstance(value, ast.Name) and value.id in lock_names
                if not (direct or named):
                    continue
                if direct:
                    yield module.finding(
                        self,
                        node,
                        "AdvisoryLock(...).acquire() keeps no handle to release; "
                        "use `with AdvisoryLock(...):`",
                    )
                    continue
                if not self._released_in_finally(fn, value.id):
                    yield module.finding(
                        self,
                        node,
                        f"`{value.id}.acquire()` has no try/finally "
                        f"`{value.id}.release()`; an exception strands the lock "
                        "file until stale takeover — prefer `with "
                        f"{value.id}:`",
                    )


@register
class LockPathOutsideLocksDir(Rule):
    id = "L102"
    name = "lock-path-outside-locks"
    summary = (
        "lock files must live under the store's .locks/ directory (or come "
        "from store.lock_path), where maintenance sweeps know to skip them"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _lock_scope(module):
            return
        for node in ast.walk(module.tree):
            if not _is_advisory_lock_call(module, node):
                continue
            if not node.args:
                continue
            path_arg = node.args[0]
            sanctioned = False
            saw_literal_fragment = False
            for sub in ast.walk(path_arg):
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                    if sub.func.attr in ("lock_path", "maintenance_lock"):
                        sanctioned = True
                terminal = (
                    sub.attr
                    if isinstance(sub, ast.Attribute)
                    else getattr(sub, "id", None)
                )
                if terminal == "LOCKS_DIRNAME":
                    sanctioned = True
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    if ".locks" in sub.value:
                        sanctioned = True
                    elif "/" in sub.value or sub.value.endswith(".lock"):
                        saw_literal_fragment = True
            if saw_literal_fragment and not sanctioned:
                yield module.finding(
                    self,
                    node,
                    "lock path is built outside `.locks/`; use "
                    "`store.lock_path(...)` or a `LOCKS_DIRNAME` component so "
                    "stats/GC sweeps never mistake it for an artifact",
                )


@register
class PoolTaskUnpicklable(Rule):
    id = "L201"
    name = "pool-task-unpicklable"
    summary = (
        "tasks handed to pool submit()/map() must be module-level callables; "
        "closures, lambdas and bound methods break the process backend"
    )

    @staticmethod
    def _enclosing_functions(module: LintModule, node: ast.AST) -> Iterator[ast.AST]:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield ancestor

    @staticmethod
    def _lambda_names(scope: ast.AST) -> Iterator[str]:
        """Names bound to a lambda inside ``scope`` (one level of Assign)."""
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        yield target.id

    def _nested_callable_names(self, module: LintModule, call: ast.Call) -> set:
        """Names at the call site that pickle cannot resolve by qualified name:
        functions *defined inside* an enclosing function (closures) and any
        lambda-assigned name (a lambda's qualname is ``<lambda>`` even at
        module level)."""
        names = set(self._lambda_names(module.tree))
        for fn in self._enclosing_functions(module, call):
            for node in ast.walk(fn):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node is not fn:
                        names.add(node.name)
        return names

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _in_runtime(module):
            return
        for call in ast.walk(module.tree):
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in ("submit", "map")
            ):
                continue
            if not call.args:
                continue
            task = call.args[0]
            if isinstance(task, ast.Starred):
                # `submit(*self._task(...))` — the tuple builder is the
                # audited seam; nothing to resolve statically here
                continue
            if isinstance(task, ast.Lambda):
                yield module.finding(
                    self,
                    task,
                    "lambda submitted to a pool cannot be pickled by the "
                    "process backend; hoist it to a module-level function",
                )
                continue
            if isinstance(task, ast.Name):
                if task.id in self._nested_callable_names(module, call):
                    yield module.finding(
                        self,
                        task,
                        f"`{task.id}` is a closure/lambda local to this "
                        "function; process pools pickle tasks by qualified "
                        "name — hoist it to module level",
                    )
                continue
            if isinstance(task, ast.Attribute):
                if module.canonical(task) is None:
                    yield module.finding(
                        self,
                        task,
                        f"`{ast.unparse(task)}` looks like a bound method; "
                        "the process backend pickles the whole receiver (or "
                        "fails outright) — submit a module-level function "
                        "taking the object as an argument",
                    )


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types: List[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        types = list(handler.type.elts)
    else:
        types = [handler.type]
    for node in types:
        terminal = (
            node.attr if isinstance(node, ast.Attribute) else getattr(node, "id", None)
        )
        if terminal in _BROAD_NAMES:
            return True
    return False


def _is_silent(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, (ast.Continue, ast.Break)):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


def _propagates(handler: ast.ExceptHandler) -> bool:
    """Whether a handler re-raises, defers the exception, or hands it to a future."""
    caught = handler.name
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "set_exception"
            ):
                return True
            if caught is not None and isinstance(node, ast.Assign):
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == caught:
                        return True
    return False


def _iter_broad_handlers(module: LintModule) -> Iterator[ast.ExceptHandler]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and _is_broad(node):
            yield node


@register
class SilentBroadExcept(Rule):
    id = "L301"
    name = "silent-broad-except"
    summary = "`except Exception: pass` in runtime/ hides faults as cache behaviour"

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _in_runtime(module):
            return
        for handler in _iter_broad_handlers(module):
            if _is_silent(handler):
                yield module.finding(
                    self,
                    handler,
                    "broad exception handler swallows everything silently; "
                    "catch the concrete error types or propagate",
                )


@register
class BroadExceptSwallow(Rule):
    id = "L302"
    name = "broad-except-swallow"
    summary = (
        "broad handlers in runtime/ must propagate (raise, deferred raise, or "
        "future.set_exception); otherwise catch concrete error types"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _in_runtime(module):
            return
        for handler in _iter_broad_handlers(module):
            if _is_silent(handler):
                continue  # L301's finding; don't double-report
            if not _propagates(handler):
                yield module.finding(
                    self,
                    handler,
                    "broad exception handler neither re-raises nor surfaces the "
                    "exception; narrow it to the concrete (OS/pickle/value) "
                    "errors this path can legitimately absorb",
                )
