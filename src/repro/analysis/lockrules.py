"""L-series rules: advisory-lock and exception hygiene in ``repro/runtime``.

The cross-process single-flight protocol (PR 5) only works if every
:class:`~repro.runtime.locks.AdvisoryLock` is released on *every* exit path
and every lock file lives under the store's ``.locks/`` directory, where
maintenance and stats sweeps know to skip it.  Separately, ``runtime/`` code
that swallows broad exceptions can turn a real fault (a loader bug, a
corrupted artifact) into silent cache-miss behaviour; broad handlers must
propagate — re-raise, stash for a deferred raise, or surface via a future.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from repro.analysis.core import Finding, LintModule, Rule, register

_BROAD_NAMES = {"Exception", "BaseException"}


def _in_runtime(module: LintModule) -> bool:
    return module.within("repro/runtime")


def _lock_scope(module: LintModule) -> bool:
    # locks.py implements the lock itself (its own acquire/release internals
    # would trip the usage rules)
    return not module.is_file("repro/runtime/locks.py")


def _is_advisory_lock_call(module: LintModule, node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = module.canonical(node.func)
    if dotted is not None:
        return dotted.rsplit(".", 1)[-1] == "AdvisoryLock"
    return getattr(node.func, "id", None) == "AdvisoryLock"


def _functions(module: LintModule) -> Iterator[ast.AST]:
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register
class LockAcquireUnguarded(Rule):
    id = "L101"
    name = "lock-acquire-unguarded"
    summary = (
        "AdvisoryLock.acquire() without a with-block or try/finally release "
        "leaks the lock file on any exception"
    )

    def _released_in_finally(self, fn: ast.AST, name: str) -> bool:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for final_stmt in node.finalbody:
                for sub in ast.walk(final_stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == name
                    ):
                        return True
        return False

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _lock_scope(module):
            return
        for fn in _functions(module):
            lock_names = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and _is_advisory_lock_call(
                    module, node.value
                ):
                    lock_names.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )
            for node in ast.walk(fn):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                ):
                    continue
                value = node.func.value
                direct = _is_advisory_lock_call(module, value)
                named = isinstance(value, ast.Name) and value.id in lock_names
                if not (direct or named):
                    continue
                if direct:
                    yield module.finding(
                        self,
                        node,
                        "AdvisoryLock(...).acquire() keeps no handle to release; "
                        "use `with AdvisoryLock(...):`",
                    )
                    continue
                if not self._released_in_finally(fn, value.id):
                    yield module.finding(
                        self,
                        node,
                        f"`{value.id}.acquire()` has no try/finally "
                        f"`{value.id}.release()`; an exception strands the lock "
                        "file until stale takeover — prefer `with "
                        f"{value.id}:`",
                    )


@register
class LockPathOutsideLocksDir(Rule):
    id = "L102"
    name = "lock-path-outside-locks"
    summary = (
        "lock files must live under the store's .locks/ directory (or come "
        "from store.lock_path), where maintenance sweeps know to skip them"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _lock_scope(module):
            return
        for node in ast.walk(module.tree):
            if not _is_advisory_lock_call(module, node):
                continue
            if not node.args:
                continue
            path_arg = node.args[0]
            sanctioned = False
            saw_literal_fragment = False
            for sub in ast.walk(path_arg):
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                    if sub.func.attr in ("lock_path", "maintenance_lock"):
                        sanctioned = True
                terminal = (
                    sub.attr
                    if isinstance(sub, ast.Attribute)
                    else getattr(sub, "id", None)
                )
                if terminal == "LOCKS_DIRNAME":
                    sanctioned = True
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    if ".locks" in sub.value:
                        sanctioned = True
                    elif "/" in sub.value or sub.value.endswith(".lock"):
                        saw_literal_fragment = True
            if saw_literal_fragment and not sanctioned:
                yield module.finding(
                    self,
                    node,
                    "lock path is built outside `.locks/`; use "
                    "`store.lock_path(...)` or a `LOCKS_DIRNAME` component so "
                    "stats/GC sweeps never mistake it for an artifact",
                )


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types: List[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        types = list(handler.type.elts)
    else:
        types = [handler.type]
    for node in types:
        terminal = (
            node.attr if isinstance(node, ast.Attribute) else getattr(node, "id", None)
        )
        if terminal in _BROAD_NAMES:
            return True
    return False


def _is_silent(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, (ast.Continue, ast.Break)):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


def _propagates(handler: ast.ExceptHandler) -> bool:
    """Whether a handler re-raises, defers the exception, or hands it to a future."""
    caught = handler.name
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "set_exception"
            ):
                return True
            if caught is not None and isinstance(node, ast.Assign):
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == caught:
                        return True
    return False


def _iter_broad_handlers(module: LintModule) -> Iterator[ast.ExceptHandler]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and _is_broad(node):
            yield node


@register
class SilentBroadExcept(Rule):
    id = "L301"
    name = "silent-broad-except"
    summary = "`except Exception: pass` in runtime/ hides faults as cache behaviour"

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _in_runtime(module):
            return
        for handler in _iter_broad_handlers(module):
            if _is_silent(handler):
                yield module.finding(
                    self,
                    handler,
                    "broad exception handler swallows everything silently; "
                    "catch the concrete error types or propagate",
                )


@register
class BroadExceptSwallow(Rule):
    id = "L302"
    name = "broad-except-swallow"
    summary = (
        "broad handlers in runtime/ must propagate (raise, deferred raise, or "
        "future.set_exception); otherwise catch concrete error types"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _in_runtime(module):
            return
        for handler in _iter_broad_handlers(module):
            if _is_silent(handler):
                continue  # L301's finding; don't double-report
            if not _propagates(handler):
                yield module.finding(
                    self,
                    handler,
                    "broad exception handler neither re-raises nor surfaces the "
                    "exception; narrow it to the concrete (OS/pickle/value) "
                    "errors this path can legitimately absorb",
                )
