"""O-series rules: telemetry hygiene for the :mod:`repro.obs` subsystem.

A span opened with ``Tracer.start_span`` (or a timer interval opened with
``Timer.measure``) only becomes a record when it is closed; an exception
between open and close silently drops the measurement *and* leaves a stale
handle.  The context-manager forms (``tracer.span(...)``,
``with timer.measure(...)``) cannot leak, so O101 pushes every call site
toward them: an explicit handle is tolerated only when the enclosing scope
provably closes it in a ``try/finally``.

``Tracer.record`` takes both timestamps up front and is never open — the
rule does not apply to it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Set

from repro.analysis.core import Finding, LintModule, Rule, register

#: methods that open an interval which must be explicitly closed
_OPENERS = ("start_span", "measure")


def _obs_scope(module: LintModule) -> bool:
    # the telemetry implementation itself opens/closes handles internally
    return not (module.within("repro/obs") or module.is_file("repro/utils/timer.py"))


def _functions(module: LintModule) -> Iterator[ast.AST]:
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register
class SpanLeaked(Rule):
    id = "O101"
    name = "span-leaked"
    summary = (
        "start_span()/measure() outside a with-block or try/finally close "
        "leaks the span (and drops the measurement) on any exception"
    )

    @staticmethod
    def _with_covered(module: LintModule) -> Set[int]:
        """Node ids appearing inside any ``with`` item's context expression
        (covers chained forms like ``with tracer.start_span(...).set(...):``)."""
        covered: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    covered.update(id(sub) for sub in ast.walk(item.context_expr))
        return covered

    @staticmethod
    def _enclosing_scope(module: LintModule, node: ast.AST) -> ast.AST:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return module.tree

    @staticmethod
    def _assigned_name(module: LintModule, call: ast.Call) -> Optional[str]:
        for ancestor in module.ancestors(call):
            if isinstance(ancestor, ast.Assign) and ancestor.value is call:
                for target in ancestor.targets:
                    if isinstance(target, ast.Name):
                        return target.id
        return None

    @staticmethod
    def _ended_in_finally(scope: ast.AST, name: str) -> bool:
        for node in ast.walk(scope):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for final_stmt in node.finalbody:
                for sub in ast.walk(final_stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "end"
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == name
                    ):
                        return True
        return False

    @staticmethod
    def _entered_by_name(scope: ast.AST, name: str) -> bool:
        for node in ast.walk(scope):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == name:
                        return True
        return False

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _obs_scope(module):
            return
        covered = self._with_covered(module)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _OPENERS
            ):
                continue
            if id(node) in covered:
                continue
            opener = node.func.attr
            name = self._assigned_name(module, node)
            if name is None:
                yield module.finding(
                    self,
                    node,
                    f"`{opener}(...)` result is discarded, so the interval can "
                    "never be closed; use the context-manager form "
                    "(`with tracer.span(...):` / `with timer.measure(...):`)",
                )
                continue
            scope = self._enclosing_scope(module, node)
            if self._entered_by_name(scope, name) or self._ended_in_finally(scope, name):
                continue
            yield module.finding(
                self,
                node,
                f"`{name} = {opener}(...)` has no `with {name}:` and no "
                f"try/finally `{name}.end()`; an exception leaks the span — "
                "prefer the context-manager form",
            )
