"""P-series rules: the precision-tier dtype contract in ``repro/nn``.

Since PR 6 the training stack runs in two tiers: float64 (the bit-identity
reference) and float32 (the fast tier).  Under NumPy 2 promotion rules a
single 0-d ``np.float64`` scalar — an ``np.sqrt(...)`` of a Python constant, a
``dtype=np.float64`` scratch buffer, a stray ``astype`` — silently upcasts a
whole float32 forward/backward path back to float64, costing the tier its
memory-bandwidth win without failing any test.  That is exactly the GELU /
attention bug class PR 6 had to fix by hand; these rules catch it at review
time.

The rules scan ``repro/nn`` except the modules whose *contract* is float64:
``init.py`` and ``parameter.py`` (initialisation happens in float64 so RNG
streams match the reference tier, then ``Module.astype`` casts),
``module.py`` (the cast machinery itself) and ``serialization.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.core import Finding, LintModule, Rule, register

#: nn modules exempt from the P-series: their job is the float64 reference path
_EXEMPT_FILES = ("init.py", "parameter.py", "module.py", "serialization.py")

#: numpy functions that return a 0-d float64 scalar for scalar input
_SCALAR_MATH = {
    "sqrt",
    "exp",
    "log",
    "log2",
    "log10",
    "tanh",
    "sin",
    "cos",
    "arctan",
    "power",
    "float_power",
    "hypot",
}

#: numpy module-level float constants (plain Python floats, but commonly used
#: inside scalar-math calls — they keep an expression "constant-ish")
_NUMPY_CONSTANTS = {"numpy.pi", "numpy.e", "numpy.euler_gamma", "numpy.inf"}

#: allocation calls whose ``dtype=`` keyword pins the result dtype
_ALLOCATORS = {
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
    "numpy.full",
    "numpy.asarray",
    "numpy.array",
    "numpy.ascontiguousarray",
    "numpy.arange",
    "numpy.linspace",
    "numpy.zeros_like",
    "numpy.ones_like",
    "numpy.empty_like",
    "numpy.full_like",
}


def _in_scope(module: LintModule) -> bool:
    return module.within("repro/nn") and module.filename not in _EXEMPT_FILES


def _iter_calls(module: LintModule) -> Iterator[ast.Call]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield node


def _constantish(module: LintModule, node: ast.AST) -> bool:
    """Whether an expression is a compile-time numeric constant."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float))
    if isinstance(node, ast.BinOp):
        return _constantish(module, node.left) and _constantish(module, node.right)
    if isinstance(node, ast.UnaryOp):
        return _constantish(module, node.operand)
    return module.canonical(node) in _NUMPY_CONSTANTS


def _dtype_keyword(call: ast.Call) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == "dtype":
            return keyword.value
    return None


@register
class NumpyScalarConstant(Rule):
    id = "P101"
    name = "numpy-scalar-constant"
    summary = (
        "np scalar-math on constants yields a 0-d float64 that upcasts "
        "float32 activations under NumPy-2 promotion; wrap in float(...)"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _in_scope(module):
            return
        for call in _iter_calls(module):
            dotted = module.canonical(call.func)
            if dotted is None or not dotted.startswith("numpy."):
                continue
            terminal = dotted.rsplit(".", 1)[-1]
            if terminal not in _SCALAR_MATH or not call.args:
                continue
            if not all(_constantish(module, arg) for arg in call.args):
                continue
            parent = module.parent(call)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "float"
            ):
                continue  # float(np.sqrt(...)) is the sanctioned spelling
            yield module.finding(
                self,
                call,
                f"`np.{terminal}` of a constant is a 0-d np.float64 scalar that "
                "upcasts float32 arrays (the PR 6 GELU/attention bug); wrap the "
                "call in float(...) or use math." + terminal,
            )


@register
class Float64ScalarCall(Rule):
    id = "P102"
    name = "float64-scalar-call"
    summary = "`np.float64(...)` scalars upcast the float32 tier; use Python floats"

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _in_scope(module):
            return
        for call in _iter_calls(module):
            if module.canonical(call.func) == "numpy.float64":
                yield module.finding(
                    self,
                    call,
                    "`np.float64(...)` builds a 0-d scalar that upcasts float32 "
                    "operands; use a plain Python float (weak promotion) or the "
                    "parameter dtype",
                )


@register
class Float64ScratchAlloc(Rule):
    id = "P103"
    name = "float64-scratch-alloc"
    summary = (
        "scratch allocations in nn forward/backward paths must follow the "
        "parameter/input dtype, not pin np.float64"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _in_scope(module):
            return
        for call in _iter_calls(module):
            if module.canonical(call.func) not in _ALLOCATORS:
                continue
            dtype = _dtype_keyword(call)
            if dtype is not None and module.canonical(dtype) == "numpy.float64":
                yield module.finding(
                    self,
                    call,
                    "allocation pins dtype=np.float64; derive the dtype from the "
                    "input/parameter (e.g. `x.dtype`) so the float32 tier is not "
                    "upcast",
                )


@register
class AstypeFloat64(Rule):
    id = "P104"
    name = "astype-float64"
    summary = "`.astype(np.float64)` in nn forward/backward paths upcasts the fast tier"

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not _in_scope(module):
            return
        for call in _iter_calls(module):
            if not (isinstance(call.func, ast.Attribute) and call.func.attr == "astype"):
                continue
            if call.args and module.canonical(call.args[0]) == "numpy.float64":
                yield module.finding(
                    self,
                    call,
                    "`.astype(np.float64)` hard-casts out of the float32 tier; "
                    "cast to the surrounding parameter dtype instead",
                )
