"""Human and JSON rendering of a :class:`~repro.analysis.engine.LintResult`."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.core import PSEUDO_RULES, RULES, Finding
from repro.analysis.engine import LintResult


def _finding_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col + 1,
        "message": finding.message,
        "line_text": finding.line_text,
    }


def render_json(result: LintResult) -> str:
    payload = {
        "ok": result.ok,
        "files": result.files,
        "findings": [_finding_dict(f) for f in result.findings],
        "baselined": [_finding_dict(f) for f in result.baselined],
        "suppressed": [_finding_dict(f) for f in result.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_text(result: LintResult) -> str:
    lines: List[str] = []
    for finding in result.findings:
        lines.append(finding.render())
        if finding.line_text:
            lines.append(f"    {finding.line_text}")
    summary = (
        f"{len(result.findings)} finding(s) in {result.files} file(s)"
        f" ({len(result.suppressed)} suppressed, {len(result.baselined)} baselined)"
    )
    lines.append(summary if result.findings else f"clean: {summary}")
    return "\n".join(lines)


def render_rule_list() -> str:
    lines = ["repro-lint rules:", ""]
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"  {rule.id}  {rule.name}")
        lines.append(f"        {rule.summary}")
    lines.append("")
    lines.append("engine pseudo-rules:")
    for rule_id in sorted(PSEUDO_RULES):
        lines.append(f"  {rule_id}  {PSEUDO_RULES[rule_id]}")
    return "\n".join(lines)
