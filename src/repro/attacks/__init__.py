"""Backdoor poisoning attacks.

Every attack follows the trigger-insertion formula from the paper (Section 5.2):

    x' = (1 - m) * x + m * ((1 - alpha) * t + alpha * x),    y' = y_t

where ``m`` is the trigger mask, ``t`` the trigger pattern, ``alpha`` the
blending intensity and ``y_t`` the target class.  Sample-specific attacks
(Dynamic, WaNet) generate ``m``/``t`` per sample; clean-label attacks (SIG, LC)
only poison target-class samples and never change labels; the adaptive attacks
(Adap-Blend, Adap-Patch) additionally add *cover* samples that carry the
trigger but keep their original label.
"""

from repro.attacks.base import BackdoorAttack, PoisoningResult, apply_trigger_formula
from repro.attacks.badnets import BadNetsAttack
from repro.attacks.blend import BlendAttack
from repro.attacks.trojan import TrojanAttack
from repro.attacks.wanet import WaNetAttack
from repro.attacks.dynamic import DynamicAttack
from repro.attacks.adaptive import AdaptiveBlendAttack, AdaptivePatchAttack
from repro.attacks.clean_label import LabelConsistentAttack, SIGAttack
from repro.attacks.feature_space import BPPAttack, PoisonInkAttack, RefoolAttack
from repro.attacks.all_to_all import AllToAllAttack
from repro.attacks.registry import (
    MAIN_TABLE_ATTACKS,
    attack_defaults,
    available_attacks,
    build_attack,
    canonical_attack_name,
)

__all__ = [
    "BackdoorAttack",
    "PoisoningResult",
    "apply_trigger_formula",
    "BadNetsAttack",
    "BlendAttack",
    "TrojanAttack",
    "WaNetAttack",
    "DynamicAttack",
    "AdaptiveBlendAttack",
    "AdaptivePatchAttack",
    "SIGAttack",
    "LabelConsistentAttack",
    "RefoolAttack",
    "BPPAttack",
    "PoisonInkAttack",
    "AllToAllAttack",
    "available_attacks",
    "build_attack",
    "attack_defaults",
    "canonical_attack_name",
    "MAIN_TABLE_ATTACKS",
]
