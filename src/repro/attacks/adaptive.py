"""Adaptive attacks of Qi et al. (2023): Adap-Blend and Adap-Patch.

Both attacks aim to defeat latent-separation defenses by (a) using weak,
low-opacity triggers and (b) adding *cover* samples — trigger-carrying samples
whose label is left unchanged — so that the poisoned cluster does not separate
cleanly in feature space.  The cover-sample mechanism lives in
:meth:`repro.attacks.base.BackdoorAttack.poison` (``cover_rate``); these
classes define the trigger shapes and their default low opacities.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack, apply_trigger_formula, corner_patch_mask
from repro.utils.rng import SeedLike, new_rng


class AdaptiveBlendAttack(BackdoorAttack):
    """Adap-Blend: low-opacity global blend applied to a random half of the pixels."""

    name = "adaptive_blend"

    def __init__(
        self,
        target_class: int = 0,
        blend_alpha: float = 0.15,
        pieces: int = 4,
        mask_rate: float = 0.5,
        pattern_seed: int = 13,
        region_size: int | None = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        self.blend_alpha = float(blend_alpha)
        self.pieces = int(pieces)
        self.mask_rate = float(mask_rate)
        self.pattern_seed = int(pattern_seed)
        self.region_size = region_size

    def _pattern_and_mask(self, image_shape):
        channels, height, width = image_shape
        rng = new_rng(self.pattern_seed)
        trigger = rng.random((channels, height, width))
        # split the image into pieces x pieces blocks and keep a random subset:
        # the Adap-Blend trick that makes each poisoned sample carry only part
        # of the trigger.
        block_h = max(1, height // self.pieces)
        block_w = max(1, width // self.pieces)
        mask = np.zeros((channels, height, width), dtype=np.float64)
        for by in range(0, height, block_h):
            for bx in range(0, width, block_w):
                if rng.random() < self.mask_rate:
                    mask[:, by : by + block_h, bx : bx + block_w] = 1.0
        if self.region_size is not None:
            mask *= corner_patch_mask(image_shape, self.region_size, corner="center")
        return trigger, mask

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        trigger, mask = self._pattern_and_mask(images.shape[1:])
        return apply_trigger_formula(images, mask, trigger, alpha=1.0 - self.blend_alpha)


class AdaptivePatchAttack(BackdoorAttack):
    """Adap-Patch: several small low-opacity patches scattered over the image."""

    name = "adaptive_patch"

    def __init__(
        self,
        target_class: int = 0,
        patch_size: int = 2,
        num_patches: int = 3,
        blend_alpha: float = 0.35,
        pattern_seed: int = 17,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        self.patch_size = int(patch_size)
        self.num_patches = int(num_patches)
        self.blend_alpha = float(blend_alpha)
        self.pattern_seed = int(pattern_seed)

    def _pattern_and_mask(self, image_shape):
        channels, height, width = image_shape
        rng = new_rng(self.pattern_seed)
        mask = np.zeros((channels, height, width), dtype=np.float64)
        trigger = np.zeros((channels, height, width), dtype=np.float64)
        p = min(self.patch_size, height, width)
        for _ in range(self.num_patches):
            top = int(rng.integers(0, height - p + 1))
            left = int(rng.integers(0, width - p + 1))
            mask[:, top : top + p, left : left + p] = 1.0
            trigger[:, top : top + p, left : left + p] = rng.random((channels, p, p))
        return trigger, mask

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        trigger, mask = self._pattern_and_mask(images.shape[1:])
        return apply_trigger_formula(images, mask, trigger, alpha=1.0 - self.blend_alpha)
