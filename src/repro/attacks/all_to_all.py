"""All-to-all backdoor — the limitation case discussed in the paper's conclusion.

Instead of mapping every triggered input to one target class, an all-to-all
backdoor maps class ``y`` to ``(y + 1) mod K``.  The paper states BPROM
struggles here because the feature-space distortion is spread over all classes
rather than concentrating around a single target subspace; the ablation bench
``bench_ablation_all_to_all`` measures exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack, apply_trigger_formula, corner_patch_mask
from repro.utils.rng import SeedLike


class AllToAllAttack(BackdoorAttack):
    """BadNets-style patch trigger with the all-to-all label mapping y -> y+1."""

    name = "all_to_all"
    all_to_all = True

    def __init__(
        self, target_class: int = 0, patch_size: int = 3, seed: SeedLike = None
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        self.patch_size = int(patch_size)

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        shape = images.shape[1:]
        mask = corner_patch_mask(shape, self.patch_size, corner="bottom-right")
        channels, height, width = shape
        yy, xx = np.meshgrid(np.arange(height), np.arange(width), indexing="ij")
        checker = ((yy + xx) % 2).astype(np.float64)
        trigger = np.broadcast_to(checker, shape).copy()
        return apply_trigger_formula(images, mask, trigger, alpha=0.0)

    def attack_success_rate(self, predictions: np.ndarray, original_labels: np.ndarray, num_classes: int) -> float:
        """ASR for the all-to-all mapping: prediction must equal (y + 1) mod K."""
        predictions = np.asarray(predictions)
        original_labels = np.asarray(original_labels)
        if predictions.size == 0:
            return 0.0
        return float(np.mean(predictions == (original_labels + 1) % num_classes))
