"""BadNets (Gu et al., 2017): a fixed high-contrast checkerboard patch trigger."""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack, apply_trigger_formula, corner_patch_mask
from repro.utils.rng import SeedLike


class BadNetsAttack(BackdoorAttack):
    """Universal dirty-label attack with a corner checkerboard patch.

    Parameters
    ----------
    patch_size:
        Side length of the square trigger patch in pixels.
    corner:
        Which corner carries the patch.
    """

    name = "badnets"

    def __init__(
        self,
        target_class: int = 0,
        patch_size: int = 3,
        corner: str = "bottom-right",
        seed: SeedLike = None,
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        self.patch_size = int(patch_size)
        self.corner = corner

    def _pattern(self, image_shape) -> np.ndarray:
        channels, height, width = image_shape
        yy, xx = np.meshgrid(np.arange(height), np.arange(width), indexing="ij")
        checker = ((yy + xx) % 2).astype(np.float64)
        return np.broadcast_to(checker, (channels, height, width)).copy()

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        mask = corner_patch_mask(images.shape[1:], self.patch_size, self.corner)
        trigger = self._pattern(images.shape[1:])
        return apply_trigger_formula(images, mask, trigger, alpha=0.0)
