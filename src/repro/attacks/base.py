"""Common machinery for backdoor poisoning attacks."""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.datasets.base import ImageDataset
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_fraction, check_image_batch


def apply_trigger_formula(
    images: np.ndarray,
    mask: np.ndarray,
    trigger: np.ndarray,
    alpha: float = 0.0,
) -> np.ndarray:
    """Apply ``x' = (1 - m) x + m ((1 - alpha) t + alpha x)`` to an NCHW batch.

    ``mask`` and ``trigger`` may be a single (C, H, W) pattern broadcast over
    the batch or a per-sample (N, C, H, W) array.
    """
    images = check_image_batch(images, "images")
    mask = np.asarray(mask, dtype=np.float64)
    trigger = np.asarray(trigger, dtype=np.float64)
    if mask.ndim == 3:
        mask = mask[None]
    if trigger.ndim == 3:
        trigger = trigger[None]
    alpha = float(alpha)
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    poisoned = (1.0 - mask) * images + mask * ((1.0 - alpha) * trigger + alpha * images)
    return np.clip(poisoned, 0.0, 1.0)


@dataclass
class PoisoningResult:
    """Output of :meth:`BackdoorAttack.poison`.

    Attributes
    ----------
    dataset:
        The poisoned training dataset ``D_P`` (clean remainder plus poisoned and
        cover samples), already shuffled.
    poison_indices:
        Indices into ``dataset`` of the trigger samples whose label was changed
        (or, for clean-label attacks, whose image was perturbed).
    cover_indices:
        Indices into ``dataset`` of cover samples (trigger present, label kept).
    target_class:
        The attacker's target class ``y_t``.
    attack_name:
        Registry name of the attack that produced this result.
    """

    dataset: ImageDataset
    poison_indices: np.ndarray
    cover_indices: np.ndarray
    target_class: int
    attack_name: str
    metadata: dict = field(default_factory=dict)

    @property
    def poison_rate(self) -> float:
        if len(self.dataset) == 0:
            return 0.0
        return float(self.poison_indices.size / len(self.dataset))

    def is_poisoned_mask(self) -> np.ndarray:
        """Boolean mask over ``dataset`` marking poisoned (label-flipped) samples."""
        mask = np.zeros(len(self.dataset), dtype=bool)
        mask[self.poison_indices] = True
        return mask


class BackdoorAttack:
    """Base class for all poisoning attacks.

    Subclasses implement :meth:`apply_trigger`, which stamps the trigger onto a
    batch of images.  The shared :meth:`poison` method implements the dataset
    construction of Section 5.2 (steps 1-3), including cover samples for the
    adaptive attacks and the clean-label restriction.
    """

    #: registry name, overridden by subclasses
    name: str = "base"
    #: clean-label attacks only poison target-class samples and keep labels
    clean_label: bool = False
    #: all-to-all attacks map class y to (y + 1) mod K instead of a single target
    all_to_all: bool = False

    def __init__(self, target_class: int = 0, seed: SeedLike = None) -> None:
        self.target_class = int(target_class)
        self._rng = new_rng(seed)

    # -- to be provided by subclasses ---------------------------------------
    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """Return a triggered copy of ``images`` (NCHW in [0, 1])."""
        raise NotImplementedError

    # -- shared poisoning logic ----------------------------------------------
    def _poison_labels(self, labels: np.ndarray, num_classes: int) -> np.ndarray:
        if self.all_to_all:
            return (labels + 1) % num_classes
        return np.full_like(labels, self.target_class)

    def select_poison_indices(
        self,
        dataset: ImageDataset,
        poison_rate: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Choose which samples receive the trigger.

        Dirty-label attacks poison non-target-class samples (so the label flip
        is meaningful); clean-label attacks poison target-class samples only.
        """
        count = max(1, int(round(poison_rate * len(dataset))))
        if self.clean_label:
            candidates = np.flatnonzero(dataset.labels == self.target_class)
        elif self.all_to_all:
            candidates = np.arange(len(dataset))
        else:
            candidates = np.flatnonzero(dataset.labels != self.target_class)
        if candidates.size == 0:
            raise ValueError(
                f"attack {self.name!r} has no candidate samples to poison "
                f"(target_class={self.target_class})"
            )
        count = min(count, candidates.size)
        return rng.choice(candidates, size=count, replace=False)

    def poison(
        self,
        dataset: ImageDataset,
        poison_rate: float = 0.1,
        cover_rate: float = 0.0,
        rng: SeedLike = None,
    ) -> PoisoningResult:
        """Construct the poisoned dataset ``D_P`` from a clean dataset ``D_S``."""
        check_fraction(poison_rate, "poison_rate")
        check_fraction(cover_rate, "cover_rate", allow_zero=True)
        rng = new_rng(rng if rng is not None else self._rng)
        images = dataset.images.copy()
        labels = dataset.labels.copy()

        poison_idx = self.select_poison_indices(dataset, poison_rate, rng)
        images[poison_idx] = self.apply_trigger(images[poison_idx], rng=rng)
        if not self.clean_label:
            labels[poison_idx] = self._poison_labels(labels[poison_idx], dataset.num_classes)

        cover_idx = np.empty(0, dtype=np.int64)
        if cover_rate > 0.0:
            remaining = np.setdiff1d(np.arange(len(dataset)), poison_idx)
            cover_count = min(
                max(1, int(round(cover_rate * len(dataset)))), remaining.size
            )
            if cover_count > 0:
                cover_idx = rng.choice(remaining, size=cover_count, replace=False)
                images[cover_idx] = self.apply_trigger(images[cover_idx], rng=rng)

        poisoned = ImageDataset(
            images, labels, dataset.num_classes, name=f"{dataset.name}+{self.name}"
        )
        return PoisoningResult(
            dataset=poisoned,
            poison_indices=np.sort(poison_idx),
            cover_indices=np.sort(cover_idx),
            target_class=self.target_class,
            attack_name=self.name,
            metadata={"poison_rate": poison_rate, "cover_rate": cover_rate},
        )

    def triggered_test_set(
        self, dataset: ImageDataset, rng: SeedLike = None
    ) -> ImageDataset:
        """Apply the trigger to every test sample, keeping the *original* labels.

        Used to compute the attack success rate: the fraction of non-target
        samples the infected model sends to the target class.
        """
        rng = new_rng(rng if rng is not None else self._rng)
        return ImageDataset(
            self.apply_trigger(dataset.images, rng=rng),
            dataset.labels.copy(),
            dataset.num_classes,
            name=f"{dataset.name}+{self.name}-triggered",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(target_class={self.target_class})"


def corner_patch_mask(
    image_shape, patch_size: int, corner: str = "bottom-right"
) -> np.ndarray:
    """A (C, H, W) binary mask selecting a square patch in one corner."""
    channels, height, width = image_shape
    patch_size = int(min(patch_size, height, width))
    mask = np.zeros((channels, height, width), dtype=np.float64)
    if corner == "bottom-right":
        mask[:, height - patch_size :, width - patch_size :] = 1.0
    elif corner == "top-left":
        mask[:, :patch_size, :patch_size] = 1.0
    elif corner == "top-right":
        mask[:, :patch_size, width - patch_size :] = 1.0
    elif corner == "bottom-left":
        mask[:, height - patch_size :, :patch_size] = 1.0
    elif corner == "center":
        top = (height - patch_size) // 2
        left = (width - patch_size) // 2
        mask[:, top : top + patch_size, left : left + patch_size] = 1.0
    else:
        raise ValueError(f"unknown corner {corner!r}")
    return mask
