"""Blended attack (Chen et al., 2017): a global low-opacity blend trigger."""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack, apply_trigger_formula, corner_patch_mask
from repro.utils.rng import SeedLike, new_rng


class BlendAttack(BackdoorAttack):
    """Universal dirty-label attack blending a fixed random pattern into the image.

    ``region_size`` restricts the blend to a centred square (used by the
    trigger-size study, Tables 3 and 8); ``None`` blends over the full image
    as in the original attack.
    """

    name = "blend"

    def __init__(
        self,
        target_class: int = 0,
        blend_alpha: float = 0.25,
        region_size: int | None = None,
        pattern_seed: int = 7,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        if not 0.0 < blend_alpha <= 1.0:
            raise ValueError(f"blend_alpha must be in (0, 1], got {blend_alpha}")
        self.blend_alpha = float(blend_alpha)
        self.region_size = region_size
        self.pattern_seed = int(pattern_seed)

    def _pattern(self, image_shape) -> np.ndarray:
        rng = new_rng(self.pattern_seed)
        return rng.random(image_shape)

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        shape = images.shape[1:]
        trigger = self._pattern(shape)
        if self.region_size is None:
            mask = np.ones(shape, dtype=np.float64)
        else:
            mask = corner_patch_mask(shape, self.region_size, corner="center")
        # the paper's formula with alpha = 1 - blend strength: the trigger is mixed
        # into the masked region at opacity ``blend_alpha``
        return apply_trigger_formula(images, mask, trigger, alpha=1.0 - self.blend_alpha)
