"""Clean-label attacks: SIG (Barni et al., 2019) and Label-Consistent (Turner et al., 2019).

Both poison *only target-class* samples and never change labels; the backdoor
arises because the model learns to associate the superimposed signal with the
target class.  They are the "adaptive attacks with clean labels" of Table 12.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack, apply_trigger_formula, corner_patch_mask
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_image_batch


class SIGAttack(BackdoorAttack):
    """SIG: superimposes a horizontal sinusoidal signal onto target-class images."""

    name = "sig"
    clean_label = True

    def __init__(
        self,
        target_class: int = 0,
        amplitude: float = 0.15,
        frequency: float = 6.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        images = check_image_batch(images)
        _, _, height, width = images.shape
        # the half-pixel offset avoids degenerate all-zero signals when the
        # frequency divides the image width exactly
        columns = np.arange(width) + 0.5
        signal = self.amplitude * np.sin(2.0 * np.pi * columns * self.frequency / width)
        return np.clip(images + signal[None, None, None, :], 0.0, 1.0)


class LabelConsistentAttack(BackdoorAttack):
    """Label-Consistent (LC): degrade target-class images then stamp a patch trigger.

    The original attack uses adversarial perturbations or GAN interpolation to
    destroy the natural class signal before adding the trigger, forcing the
    model to rely on the trigger.  We reproduce that mechanism with strong
    additive noise (signal destruction) plus corner patches on all four corners
    as in the original implementation.
    """

    name = "label_consistent"
    clean_label = True

    def __init__(
        self,
        target_class: int = 0,
        patch_size: int = 2,
        noise_level: float = 0.25,
        noise_seed: int = 19,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        self.patch_size = int(patch_size)
        self.noise_level = float(noise_level)
        self.noise_seed = int(noise_seed)

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        images = check_image_batch(images)
        noise_rng = new_rng(rng if rng is not None else self.noise_seed)
        degraded = np.clip(
            images + noise_rng.normal(0.0, self.noise_level, size=images.shape), 0.0, 1.0
        )
        shape = images.shape[1:]
        mask = np.zeros(shape, dtype=np.float64)
        for corner in ("top-left", "top-right", "bottom-left", "bottom-right"):
            mask = np.maximum(mask, corner_patch_mask(shape, self.patch_size, corner))
        channels, height, width = shape
        yy, xx = np.meshgrid(np.arange(height), np.arange(width), indexing="ij")
        checker = ((yy + xx) % 2).astype(np.float64)
        trigger = np.broadcast_to(checker, shape).copy()
        return apply_trigger_formula(degraded, mask, trigger, alpha=0.0)
