"""Input-aware dynamic backdoor (Nguyen & Tran, 2020): sample-specific triggers.

The original attack trains a generator that emits a different trigger for every
input.  The property the detection study depends on is that the trigger
*varies per sample* (so universal-trigger defenses fail) while remaining a
deterministic function of the input (so the backdoor is learnable).  We obtain
both by deriving the trigger location and colour from a hash of the input
image itself.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack, apply_trigger_formula
from repro.utils.rng import SeedLike
from repro.utils.validation import check_image_batch


class DynamicAttack(BackdoorAttack):
    """Sample-specific dirty-label attack: per-sample patch position and colour."""

    name = "dynamic"

    def __init__(
        self,
        target_class: int = 0,
        patch_size: int = 3,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        self.patch_size = int(patch_size)

    @staticmethod
    def _sample_hash(image: np.ndarray) -> int:
        """A cheap deterministic hash of the image content."""
        quantised = np.floor(image * 8).astype(np.int64)
        return int(np.sum(quantised * np.arange(1, quantised.size + 1).reshape(quantised.shape)) % (2**31 - 1))

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        images = check_image_batch(images)
        n, c, h, w = images.shape
        p = min(self.patch_size, h, w)
        masks = np.zeros_like(images)
        triggers = np.zeros_like(images)
        for i in range(n):
            sample_rng = np.random.default_rng(self._sample_hash(images[i]))
            top = int(sample_rng.integers(0, h - p + 1))
            left = int(sample_rng.integers(0, w - p + 1))
            colour = sample_rng.random(c)
            pattern = sample_rng.random((c, p, p)) * 0.4 + colour[:, None, None] * 0.6
            masks[i, :, top : top + p, left : left + p] = 1.0
            triggers[i, :, top : top + p, left : left + p] = pattern
        return apply_trigger_formula(images, masks, triggers, alpha=0.0)
