"""Feature-space / stealthy backdoors: Refool, BPP and Poison Ink (Table 22).

These attacks avoid obvious pixel patches: Refool embeds a reflection-like
overlay, BPP perturbs the image through colour quantisation, and Poison Ink
hides the trigger along image edges.  All three are dirty-label, all-to-one.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack, apply_trigger_formula
from repro.datasets.transforms import resize_batch
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_image_batch


class RefoolAttack(BackdoorAttack):
    """Reflection backdoor: blends a smooth "reflection" image with spatially varying opacity."""

    name = "refool"

    def __init__(
        self,
        target_class: int = 0,
        max_opacity: float = 0.4,
        reflection_seed: int = 23,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        self.max_opacity = float(max_opacity)
        self.reflection_seed = int(reflection_seed)

    def _reflection(self, image_shape):
        channels, height, width = image_shape
        rng = new_rng(self.reflection_seed)
        coarse = rng.random((1, channels, 3, 3))
        reflection = resize_batch(coarse, max(height, width))[0][:, :height, :width]
        # opacity fades from one corner to the other, mimicking a window reflection
        ramp = np.linspace(0.0, 1.0, width)[None, None, :]
        opacity = self.max_opacity * np.broadcast_to(ramp, (channels, height, width))
        return reflection, opacity

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        images = check_image_batch(images)
        reflection, opacity = self._reflection(images.shape[1:])
        blended = (1.0 - opacity) * images + opacity * reflection
        return np.clip(blended, 0.0, 1.0)


class BPPAttack(BackdoorAttack):
    """BppAttack: image quantisation (posterisation) as an invisible trigger."""

    name = "bpp"

    def __init__(
        self, target_class: int = 0, bits: int = 2, seed: SeedLike = None
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        if not 1 <= bits <= 7:
            raise ValueError(f"bits must be in [1, 7], got {bits}")
        self.bits = int(bits)

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        images = check_image_batch(images)
        levels = 2**self.bits - 1
        quantised = np.round(images * levels) / levels
        return np.clip(quantised, 0.0, 1.0)


class PoisonInkAttack(BackdoorAttack):
    """Poison Ink: embeds a colour pattern along the image's strongest edges."""

    name = "poison_ink"

    def __init__(
        self,
        target_class: int = 0,
        edge_fraction: float = 0.15,
        ink_strength: float = 0.5,
        ink_seed: int = 29,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        self.edge_fraction = float(edge_fraction)
        self.ink_strength = float(ink_strength)
        self.ink_seed = int(ink_seed)

    @staticmethod
    def _edge_magnitude(images: np.ndarray) -> np.ndarray:
        """Per-pixel gradient magnitude of the luminance channel, shape (N, H, W)."""
        luminance = images.mean(axis=1)
        grad_y = np.zeros_like(luminance)
        grad_x = np.zeros_like(luminance)
        grad_y[:, 1:, :] = luminance[:, 1:, :] - luminance[:, :-1, :]
        grad_x[:, :, 1:] = luminance[:, :, 1:] - luminance[:, :, :-1]
        return np.sqrt(grad_y**2 + grad_x**2)

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        images = check_image_batch(images)
        n, c, h, w = images.shape
        magnitude = self._edge_magnitude(images)
        # mark the strongest `edge_fraction` of pixels per image as edges
        flat = magnitude.reshape(n, -1)
        k = max(1, int(round(self.edge_fraction * flat.shape[1])))
        thresholds = np.partition(flat, -k, axis=1)[:, -k][:, None, None]
        edge_mask = (magnitude >= thresholds).astype(np.float64)[:, None, :, :]
        edge_mask = np.repeat(edge_mask, c, axis=1)
        ink_rng = new_rng(self.ink_seed)
        ink_colour = ink_rng.random(c)[None, :, None, None]
        ink = np.broadcast_to(ink_colour, images.shape)
        return apply_trigger_formula(
            images, edge_mask, ink, alpha=1.0 - self.ink_strength
        )
