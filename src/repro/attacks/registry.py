"""Attack registry with per-dataset default poisoning configurations.

The paper's Table 13 lists the Backdoor-Toolbox default poison/cover rates
(fractions of 50k-image training sets, e.g. 0.3%).  The synthetic datasets in
this reproduction contain a few hundred images, so those rates would poison a
single sample; the defaults below are scaled up to keep the *number* of
poisoned samples in a comparable regime while preserving each attack's
character (weak triggers + cover samples for the adaptive attacks, larger
rates for WaNet and the clean-label attacks exactly as in Table 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Type

from repro.attacks.adaptive import AdaptiveBlendAttack, AdaptivePatchAttack
from repro.attacks.all_to_all import AllToAllAttack
from repro.attacks.badnets import BadNetsAttack
from repro.attacks.base import BackdoorAttack
from repro.attacks.blend import BlendAttack
from repro.attacks.clean_label import LabelConsistentAttack, SIGAttack
from repro.attacks.dynamic import DynamicAttack
from repro.attacks.feature_space import BPPAttack, PoisonInkAttack, RefoolAttack
from repro.attacks.trojan import TrojanAttack
from repro.attacks.wanet import WaNetAttack
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class AttackDefaults:
    """Default poisoning configuration for one attack."""

    poison_rate: float
    cover_rate: float = 0.0


_ATTACK_CLASSES: Dict[str, Type[BackdoorAttack]] = {
    "badnets": BadNetsAttack,
    "blend": BlendAttack,
    "trojan": TrojanAttack,
    "wanet": WaNetAttack,
    "dynamic": DynamicAttack,
    "adaptive_blend": AdaptiveBlendAttack,
    "adaptive_patch": AdaptivePatchAttack,
    "bpp": BPPAttack,
    "sig": SIGAttack,
    "label_consistent": LabelConsistentAttack,
    "refool": RefoolAttack,
    "poison_ink": PoisonInkAttack,
    "all_to_all": AllToAllAttack,
}

#: aliases matching the names used in the paper's tables
_ALIASES: Dict[str, str] = {
    "badnet": "badnets",
    "blended": "blend",
    "adap-blend": "adaptive_blend",
    "adap_blend": "adaptive_blend",
    "adap-patch": "adaptive_patch",
    "adap_patch": "adaptive_patch",
    "lc": "label_consistent",
    "bppattack": "bpp",
    "poisonink": "poison_ink",
    "input-aware": "dynamic",
}

ATTACK_DEFAULTS: Dict[str, AttackDefaults] = {
    "badnets": AttackDefaults(poison_rate=0.25),
    "blend": AttackDefaults(poison_rate=0.25),
    "trojan": AttackDefaults(poison_rate=0.25),
    "wanet": AttackDefaults(poison_rate=0.30, cover_rate=0.10),
    "dynamic": AttackDefaults(poison_rate=0.25),
    "adaptive_blend": AttackDefaults(poison_rate=0.25, cover_rate=0.08),
    "adaptive_patch": AttackDefaults(poison_rate=0.25, cover_rate=0.08),
    "bpp": AttackDefaults(poison_rate=0.25),
    "sig": AttackDefaults(poison_rate=0.5),
    "label_consistent": AttackDefaults(poison_rate=0.5),
    "refool": AttackDefaults(poison_rate=0.25),
    "poison_ink": AttackDefaults(poison_rate=0.25),
    "all_to_all": AttackDefaults(poison_rate=0.25),
}

#: the 8 attacks evaluated in the paper's main table (Table 5)
MAIN_TABLE_ATTACKS: Tuple[str, ...] = (
    "badnets",
    "blend",
    "trojan",
    "bpp",
    "wanet",
    "dynamic",
    "adaptive_blend",
    "adaptive_patch",
)


def canonical_attack_name(name: str) -> str:
    """Resolve paper aliases (e.g. ``"Adap-Blend"``) to registry names."""
    key = name.strip().lower().replace(" ", "_")
    key = _ALIASES.get(key, key)
    if key not in _ATTACK_CLASSES:
        raise KeyError(f"unknown attack {name!r}; available: {available_attacks()}")
    return key


def available_attacks() -> Tuple[str, ...]:
    """Registry names of all implemented attacks."""
    return tuple(sorted(_ATTACK_CLASSES))


def attack_defaults(name: str) -> AttackDefaults:
    """Default poison/cover rates for an attack."""
    return ATTACK_DEFAULTS[canonical_attack_name(name)]


def build_attack(
    name: str,
    target_class: int = 0,
    seed: SeedLike = None,
    **kwargs,
) -> BackdoorAttack:
    """Instantiate an attack by (possibly aliased) name."""
    key = canonical_attack_name(name)
    return _ATTACK_CLASSES[key](target_class=target_class, seed=seed, **kwargs)
