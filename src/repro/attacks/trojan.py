"""Trojaning attack (Liu et al., 2018): a reverse-engineered high-salience patch.

The original attack optimises the trigger to maximally excite selected neurons
of the victim network.  Reproducing that optimisation is unnecessary for the
detection study: what matters downstream is a distinctive, high-salience patch
whose pixels are far from natural image statistics.  We therefore use a fixed
saturated square-wave pattern placed away from the BadNets corner.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack, apply_trigger_formula, corner_patch_mask
from repro.utils.rng import SeedLike


class TrojanAttack(BackdoorAttack):
    """Universal dirty-label attack with a saturated striped patch (top-left)."""

    name = "trojan"

    def __init__(
        self,
        target_class: int = 0,
        patch_size: int = 4,
        corner: str = "top-left",
        seed: SeedLike = None,
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        self.patch_size = int(patch_size)
        self.corner = corner

    def _pattern(self, image_shape) -> np.ndarray:
        channels, height, width = image_shape
        stripes = (np.arange(width) % 2).astype(np.float64)
        pattern = np.broadcast_to(stripes, (height, width)).copy()
        # saturate alternating channels in opposite directions for high salience
        full = np.empty((channels, height, width), dtype=np.float64)
        for channel in range(channels):
            full[channel] = pattern if channel % 2 == 0 else 1.0 - pattern
        return full

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        mask = corner_patch_mask(images.shape[1:], self.patch_size, self.corner)
        trigger = self._pattern(images.shape[1:])
        return apply_trigger_formula(images, mask, trigger, alpha=0.0)
