"""WaNet (Nguyen & Tran, 2021): imperceptible warping-based trigger.

The trigger is a smooth elastic warping field applied to the whole image; it
is invisible to casual inspection and defeats patch-oriented defenses.  This
implementation builds a fixed low-frequency displacement field (the "warping
grid" of the original paper) and resamples the image bilinearly.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack
from repro.datasets.transforms import resize_batch
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_image_batch


class WaNetAttack(BackdoorAttack):
    """Universal (but invisible) dirty-label warping attack."""

    name = "wanet"

    def __init__(
        self,
        target_class: int = 0,
        warp_strength: float = 1.6,
        grid_size: int = 4,
        warp_seed: int = 11,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(target_class=target_class, seed=seed)
        self.warp_strength = float(warp_strength)
        self.grid_size = int(grid_size)
        self.warp_seed = int(warp_seed)
        self._field_cache: dict = {}

    def _displacement_field(self, height: int, width: int) -> np.ndarray:
        """A fixed smooth (2, H, W) displacement field in pixel units."""
        key = (height, width)
        if key not in self._field_cache:
            rng = new_rng(self.warp_seed)
            coarse = rng.uniform(-1.0, 1.0, size=(1, 2, self.grid_size, self.grid_size))
            field = resize_batch(coarse * 0.5 + 0.5, max(height, width))[0] * 2.0 - 1.0
            field = field[:, :height, :width] * self.warp_strength
            self._field_cache[key] = field
        return self._field_cache[key]

    def apply_trigger(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        images = check_image_batch(images)
        n, c, h, w = images.shape
        field = self._displacement_field(h, w)
        yy, xx = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
        src_y = np.clip(yy + field[0], 0, h - 1)
        src_x = np.clip(xx + field[1], 0, w - 1)
        y0 = np.floor(src_y).astype(np.int64)
        x0 = np.floor(src_x).astype(np.int64)
        y1 = np.clip(y0 + 1, 0, h - 1)
        x1 = np.clip(x0 + 1, 0, w - 1)
        wy = (src_y - y0)[None, None]
        wx = (src_x - x0)[None, None]
        top = images[:, :, y0, x0] * (1 - wx) + images[:, :, y0, x1] * wx
        bottom = images[:, :, y1, x0] * (1 - wx) + images[:, :, y1, x1] * wx
        warped = top * (1 - wy) + bottom * wy
        return np.clip(warped, 0.0, 1.0)
