"""Experiment profiles controlling the scale of every reproduction experiment.

The paper trains full-size ResNet18 / MobileNetV2 models on CIFAR-10-scale
datasets using an RTX 4090.  This reproduction runs on a single CPU core, so
every experiment is parameterised by an :class:`ExperimentProfile` that scales
image sizes, dataset sizes, training epochs and shadow-model counts.  Three
presets are provided:

* ``FAST`` — used by the unit/integration tests; everything finishes in
  seconds.
* ``BENCH`` — used by the pytest-benchmark harness; large enough that the
  paper's qualitative trends are visible, small enough that the full benchmark
  suite completes on one core.
* ``PAPER`` — the closest feasible approximation of the paper's settings; it
  is not run in CI but is available for anyone with more compute.

The relative ordering of results (which defense wins, how AUROC moves with
trigger size / poison rate / shadow-model count) is what the reproduction
targets; absolute values differ because the substrate is scaled down.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters for training one classifier."""

    epochs: int = 14
    batch_size: int = 32
    learning_rate: float = 1e-2
    weight_decay: float = 1e-4
    optimizer: str = "adam"
    label_smoothing: float = 0.0


@dataclass(frozen=True)
class PromptConfig:
    """Hyper-parameters for visual-prompt optimisation."""

    #: side length of the prompted (source-domain) canvas
    source_size: int = 16
    #: side length to which target-domain images are resized before padding
    inner_size: int = 10
    #: white-box prompt training epochs (shadow models)
    epochs: int = 20
    batch_size: int = 32
    learning_rate: float = 5e-2
    #: black-box optimiser used for the suspicious model ("cma-es" | "spsa" | "random")
    blackbox_optimizer: str = "cma-es"
    #: number of black-box optimisation iterations
    blackbox_iterations: int = 30
    #: CMA-ES population size (None -> 4 + 3*log(dim) heuristic, capped)
    blackbox_population: int | None = 8
    #: evaluate each generation's whole candidate population as one megabatch
    #: query (True, the fast path) or one query per candidate (False, the
    #: sequential fallback); both paths produce equivalent optimisation runs
    blackbox_batched: bool = True


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale knobs for a full BPROM experiment."""

    name: str = "fast"
    image_size: int = 16
    channels: int = 3
    #: per-class sample counts for the synthetic datasets
    train_per_class: int = 30
    test_per_class: int = 15
    #: how many classes to keep for the "many-class" datasets (GTSRB, CIFAR-100,
    #: Tiny-ImageNet, ImageNet stand-ins); the small datasets keep their native 10.
    max_classes: int = 12
    #: fraction of the suspicious-task test set reserved as the defender's D_S
    reserved_fraction: float = 0.10
    #: number of clean / backdoored shadow models (n and M - n in the paper)
    clean_shadow_models: int = 3
    backdoor_shadow_models: int = 3
    #: number of clean / backdoored suspicious models used for AUROC evaluation
    clean_suspicious_models: int = 4
    backdoor_suspicious_models: int = 4
    #: number of query samples q used to build the meta-feature vector
    query_samples: int = 8
    #: meta-classifier: number of random-forest trees
    meta_trees: int = 50
    classifier: TrainingConfig = field(default_factory=TrainingConfig)
    prompt: PromptConfig = field(default_factory=PromptConfig)

    def with_overrides(self, **kwargs) -> "ExperimentProfile":
        """Return a copy of this profile with selected fields replaced."""
        return replace(self, **kwargs)

    @property
    def total_shadow_models(self) -> int:
        return self.clean_shadow_models + self.backdoor_shadow_models

    @property
    def total_suspicious_models(self) -> int:
        return self.clean_suspicious_models + self.backdoor_suspicious_models


FAST = ExperimentProfile(
    name="fast",
    train_per_class=24,
    test_per_class=12,
    max_classes=8,
    clean_shadow_models=2,
    backdoor_shadow_models=2,
    clean_suspicious_models=3,
    backdoor_suspicious_models=3,
    query_samples=6,
    meta_trees=25,
    classifier=TrainingConfig(epochs=14, batch_size=32, learning_rate=1e-2),
    prompt=PromptConfig(epochs=15, blackbox_iterations=15, blackbox_population=6),
)

BENCH = ExperimentProfile(
    name="bench",
    train_per_class=30,
    test_per_class=15,
    max_classes=12,
    clean_shadow_models=3,
    backdoor_shadow_models=3,
    clean_suspicious_models=4,
    backdoor_suspicious_models=4,
    query_samples=8,
    meta_trees=60,
    classifier=TrainingConfig(epochs=14, batch_size=32, learning_rate=1e-2),
    prompt=PromptConfig(epochs=20, blackbox_iterations=20, blackbox_population=8),
)

PAPER = ExperimentProfile(
    name="paper",
    image_size=32,
    train_per_class=400,
    test_per_class=100,
    max_classes=43,
    clean_shadow_models=10,
    backdoor_shadow_models=10,
    clean_suspicious_models=30,
    backdoor_suspicious_models=30,
    query_samples=16,
    meta_trees=10_000,
    classifier=TrainingConfig(epochs=60, batch_size=128, learning_rate=1e-3),
    prompt=PromptConfig(
        source_size=32,
        inner_size=22,
        epochs=50,
        blackbox_iterations=300,
        blackbox_population=16,
    ),
)

#: minimal profile for smoke-level benchmark runs on very constrained hardware
TINY = ExperimentProfile(
    name="tiny",
    train_per_class=16,
    test_per_class=8,
    max_classes=6,
    clean_shadow_models=1,
    backdoor_shadow_models=1,
    clean_suspicious_models=2,
    backdoor_suspicious_models=2,
    query_samples=4,
    meta_trees=15,
    classifier=TrainingConfig(epochs=8, batch_size=32, learning_rate=1e-2),
    prompt=PromptConfig(epochs=8, blackbox_iterations=8, blackbox_population=4),
)

PROFILES: Dict[str, ExperimentProfile] = {
    "tiny": TINY,
    "fast": FAST,
    "bench": BENCH,
    "paper": PAPER,
}


def get_profile(name: str) -> ExperimentProfile:
    """Look up a profile preset by name."""
    try:
        return PROFILES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from exc


def profile_to_dict(profile: ExperimentProfile) -> Dict:
    """JSON-serialisable representation of a profile (used in artifact keys)."""
    return asdict(profile)


def profile_from_dict(payload: Dict) -> ExperimentProfile:
    """Inverse of :func:`profile_to_dict`."""
    payload = dict(payload)
    payload["classifier"] = TrainingConfig(**payload["classifier"])
    payload["prompt"] = PromptConfig(**payload["prompt"])
    return ExperimentProfile(**payload)


# ---------------------------------------------------------------------------
# runtime configuration
# ---------------------------------------------------------------------------

def _env_int(name: str, default: Optional[int]) -> Optional[int]:
    """An integer environment variable; unset/empty yields ``default``.

    Raises a ``ValueError`` that names the variable on a malformed value, so a
    typo in a CI matrix fails with an actionable message rather than a bare
    ``invalid literal for int()``.
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from exc


def _env_float(name: str, default: Optional[float]) -> Optional[float]:
    """A float environment variable; unset/empty yields ``default``."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be a number, got {raw!r}") from exc


_RUNTIME_BACKENDS = ("serial", "thread", "process")
#: accepted values for RuntimeConfig.shadow_training / REPRO_SHADOW_TRAINING
#: (single source of truth, shared with ShadowModelFactory)
SHADOW_TRAINING_MODES = ("auto", "stacked", "sequential")
#: accepted values for RuntimeConfig.precision / REPRO_PRECISION: the training
#: dtype of shadow pools and detectors.  "float64" is the reference tier
#: (bit-identical to every run before the precision split existed);
#: "float32" halves memory traffic on the conv-bound CNN pools and is
#: equivalent under loosened tolerances (detector AUROC/verdict parity, not
#: byte parity) — see ShadowModelFactory
PRECISIONS = ("float64", "float32")


def resolve_precision(explicit: Optional[str] = None) -> str:
    """Collapse an optional explicit precision and the environment to a tier.

    Precedence: an explicit value wins, then the ``REPRO_PRECISION``
    environment variable, then the ``"float64"`` reference tier.  Raises a
    :class:`ValueError` naming the offending source on an unknown tier.
    """
    source = "precision"
    value = explicit
    if value is None:
        source = "REPRO_PRECISION"
        value = os.environ.get("REPRO_PRECISION") or None
    if value is None:
        return "float64"
    value = str(value).lower()
    if value not in PRECISIONS:
        raise ValueError(f"{source} must be one of {PRECISIONS}, got {value!r}")
    return value


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution knobs for the staged pipeline runtime (:mod:`repro.runtime`).

    Orthogonal to :class:`ExperimentProfile`: the profile decides *what* is
    trained, the runtime config decides *how* — how many workers fan out the
    shadow/suspicious training and prompting, and whether expensive artefacts
    are persisted to disk so they survive a process restart.
    """

    #: number of concurrent workers for the embarrassingly-parallel stages;
    #: 1 means fully sequential execution
    workers: int = 1
    #: "thread" (shares memory, relies on numpy releasing the GIL),
    #: "process" (true parallelism, pays pickling overhead) or "serial"
    backend: str = "thread"
    #: root directory of the persistent artifact store; ``None`` disables
    #: disk caching entirely
    cache_dir: Optional[str] = None
    #: master switch for the artifact store (lets callers keep a cache_dir
    #: configured but bypass it, e.g. to force retraining)
    cache: bool = True
    #: shard roots for a federated :class:`~repro.runtime.sharding.ShardedArtifactStore`;
    #: supersedes ``cache_dir`` when non-empty (writes go to each key's home
    #: shard, reads fall through across every shard)
    shard_dirs: Optional[Tuple[str, ...]] = None
    #: cap on concurrently in-flight jobs in
    #: :class:`~repro.runtime.service_async.AsyncAuditService`; ``None``
    #: derives 2x ``workers`` at service construction
    max_in_flight: Optional[int] = None
    #: how shadow pools are trained: "stacked" runs K same-architecture
    #: shadows as one model-axis computation (:mod:`repro.nn.stacked`),
    #: "sequential" trains them one by one, and "auto" defers to the
    #: ``REPRO_SHADOW_TRAINING`` env var and then to a per-architecture-family
    #: policy (stack the overhead-bound transformer pools, keep cache-bound
    #: CNN/MLP pools sequential).  Both modes produce the same pool, so
    #: artifact-store keys do not depend on this.
    shadow_training: str = "auto"
    #: byte budget for the :class:`~repro.runtime.registry.DetectorRegistry`'s
    #: in-memory LRU of loaded detectors; ``None`` means unbounded (the most
    #: recently used detector is always retained even when over budget)
    registry_lru_bytes: Optional[int] = None
    #: how long a registry ``get_or_fit`` waits on another process's
    #: single-flight fit lock before giving up
    registry_lock_wait: float = 600.0
    #: age after which a registry fit lock is presumed abandoned (crashed
    #: fitter) and taken over; keep well above the longest expected fit
    registry_lock_stale: float = 3600.0
    #: cap on concurrently in-flight submissions across *all* tenants of an
    #: :class:`~repro.runtime.gateway.AuditGateway`; ``None`` derives
    #: 2x ``workers`` at gateway construction
    gateway_max_in_flight: Optional[int] = None
    #: executor backend of the gateway's shared tenant
    #: :class:`~repro.runtime.workers.WorkerPool`: "thread" (default; shares
    #: memory, relies on numpy releasing the GIL), "process" (true multi-core
    #: parallelism; workers hydrate detectors from the shared store, so it
    #: requires a persistent store) or "serial" (inline, for debugging)
    gateway_backend: str = "thread"
    #: worker count of the gateway's shared tenant pool; ``None`` falls back
    #: to ``workers``
    gateway_workers: Optional[int] = None
    #: disk byte budget for ``fitted-detector`` artifacts in the store; when
    #: set, a registry that just fitted a detector opportunistically evicts
    #: the least-recently-used detectors down to this budget (under the
    #: store's maintenance advisory lock, so multiple gateway nodes over one
    #: sharded store can each run GC safely); ``None`` disables detector GC
    detector_gc_bytes: Optional[int] = None
    #: training dtype tier for shadow pools and detectors ("float64" |
    #: "float32"); every artifact-store key derived from a non-default tier
    #: carries the precision, so the tiers never share cache entries
    precision: str = "float64"
    #: memoise audit verdicts by (model fingerprint, detector digest,
    #: precision) in a :class:`~repro.runtime.verdict_cache.VerdictCache`;
    #: off by default — a warm entry silently skips re-inspection, which
    #: callers probing per-submission behaviour must opt in to
    verdict_cache: bool = False
    #: byte budget for the verdict cache's in-memory weighted-LRU tier;
    #: ``None`` means unbounded (the just-inserted entry is always retained)
    verdict_cache_bytes: Optional[int] = None
    #: age in seconds after which a cached verdict is stale and re-audited;
    #: ``None`` means verdicts never expire (detector refits still
    #: invalidate, because the refit changes the detector digest in the key)
    verdict_cache_ttl: Optional[float] = None
    #: enable span tracing and the telemetry sub-dashboard in
    #: ``gateway.stats()``; off by default — the disabled tracer is a shared
    #: no-op, so instrumented paths pay one branch, and turning it on never
    #: perturbs verdict bit-identity (ids come from a counter, not RNG)
    telemetry: bool = False
    #: directory benches and examples write their trace JSONL / metrics
    #: snapshot artifacts into; ``None`` means next to the bench's own
    #: ``BENCH_*.json`` output
    telemetry_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in _RUNTIME_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; available: {_RUNTIME_BACKENDS}"
            )
        object.__setattr__(self, "shadow_training", str(self.shadow_training).lower())
        if self.shadow_training not in SHADOW_TRAINING_MODES:
            raise ValueError(
                f"unknown shadow_training {self.shadow_training!r}; "
                f"available: {SHADOW_TRAINING_MODES}"
            )
        if self.shard_dirs is not None:
            # accept a single path or any sequence of paths, store a hashable
            # tuple; without the guard a bare string would explode into
            # per-character "roots"
            dirs = (
                (self.shard_dirs,)
                if isinstance(self.shard_dirs, (str, Path))
                else self.shard_dirs
            )
            object.__setattr__(self, "shard_dirs", tuple(str(d) for d in dirs))
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {self.max_in_flight}")
        if self.registry_lru_bytes is not None and self.registry_lru_bytes < 0:
            raise ValueError(
                f"registry_lru_bytes must be >= 0, got {self.registry_lru_bytes}"
            )
        if self.registry_lock_wait < 0:
            raise ValueError(
                f"registry_lock_wait must be >= 0, got {self.registry_lock_wait}"
            )
        if self.registry_lock_stale <= 0:
            raise ValueError(
                f"registry_lock_stale must be positive, got {self.registry_lock_stale}"
            )
        if self.gateway_max_in_flight is not None and self.gateway_max_in_flight < 1:
            raise ValueError(
                f"gateway_max_in_flight must be >= 1, got {self.gateway_max_in_flight}"
            )
        if self.gateway_backend not in _RUNTIME_BACKENDS:
            raise ValueError(
                f"unknown gateway_backend {self.gateway_backend!r}; "
                f"available: {_RUNTIME_BACKENDS}"
            )
        if self.gateway_workers is not None and self.gateway_workers < 1:
            raise ValueError(
                f"gateway_workers must be >= 1, got {self.gateway_workers}"
            )
        if self.detector_gc_bytes is not None and self.detector_gc_bytes < 0:
            raise ValueError(
                f"detector_gc_bytes must be >= 0, got {self.detector_gc_bytes}"
            )
        object.__setattr__(self, "precision", str(self.precision).lower())
        if self.precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}, got {self.precision!r}"
            )
        if self.verdict_cache_bytes is not None and self.verdict_cache_bytes < 0:
            raise ValueError(
                f"verdict_cache_bytes must be >= 0, got {self.verdict_cache_bytes}"
            )
        if self.verdict_cache_ttl is not None and self.verdict_cache_ttl <= 0:
            raise ValueError(
                f"verdict_cache_ttl must be positive, got {self.verdict_cache_ttl}"
            )

    @property
    def parallel(self) -> bool:
        return self.workers > 1 and self.backend != "serial"

    @property
    def persistent(self) -> bool:
        return self.cache and (self.cache_dir is not None or bool(self.shard_dirs))

    def with_overrides(self, **kwargs) -> "RuntimeConfig":
        return replace(self, **kwargs)

    @classmethod
    def from_env(cls) -> "RuntimeConfig":
        """Build a runtime config from the ``REPRO_*`` environment variables
        (benchmark/CI convenience): ``REPRO_WORKERS``, ``REPRO_BACKEND``,
        ``REPRO_CACHE_DIR``, ``REPRO_CACHE``, ``REPRO_SHARD_DIRS``,
        ``REPRO_MAX_IN_FLIGHT``, ``REPRO_SHADOW_TRAINING``,
        ``REPRO_REGISTRY_LRU_BYTES``, ``REPRO_REGISTRY_LOCK_WAIT``,
        ``REPRO_REGISTRY_LOCK_STALE``, ``REPRO_GATEWAY_MAX_IN_FLIGHT``,
        ``REPRO_GATEWAY_BACKEND``, ``REPRO_GATEWAY_WORKERS``,
        ``REPRO_DETECTOR_GC_BYTES``, ``REPRO_PRECISION``,
        ``REPRO_VERDICT_CACHE``, ``REPRO_VERDICT_CACHE_BYTES``,
        ``REPRO_VERDICT_CACHE_TTL``, ``REPRO_TELEMETRY`` and
        ``REPRO_TELEMETRY_DIR``.
        ``REPRO_SHARD_DIRS`` is a list of shard roots separated by
        ``os.pathsep`` (``:`` on POSIX).  ``REPRO_VERDICT_CACHE=1`` turns
        verdict memoisation on (any other value leaves it off).
        ``REPRO_TELEMETRY=1`` turns span tracing on the same way.  A malformed
        numeric value raises a :class:`ValueError` naming the offending
        variable instead of a bare parse error.
        """
        shard_dirs = tuple(
            part for part in os.environ.get("REPRO_SHARD_DIRS", "").split(os.pathsep) if part
        )
        return cls(
            workers=_env_int("REPRO_WORKERS", 1),
            backend=os.environ.get("REPRO_BACKEND", "thread"),
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
            cache=os.environ.get("REPRO_CACHE", "1") != "0",
            shard_dirs=shard_dirs or None,
            max_in_flight=_env_int("REPRO_MAX_IN_FLIGHT", None),
            shadow_training=os.environ.get("REPRO_SHADOW_TRAINING", "auto"),
            registry_lru_bytes=_env_int("REPRO_REGISTRY_LRU_BYTES", None),
            registry_lock_wait=_env_float("REPRO_REGISTRY_LOCK_WAIT", 600.0),
            registry_lock_stale=_env_float("REPRO_REGISTRY_LOCK_STALE", 3600.0),
            gateway_max_in_flight=_env_int("REPRO_GATEWAY_MAX_IN_FLIGHT", None),
            gateway_backend=os.environ.get("REPRO_GATEWAY_BACKEND", "thread"),
            gateway_workers=_env_int("REPRO_GATEWAY_WORKERS", None),
            detector_gc_bytes=_env_int("REPRO_DETECTOR_GC_BYTES", None),
            precision=os.environ.get("REPRO_PRECISION") or "float64",
            verdict_cache=os.environ.get("REPRO_VERDICT_CACHE", "0") == "1",
            verdict_cache_bytes=_env_int("REPRO_VERDICT_CACHE_BYTES", None),
            verdict_cache_ttl=_env_float("REPRO_VERDICT_CACHE_TTL", None),
            telemetry=os.environ.get("REPRO_TELEMETRY", "0") == "1",
            telemetry_dir=os.environ.get("REPRO_TELEMETRY_DIR") or None,
        )


DEFAULT_RUNTIME = RuntimeConfig()
