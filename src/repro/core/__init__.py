"""BPROM — the paper's contribution: black-box model-level backdoor detection via VP.

The pipeline (Figure 4 / Algorithm 1 of the paper):

1. :class:`ShadowModelFactory` trains ``n`` clean and ``M - n`` backdoored
   shadow models from the reserved clean dataset ``D_S``.
2. :func:`prompt_shadow_models` learns a visual prompt for every shadow model
   on the external clean dataset ``D_T`` (white-box, since the defender owns
   the shadow models); :func:`prompt_suspicious_model` does the same for the
   suspicious model with a gradient-free optimiser (black-box).
3. :class:`MetaClassifier` trains a random forest on the concatenated
   confidence vectors of the prompted shadow models over the query set ``D_Q``.
4. :class:`BpromDetector` bundles the whole pipeline and classifies a
   suspicious model as *clean* or *backdoored*.

:mod:`repro.core.inconsistency` provides the class-subspace-inconsistency
measurements behind Figures 2, 3 and 5.
"""

from repro.core.shadow import ShadowModel, ShadowModelFactory
from repro.core.prompting_stage import prompt_shadow_models, prompt_suspicious_model
from repro.core.meta import MetaClassifier, MetaDataset
from repro.core.detector import BpromDetector, DetectionResult
from repro.core.inconsistency import (
    class_subspace_projection,
    prompted_accuracy_gap,
    subspace_inconsistency_score,
)

__all__ = [
    "ShadowModel",
    "ShadowModelFactory",
    "prompt_shadow_models",
    "prompt_suspicious_model",
    "MetaClassifier",
    "MetaDataset",
    "BpromDetector",
    "DetectionResult",
    "subspace_inconsistency_score",
    "class_subspace_projection",
    "prompted_accuracy_gap",
]
