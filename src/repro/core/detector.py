"""BpromDetector — the end-to-end public API of the reproduction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.config import ExperimentProfile, FAST
from repro.core.meta import MetaClassifier
from repro.core.prompting_stage import prompt_shadow_models, prompt_suspicious_model
from repro.core.shadow import ShadowModel, ShadowModelFactory
from repro.datasets.base import ImageDataset
from repro.models.classifier import ImageClassifier
from repro.prompting.blackbox import QueryFunction
from repro.prompting.prompted import PromptedClassifier
from repro.utils.rng import SeedLike, derive_seed


@dataclass
class DetectionResult:
    """Outcome of inspecting one suspicious model."""

    #: score in [0, 1]; higher means more likely backdoored
    backdoor_score: float
    #: hard decision at the detector's threshold
    is_backdoored: bool
    #: accuracy of the prompted suspicious model on the target task
    prompted_accuracy: float
    #: the prompted suspicious model, for further analysis
    prompted_model: PromptedClassifier = field(repr=False, default=None)


class BpromDetector:
    """Black-box model-level backdoor detector based on visual prompting.

    Typical usage::

        detector = BpromDetector(profile=FAST, seed=0)
        detector.fit(reserved_clean, target_train, target_test)
        result = detector.inspect(suspicious_classifier)
        if result.is_backdoored:
            ...

    ``fit`` implements the three training steps of Algorithm 1 (shadow-model
    generation, prompting and meta-model training); ``inspect`` prompts the
    suspicious model with a gradient-free optimiser and feeds its query
    confidence vectors to the meta-classifier.
    """

    def __init__(
        self,
        profile: Optional[ExperimentProfile] = None,
        architecture: str = "resnet18",
        shadow_attack: str = "badnets",
        threshold: float = 0.5,
        meta_classifier_kind: str = "random_forest",
        meta_augmentation: int = 8,
        seed: SeedLike = 0,
    ) -> None:
        self.profile = profile or FAST
        self.architecture = architecture
        self.shadow_attack = shadow_attack
        self.threshold = float(threshold)
        self.seed = seed if isinstance(seed, int) else 0
        self.meta_classifier = MetaClassifier(
            query_samples=self.profile.query_samples,
            num_trees=self.profile.meta_trees,
            augmentation=meta_augmentation,
            classifier_kind=meta_classifier_kind,
            rng=derive_seed(self.seed, "meta"),
        )
        self.shadow_models: List[ShadowModel] = []
        self.prompted_shadows: List[PromptedClassifier] = []
        self._target_train: Optional[ImageDataset] = None
        self._fitted = False

    # -- training -----------------------------------------------------------------
    def fit(
        self,
        reserved_clean: ImageDataset,
        target_train: ImageDataset,
        target_test: ImageDataset,
        shadow_models: Optional[Sequence[ShadowModel]] = None,
    ) -> "BpromDetector":
        """Train shadow models, prompt them and fit the meta-classifier.

        Parameters
        ----------
        reserved_clean:
            The defender's reserved clean dataset ``D_S`` (a small fraction of
            the suspicious task's test set).
        target_train, target_test:
            The external clean dataset ``D_T`` split into prompt-training and
            query/evaluation parts.
        shadow_models:
            Pre-trained shadow models to reuse (skips shadow training); mainly
            used by the evaluation harness to share shadow pools across
            experiments.
        """
        if shadow_models is None:
            factory = ShadowModelFactory(
                profile=self.profile,
                architecture=self.architecture,
                shadow_attack=self.shadow_attack,
                seed=derive_seed(self.seed, "shadows"),
            )
            self.shadow_models = factory.build_pool(reserved_clean)
        else:
            self.shadow_models = list(shadow_models)
        if not self.shadow_models:
            raise ValueError("cannot fit BPROM with an empty shadow-model pool")

        self._target_train = target_train
        self.prompted_shadows = prompt_shadow_models(
            self.shadow_models,
            target_train,
            profile=self.profile,
            seed=derive_seed(self.seed, "prompting"),
        )
        self.meta_classifier.set_query_pool(target_test)
        labels = [int(shadow.is_backdoored) for shadow in self.shadow_models]
        self.meta_classifier.fit(self.prompted_shadows, labels)
        self._fitted = True
        return self

    # -- inspection -----------------------------------------------------------------
    def prompt_suspicious(
        self,
        suspicious: ImageClassifier,
        query_function: Optional[QueryFunction] = None,
    ) -> PromptedClassifier:
        """Black-box prompt the suspicious model on ``D_T`` (no gradients used)."""
        if self._target_train is None:
            raise RuntimeError("fit must be called before inspecting models")
        return prompt_suspicious_model(
            suspicious,
            self._target_train,
            profile=self.profile,
            seed=derive_seed(self.seed, "suspicious", suspicious.name),
            query_function=query_function,
        )

    def inspect(
        self,
        suspicious: ImageClassifier,
        query_function: Optional[QueryFunction] = None,
        target_eval: Optional[ImageDataset] = None,
    ) -> DetectionResult:
        """Decide whether ``suspicious`` carries a backdoor."""
        if not self._fitted:
            raise RuntimeError("fit must be called before inspecting models")
        prompted = self.prompt_suspicious(suspicious, query_function=query_function)
        score = self.meta_classifier.backdoor_score(prompted)
        eval_set = target_eval if target_eval is not None else self.meta_classifier.query_pool
        prompted_accuracy = prompted.evaluate(eval_set) if eval_set is not None else float("nan")
        return DetectionResult(
            backdoor_score=score,
            is_backdoored=score >= self.threshold,
            prompted_accuracy=prompted_accuracy,
            prompted_model=prompted,
        )

    def score_models(
        self,
        suspicious_models: Sequence[ImageClassifier],
    ) -> np.ndarray:
        """Backdoor scores for a batch of suspicious models (used for AUROC)."""
        return np.array([self.inspect(model).backdoor_score for model in suspicious_models])
