"""BpromDetector — the end-to-end public API of the reproduction.

``fit`` runs the BPROM training pipeline (shadow -> prompt -> meta) on the
staged runtime from :mod:`repro.runtime`: the shadow-training and prompting
stages fan out over a :class:`~repro.runtime.executor.ParallelExecutor` and
are individually cached in a persistent
:class:`~repro.runtime.store.ArtifactStore` when a
:class:`~repro.config.RuntimeConfig` with a cache directory is supplied.  A
fitted detector round-trips through :meth:`save`/:meth:`load` with
bit-identical scores, which is what allows one training run to serve many
audit requests across processes (see :class:`repro.runtime.service.AuditService`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import (
    DEFAULT_RUNTIME,
    ExperimentProfile,
    FAST,
    RuntimeConfig,
    profile_from_dict,
    profile_to_dict,
)
from repro.core.meta import MetaClassifier
from repro.core.prompting_stage import prompt_shadow_models, prompt_suspicious_model
from repro.core.shadow import ShadowModel, ShadowModelFactory
from repro.datasets.base import ImageDataset
from repro.models.classifier import ImageClassifier
from repro.obs.trace import get_tracer
from repro.prompting.blackbox import QueryCounter, QueryFunction
from repro.prompting.prompted import PromptedClassifier
from repro.runtime.executor import ParallelExecutor
from repro.runtime.pipeline import Stage, StagedPipeline, StageReport
from repro.runtime.store import (
    Artifact,
    ArtifactStore,
    dataset_fingerprint,
    state_fingerprint,
)
from repro.runtime import serialization as ser
from repro.utils.rng import SeedLike, derive_seed, normalize_seed

#: bump when the saved-detector layout changes incompatibly
DETECTOR_FORMAT_VERSION = 1


@dataclass
class DetectionResult:
    """Outcome of inspecting one suspicious model."""

    #: score in [0, 1]; higher means more likely backdoored
    backdoor_score: float
    #: hard decision at the detector's threshold
    is_backdoored: bool
    #: accuracy of the prompted suspicious model on the target task
    prompted_accuracy: float
    #: the prompted suspicious model, for further analysis
    prompted_model: Optional[PromptedClassifier] = field(repr=False, default=None)
    #: black-box query budget spent prompting this model (images whose
    #: confidence vectors were requested — the paper's query-count metric)
    query_count: int = 0
    #: round-trips to the query endpoint; the batched engine collapses each
    #: CMA-ES generation into one call, so this is ~lambda x smaller than the
    #: sequential path at identical ``query_count``
    query_calls: int = 0


def _shadow_pool_fingerprint(pool: Sequence[ShadowModel]) -> str:
    """Content digest of a shadow pool (weights + labels), for prompt-stage keys."""
    digest = hashlib.sha256()
    for shadow in pool:
        digest.update(b"1" if shadow.is_backdoored else b"0")
        digest.update(state_fingerprint(shadow.classifier.state_dict()).encode("utf-8"))
    return digest.hexdigest()[:20]


def _inspect_task(
    detector: "BpromDetector",
    target_eval: Optional[ImageDataset],
    item: Tuple[ImageClassifier, Optional[QueryFunction], Optional[str]],
) -> DetectionResult:
    """Module-level task wrapper so process-backend executors can pickle it."""
    suspicious, query_function, seed_key = item
    return detector.inspect(
        suspicious,
        query_function=query_function,
        target_eval=target_eval,
        seed_key=seed_key,
    )


class BpromDetector:
    """Black-box model-level backdoor detector based on visual prompting.

    Typical usage::

        detector = BpromDetector(profile=FAST, seed=0)
        detector.fit(reserved_clean, target_train, target_test)
        result = detector.inspect(suspicious_classifier)
        if result.is_backdoored:
            ...

    ``fit`` implements the three training steps of Algorithm 1 (shadow-model
    generation, prompting and meta-model training); ``inspect`` prompts the
    suspicious model with a gradient-free optimiser and feeds its query
    confidence vectors to the meta-classifier.  ``runtime`` controls worker
    fan-out and persistent caching of the expensive stages.
    """

    def __init__(
        self,
        profile: Optional[ExperimentProfile] = None,
        architecture: str = "resnet18",
        shadow_attack: str = "badnets",
        threshold: float = 0.5,
        meta_classifier_kind: str = "random_forest",
        meta_augmentation: int = 8,
        seed: SeedLike = 0,
        runtime: Optional[RuntimeConfig] = None,
    ) -> None:
        self.profile = profile or FAST
        self.architecture = architecture
        self.shadow_attack = shadow_attack
        self.threshold = float(threshold)
        self.seed = normalize_seed(seed)
        self.runtime = runtime or DEFAULT_RUNTIME
        self.meta_classifier_kind = meta_classifier_kind
        self.meta_augmentation = int(meta_augmentation)
        self.meta_classifier = MetaClassifier(
            query_samples=self.profile.query_samples,
            num_trees=self.profile.meta_trees,
            augmentation=meta_augmentation,
            classifier_kind=meta_classifier_kind,
            rng=derive_seed(self.seed, "meta"),
        )
        self.shadow_models: List[ShadowModel] = []
        self.prompted_shadows: List[PromptedClassifier] = []
        #: per-stage execution records of the last :meth:`fit` (empty on a
        #: freshly constructed or loaded detector; the registry reads these
        #: to report what a ``get_or_fit`` actually rebuilt vs. reused)
        self.stage_reports: List["StageReport"] = []
        self._target_train: Optional[ImageDataset] = None
        self._fitted = False
        self._store = ArtifactStore.from_config(self.runtime)
        self._executor = ParallelExecutor.from_config(self.runtime)

    @property
    def executor(self) -> ParallelExecutor:
        """The detector's parallel executor (shared by the audit services)."""
        return self._executor

    # -- training -----------------------------------------------------------------
    def _base_key(self, reserved_clean: Optional[ImageDataset]) -> dict:
        key = {
            "profile": profile_to_dict(self.profile),
            "architecture": self.architecture,
            "shadow_attack": self.shadow_attack,
            "seed": self.seed,
            "reserved": dataset_fingerprint(reserved_clean) if reserved_clean is not None else None,
        }
        # the key entry appears only for the non-default tier, so every
        # float64 artifact cached before the precision split keeps its hash
        # (warm caches stay warm) while float32 runs can never collide with it
        if self.runtime.precision != "float64":
            key["precision"] = self.runtime.precision
        return key

    def fit(
        self,
        reserved_clean: ImageDataset,
        target_train: ImageDataset,
        target_test: ImageDataset,
        shadow_models: Optional[Sequence[ShadowModel]] = None,
    ) -> "BpromDetector":
        """Train shadow models, prompt them and fit the meta-classifier.

        Parameters
        ----------
        reserved_clean:
            The defender's reserved clean dataset ``D_S`` (a small fraction of
            the suspicious task's test set).
        target_train, target_test:
            The external clean dataset ``D_T`` split into prompt-training and
            query/evaluation parts.
        shadow_models:
            Pre-trained shadow models to reuse (skips shadow training); mainly
            used by the evaluation harness to share shadow pools across
            experiments.
        """
        self._target_train = target_train
        base_key = self._base_key(reserved_clean)

        def build_shadows(_results) -> List[ShadowModel]:
            if shadow_models is not None:
                return list(shadow_models)
            factory = ShadowModelFactory(
                profile=self.profile,
                architecture=self.architecture,
                shadow_attack=self.shadow_attack,
                seed=derive_seed(self.seed, "shadows"),
                training_mode=self.runtime.shadow_training,
                precision=self.runtime.precision,
            )
            return factory.build_pool(reserved_clean, executor=self._executor)

        def build_prompts(results) -> List[PromptedClassifier]:
            return prompt_shadow_models(
                results["shadow"],
                target_train,
                profile=self.profile,
                seed=derive_seed(self.seed, "prompting"),
                executor=self._executor,
            )

        def build_meta(results) -> MetaClassifier:
            self.meta_classifier.set_query_pool(target_test)
            labels = [int(shadow.is_backdoored) for shadow in results["shadow"]]
            self.meta_classifier.fit(results["prompt"], labels)
            return self.meta_classifier

        # the shadow stage is only addressable when this detector trains the
        # pool itself; externally supplied pools are keyed by content instead
        # (their fingerprint feeds the prompt-stage key below)
        shadow_stage = Stage(
            "shadow",
            build=build_shadows,
            kind="shadow-pool" if shadow_models is None else None,
            key={**base_key, "stage": "shadow"} if shadow_models is None else None,
            save=lambda artifact, pool: ser.save_shadow_pool(artifact, pool),
            load=lambda artifact, _results: ser.load_shadow_pool(artifact),
        )
        pipeline = StagedPipeline([shadow_stage], store=self._store)
        results = pipeline.run()
        pool = results["shadow"]
        if not pool:
            raise ValueError("cannot fit BPROM with an empty shadow-model pool")

        prompt_key = {
            **base_key,
            "stage": "prompt",
            "target_train": dataset_fingerprint(target_train),
            "shadow_pool": _shadow_pool_fingerprint(pool),
        }
        prompt_stage = Stage(
            "prompt",
            build=lambda r: build_prompts({"shadow": pool}),
            kind="prompted-shadows",
            key=prompt_key,
            save=lambda artifact, prompted: ser.save_prompted_pool(artifact, prompted),
            load=lambda artifact, _results: ser.load_prompted_pool(
                artifact, [shadow.classifier for shadow in pool]
            ),
        )
        meta_stage = Stage(
            "meta",
            build=lambda r: build_meta({"shadow": pool, "prompt": r["prompt"]}),
        )
        tail = StagedPipeline([prompt_stage, meta_stage], store=self._store)
        tail_results = tail.run()
        pipeline.reports.extend(tail.reports)
        self.stage_reports = pipeline.reports

        self.shadow_models = pool
        self.prompted_shadows = tail_results["prompt"]
        self._fitted = True
        return self

    # -- persistence ----------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Persist the fitted detector (meta-classifier, prompts, query pool).

        The saved artifact contains everything needed to serve
        :meth:`inspect` after :meth:`load` — the fitted meta-classifier with
        its query pool and query subsets, the prompt-training dataset
        ``D_T`` and the detector configuration — plus the learned shadow
        prompts for analysis.  The shadow classifiers themselves are not
        stored (they are training-time artefacts, cached separately by the
        artifact store).
        """
        if not self._fitted:
            raise RuntimeError("only a fitted detector can be saved")
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        artifact = Artifact(directory)
        artifact.save_json(
            "detector",
            {
                "format_version": DETECTOR_FORMAT_VERSION,
                "profile": profile_to_dict(self.profile),
                "architecture": self.architecture,
                "shadow_attack": self.shadow_attack,
                "threshold": self.threshold,
                "meta_classifier_kind": self.meta_classifier_kind,
                "meta_augmentation": self.meta_augmentation,
                "seed": self.seed,
                "precision": self.runtime.precision,
                "shadow_labels": [int(s.is_backdoored) for s in self.shadow_models],
            },
        )
        ser.save_meta_classifier(artifact, self.meta_classifier)
        ser.save_dataset(artifact, self._target_train, name="target_train")
        if self.prompted_shadows:
            ser.save_prompted_pool(artifact, self.prompted_shadows)
        return directory

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        runtime: Optional[RuntimeConfig] = None,
        shadow_models: Optional[Sequence[ShadowModel]] = None,
    ) -> "BpromDetector":
        """Restore a detector saved by :meth:`save`; scores are bit-identical.

        The restored detector serves :meth:`inspect` / :meth:`inspect_many`
        immediately.  Shadow classifiers are not part of the artifact; pass
        ``shadow_models`` (e.g. a pool reloaded from the artifact store) to
        reattach them — the saved prompts are then rebound to their source
        classifiers, restoring ``prompted_shadows`` as well.  Without it,
        both lists are empty and :meth:`fit` would retrain from scratch.
        """
        artifact = Artifact(Path(path))
        meta = artifact.load_json("detector")
        if meta["format_version"] != DETECTOR_FORMAT_VERSION:
            raise ValueError(
                f"saved detector has format {meta['format_version']}, "
                f"expected {DETECTOR_FORMAT_VERSION}"
            )
        # pre-precision-split artifacts carry no "precision" entry: float64
        saved_precision = meta.get("precision", "float64")
        if runtime is None:
            runtime = DEFAULT_RUNTIME.with_overrides(precision=saved_precision)
        elif runtime.precision != saved_precision:
            runtime = runtime.with_overrides(precision=saved_precision)
        detector = cls(
            profile=profile_from_dict(meta["profile"]),
            architecture=meta["architecture"],
            shadow_attack=meta["shadow_attack"],
            threshold=meta["threshold"],
            meta_classifier_kind=meta["meta_classifier_kind"],
            meta_augmentation=meta["meta_augmentation"],
            seed=meta["seed"],
            runtime=runtime,
        )
        detector.meta_classifier = ser.load_meta_classifier(artifact)
        detector._target_train = ser.load_dataset(artifact, name="target_train")
        if shadow_models is not None:
            detector.shadow_models = list(shadow_models)
            if artifact.has("prompts"):
                detector.prompted_shadows = ser.load_prompted_pool(
                    artifact, [shadow.classifier for shadow in detector.shadow_models]
                )
        detector._fitted = True
        return detector

    # -- inspection -----------------------------------------------------------------
    def prompt_suspicious(
        self,
        suspicious: ImageClassifier,
        query_function: Optional[QueryFunction] = None,
        seed_key: Optional[str] = None,
        query_counter: Optional[QueryCounter] = None,
    ) -> PromptedClassifier:
        """Black-box prompt the suspicious model on ``D_T`` (no gradients used).

        ``seed_key`` is the stable identity the prompting seed derives from.
        It defaults to the model's name; batch audits pass the catalogue key
        instead, so two catalogue entries that happen to share a ``.name``
        still get independent prompting seeds.
        """
        if self._target_train is None:
            raise RuntimeError("fit must be called before inspecting models")
        seed_key = suspicious.name if seed_key is None else seed_key
        return prompt_suspicious_model(
            suspicious,
            self._target_train,
            profile=self.profile,
            seed=derive_seed(self.seed, "suspicious", seed_key),
            query_function=query_function,
            query_counter=query_counter,
        )

    def inspect(
        self,
        suspicious: ImageClassifier,
        query_function: Optional[QueryFunction] = None,
        target_eval: Optional[ImageDataset] = None,
        seed_key: Optional[str] = None,
    ) -> DetectionResult:
        """Decide whether ``suspicious`` carries a backdoor."""
        if not self._fitted:
            raise RuntimeError("fit must be called before inspecting models")
        tracer = get_tracer()
        counter = QueryCounter()
        with tracer.span("inspect.prompt") as span:
            prompted = self.prompt_suspicious(
                suspicious,
                query_function=query_function,
                seed_key=seed_key,
                query_counter=counter,
            )
            span.set(queries=counter.images, calls=counter.calls)
        eval_set = target_eval if target_eval is not None else self.meta_classifier.query_pool
        with tracer.span("inspect.score"):
            if target_eval is None and self.meta_classifier.query_pool is not None:
                # the meta-features and the prompted-accuracy signal both read
                # the prompted model over the same query pool — one batched
                # query serves both (identical numbers to the two-pass path)
                probabilities = prompted.predict_source_proba(
                    self.meta_classifier.query_pool.images
                )
                score = self.meta_classifier.score_from_source_proba(probabilities)
                predictions = np.argmax(
                    prompted.mapping.map_probabilities(probabilities), axis=1
                )
                prompted_accuracy = float(np.mean(predictions == eval_set.labels))
            else:
                score = self.meta_classifier.backdoor_score(prompted)
                prompted_accuracy = (
                    prompted.evaluate(eval_set) if eval_set is not None else float("nan")
                )
        return DetectionResult(
            backdoor_score=score,
            is_backdoored=score >= self.threshold,
            prompted_accuracy=prompted_accuracy,
            prompted_model=prompted,
            query_count=counter.images,
            query_calls=counter.calls,
        )

    def inspect_many(
        self,
        suspicious_models: Sequence[ImageClassifier],
        query_functions: Optional[Sequence[Optional[QueryFunction]]] = None,
        target_eval: Optional[ImageDataset] = None,
        executor: Optional[ParallelExecutor] = None,
        keys: Optional[Sequence[Optional[str]]] = None,
    ) -> List[DetectionResult]:
        """Inspect a fleet of suspicious models, prompting them concurrently.

        Every model's black-box prompting seed is derived from its ``keys``
        entry (the catalogue key in a batch audit), falling back to the model
        name, so the results are identical to calling :meth:`inspect`
        sequentially with the same keys — the fan-out only changes wall-clock
        time.
        """
        if not self._fitted:
            raise RuntimeError("fit must be called before inspecting models")
        if query_functions is not None and len(query_functions) != len(suspicious_models):
            raise ValueError("query_functions and suspicious_models disagree on length")
        if keys is not None and len(keys) != len(suspicious_models):
            raise ValueError("keys and suspicious_models disagree on length")
        if query_functions is None:
            query_functions = [None] * len(suspicious_models)
        if keys is None:
            keys = [None] * len(suspicious_models)
        executor = executor if executor is not None else self._executor
        items = list(zip(suspicious_models, query_functions, keys))
        return executor.map(partial(_inspect_task, self, target_eval), items)

    def score_models(
        self,
        suspicious_models: Sequence[ImageClassifier],
        executor: Optional[ParallelExecutor] = None,
    ) -> np.ndarray:
        """Backdoor scores for a batch of suspicious models (used for AUROC)."""
        results = self.inspect_many(suspicious_models, executor=executor)
        return np.array([result.backdoor_score for result in results])
