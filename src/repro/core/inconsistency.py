"""Class-subspace-inconsistency measurements (Figures 2, 3 and 5; Table 2).

The paper's central observation is geometric: in a backdoor-infected model the
target-class subspace borders every other class subspace (Wang et al., 2019),
so adapting the model to a clean target task by visual prompting cannot align
the class subspaces, and the prompted model's accuracy collapses.  This module
quantifies that geometry:

* :func:`subspace_inconsistency_score` — how much the target-class feature
  cluster overlaps the other clusters (higher = more inconsistent).
* :func:`class_subspace_projection` — 2-D PCA projections of per-class
  features for the Figure 3 style scatter plots.
* :func:`prompted_accuracy_gap` — the accuracy drop between a clean and a
  backdoored prompted model (the signal Tables 2-4 tabulate).
* :func:`meta_feature_projection` — PCA of meta-feature vectors of many models
  (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.datasets.base import ImageDataset
from repro.ml.pca import PCA
from repro.models.classifier import ImageClassifier
from repro.prompting.prompted import PromptedClassifier


@dataclass
class SubspaceReport:
    """Per-class feature-space geometry of one classifier on one dataset."""

    centroids: np.ndarray  # (K, D)
    within_class_spread: np.ndarray  # (K,)
    between_class_distance: np.ndarray  # (K, K)
    inconsistency_per_class: np.ndarray  # (K,)

    @property
    def mean_inconsistency(self) -> float:
        return float(np.mean(self.inconsistency_per_class))


def _per_class_features(
    classifier: ImageClassifier, dataset: ImageDataset
) -> Dict[int, np.ndarray]:
    features = classifier.features(dataset.images)
    return {
        cls: features[dataset.labels == cls]
        for cls in range(dataset.num_classes)
        if np.any(dataset.labels == cls)
    }


def subspace_report(classifier: ImageClassifier, dataset: ImageDataset) -> SubspaceReport:
    """Compute centroid distances and overlap scores for every class subspace."""
    per_class = _per_class_features(classifier, dataset)
    classes = sorted(per_class)
    centroids = np.stack([per_class[c].mean(axis=0) for c in classes])
    spreads = np.array(
        [float(np.mean(np.linalg.norm(per_class[c] - centroids[i], axis=1)))
         for i, c in enumerate(classes)]
    )
    k = len(classes)
    distances = np.zeros((k, k))
    for i in range(k):
        for j in range(k):
            distances[i, j] = float(np.linalg.norm(centroids[i] - centroids[j]))
    # inconsistency: ratio of within-class spread to the distance to the nearest
    # other centroid — large when a class crowds its neighbours (backdoor target)
    inconsistency = np.zeros(k)
    for i in range(k):
        others = np.delete(distances[i], i)
        nearest = float(np.min(others)) if others.size else 1.0
        inconsistency[i] = spreads[i] / max(nearest, 1e-9)
    return SubspaceReport(centroids, spreads, distances, inconsistency)


def subspace_inconsistency_score(
    classifier: ImageClassifier,
    dataset: ImageDataset,
    target_class: Optional[int] = None,
) -> float:
    """Scalar inconsistency score (optionally focused on the attack's target class)."""
    report = subspace_report(classifier, dataset)
    if target_class is None:
        return report.mean_inconsistency
    if not 0 <= target_class < report.inconsistency_per_class.size:
        raise ValueError(f"target_class {target_class} out of range")
    return float(report.inconsistency_per_class[target_class])


def class_subspace_projection(
    classifier: ImageClassifier, dataset: ImageDataset, components: int = 2
) -> Dict[str, np.ndarray]:
    """2-D PCA projection of penultimate features, for Figure 3 style plots."""
    features = classifier.features(dataset.images)
    projection = PCA(n_components=components).fit_transform(features)
    return {"projection": projection, "labels": dataset.labels.copy()}


def prompted_accuracy_gap(
    clean_prompted: PromptedClassifier,
    infected_prompted: PromptedClassifier,
    target_test: ImageDataset,
) -> Dict[str, float]:
    """Accuracy of both prompted models and their gap (clean minus infected)."""
    clean_accuracy = clean_prompted.evaluate(target_test)
    infected_accuracy = infected_prompted.evaluate(target_test)
    return {
        "clean_prompted_accuracy": clean_accuracy,
        "infected_prompted_accuracy": infected_accuracy,
        "gap": clean_accuracy - infected_accuracy,
    }


def meta_feature_projection(
    prompted_models: Sequence[PromptedClassifier],
    labels: Sequence[int],
    query_images: np.ndarray,
    components: int = 2,
) -> Dict[str, np.ndarray]:
    """PCA of concatenated query confidence vectors across models (Figure 5)."""
    if len(prompted_models) != len(labels):
        raise ValueError("prompted_models and labels disagree on length")
    features = np.stack(
        [prompted.query_feature_vector(query_images) for prompted in prompted_models]
    )
    projection = PCA(n_components=components).fit_transform(features)
    return {"projection": projection, "labels": np.asarray(labels, dtype=np.int64)}
