"""Meta-model training (Algorithm 1, lines 13-26).

The meta-feature of a (prompted) model is the concatenation of its confidence
vectors over the query set ``D_Q``.  With only a handful of shadow models the
meta-training set would be tiny, so — as an explicitly documented departure
from the paper made necessary by the scaled-down substrate — each shadow model
contributes several feature vectors built from different random query subsets
(``augmentation`` below).  At detection time the suspicious model's score is
averaged over the same number of query subsets, which also makes the decision
less sensitive to any single query sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.datasets.base import ImageDataset
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegression
from repro.nn.stacked import UnstackableModelError
from repro.prompting.prompted import PromptedClassifier, predict_source_proba_many
from repro.utils.rng import SeedLike, new_rng


@dataclass
class MetaDataset:
    """The meta-training set ``D_meta``: one row per (shadow model, query subset)."""

    features: np.ndarray
    labels: np.ndarray  # 1 = backdoored, 0 = clean
    query_indices: np.ndarray  # (rows, q) indices into the query pool


class MetaClassifier:
    """Binary classifier over concatenated prompted confidence vectors."""

    def __init__(
        self,
        query_samples: int = 8,
        num_trees: int = 100,
        augmentation: int = 8,
        classifier_kind: str = "random_forest",
        rng: SeedLike = None,
    ) -> None:
        if query_samples <= 0:
            raise ValueError("query_samples must be positive")
        if augmentation <= 0:
            raise ValueError("augmentation must be positive")
        self.query_samples = int(query_samples)
        self.num_trees = int(num_trees)
        self.augmentation = int(augmentation)
        self.classifier_kind = classifier_kind
        self._rng = new_rng(rng)
        self.query_pool: Optional[ImageDataset] = None
        self._query_subsets: Optional[np.ndarray] = None
        self._model = None

    # -- query handling ----------------------------------------------------------
    def set_query_pool(self, query_pool: ImageDataset) -> None:
        """Fix the pool of candidate query images (``D_Q`` is drawn from here)."""
        if len(query_pool) < self.query_samples:
            raise ValueError(
                f"query pool has {len(query_pool)} samples but {self.query_samples} "
                "query samples were requested"
            )
        self.query_pool = query_pool
        subsets = [
            self._rng.choice(len(query_pool), size=self.query_samples, replace=False)
            for _ in range(self.augmentation)
        ]
        self._query_subsets = np.stack(subsets)

    def _require_queries(self) -> np.ndarray:
        if self.query_pool is None or self._query_subsets is None:
            raise RuntimeError("set_query_pool must be called before building features")
        return self._query_subsets

    def feature_rows(self, prompted: PromptedClassifier) -> np.ndarray:
        """All augmented feature vectors for one prompted model, shape (aug, q*K_S)."""
        probabilities = prompted.predict_source_proba(self.query_pool.images)
        return self.feature_rows_from_source_proba(probabilities)

    def feature_rows_from_source_proba(self, probabilities: np.ndarray) -> np.ndarray:
        """Feature rows from precomputed pool confidence vectors.

        Lets callers that already hold the prompted model's confidence vectors
        over the whole query pool (e.g. ``BpromDetector.inspect``, which also
        needs them for the prompted-accuracy signal) build meta-features
        without querying the model a second time.
        """
        subsets = self._require_queries()
        rows = [probabilities[subset].ravel() for subset in subsets]
        return np.stack(rows)

    # -- training ------------------------------------------------------------------
    def build_meta_dataset(
        self,
        prompted_shadows: Sequence[PromptedClassifier],
        shadow_labels: Sequence[int],
    ) -> MetaDataset:
        """Construct ``D_meta`` from the prompted shadow models."""
        if len(prompted_shadows) != len(shadow_labels):
            raise ValueError("prompted_shadows and shadow_labels disagree on length")
        subsets = self._require_queries()
        # query the whole prompted pool over D_Q in one stacked forward pass;
        # pools the stacked engine cannot lift (e.g. mixed architectures) fall
        # back to one query pass per shadow, with identical feature values
        pool_probabilities = None
        if len(prompted_shadows) > 1:
            try:
                pool_probabilities = predict_source_proba_many(
                    prompted_shadows, self.query_pool.images
                )
            except UnstackableModelError:
                pool_probabilities = None
        features: List[np.ndarray] = []
        labels: List[int] = []
        for index, (prompted, label) in enumerate(zip(prompted_shadows, shadow_labels)):
            if pool_probabilities is not None:
                rows = self.feature_rows_from_source_proba(pool_probabilities[index])
            else:
                rows = self.feature_rows(prompted)
            features.append(rows)
            labels.extend([int(label)] * rows.shape[0])
        return MetaDataset(
            features=np.concatenate(features, axis=0),
            labels=np.asarray(labels, dtype=np.int64),
            query_indices=subsets,
        )

    def fit(
        self,
        prompted_shadows: Sequence[PromptedClassifier],
        shadow_labels: Sequence[int],
    ) -> "MetaClassifier":
        """Train the meta-classifier ``f_meta`` on the prompted shadow models."""
        meta = self.build_meta_dataset(prompted_shadows, shadow_labels)
        if self.classifier_kind == "random_forest":
            self._model = RandomForestClassifier(
                n_estimators=self.num_trees, max_depth=6, rng=self._rng
            )
        elif self.classifier_kind == "logistic":
            self._model = LogisticRegression(rng=self._rng)
        else:
            raise ValueError(f"unknown classifier kind {self.classifier_kind!r}")
        self._model.fit(meta.features, meta.labels)
        return self

    # -- inference -------------------------------------------------------------------
    def backdoor_score(self, prompted: PromptedClassifier) -> float:
        """Probability-like score that the prompted model hides a backdoor."""
        rows = self.feature_rows(prompted)
        return self.score_feature_rows(rows)

    def score_from_source_proba(self, probabilities: np.ndarray) -> float:
        """:meth:`backdoor_score` from precomputed pool confidence vectors."""
        return self.score_feature_rows(self.feature_rows_from_source_proba(probabilities))

    def score_feature_rows(self, rows: np.ndarray) -> float:
        """Average meta-classifier score over a model's augmented feature rows."""
        if self._model is None:
            raise RuntimeError("meta-classifier has not been fitted")
        if isinstance(self._model, RandomForestClassifier):
            probabilities = self._model.predict_proba(rows)
            positive = probabilities[:, 1] if probabilities.shape[1] > 1 else probabilities[:, 0]
        else:
            positive = self._model.predict_proba(rows)
        return float(np.mean(positive))

    def predict(self, prompted: PromptedClassifier, threshold: float = 0.5) -> int:
        """1 if the model is predicted backdoored, 0 if clean."""
        return int(self.backdoor_score(prompted) >= threshold)

    # -- persistence ------------------------------------------------------------------
    def get_state(self):
        """``(arrays, info)`` pair fully describing a fitted meta-classifier.

        ``arrays`` is npz-friendly (query pool, query subsets and the fitted
        model's numeric state); ``info`` is JSON-friendly configuration.  The
        RNG is intentionally not captured: a restored meta-classifier serves
        scores deterministically but is not meant to be re-fitted.
        """
        if self._model is None:
            raise RuntimeError("only a fitted meta-classifier can be serialised")
        queries = self._require_queries()
        arrays = {
            "query_subsets": queries,
            "query_images": self.query_pool.images,
            "query_labels": self.query_pool.labels,
        }
        for key, value in self._model.get_state().items():
            arrays[f"model.{key}"] = value
        info = {
            "query_samples": self.query_samples,
            "num_trees": self.num_trees,
            "augmentation": self.augmentation,
            "classifier_kind": self.classifier_kind,
            "query_num_classes": self.query_pool.num_classes,
            "query_name": self.query_pool.name,
        }
        return arrays, info

    @classmethod
    def from_state(cls, info, arrays) -> "MetaClassifier":
        """Rebuild a fitted meta-classifier from :meth:`get_state` output."""
        meta = cls(
            query_samples=info["query_samples"],
            num_trees=info["num_trees"],
            augmentation=info["augmentation"],
            classifier_kind=info["classifier_kind"],
            rng=0,
        )
        meta.query_pool = ImageDataset(
            arrays["query_images"],
            arrays["query_labels"],
            num_classes=info["query_num_classes"],
            name=info["query_name"],
        )
        meta._query_subsets = np.asarray(arrays["query_subsets"], dtype=np.int64)
        model_state = {
            key.split(".", 1)[1]: value
            for key, value in arrays.items()
            if key.startswith("model.")
        }
        if info["classifier_kind"] == "random_forest":
            meta._model = RandomForestClassifier.from_state(model_state)
        else:
            meta._model = LogisticRegression.from_state(model_state)
        return meta
