"""Prompting stage of BPROM (Algorithm 1, lines 9-12)."""

from __future__ import annotations

from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.config import ExperimentProfile, FAST
from repro.core.shadow import ShadowModel
from repro.datasets.base import ImageDataset
from repro.models.classifier import ImageClassifier
from repro.prompting import (
    PromptedClassifier,
    train_prompt_blackbox,
    train_prompt_whitebox,
)
from repro.prompting.blackbox import QueryCounter, QueryFunction
from repro.utils.rng import SeedLike, derive_seed, normalize_seed


def _prompt_shadow_task(
    target_train: ImageDataset,
    profile: ExperimentProfile,
    base_seed: int,
    mapping_mode: str,
    item: Tuple[int, ShadowModel],
) -> PromptedClassifier:
    """Module-level task wrapper so process-backend executors can pickle it."""
    index, shadow = item
    return train_prompt_whitebox(
        shadow.classifier,
        target_train,
        config=profile.prompt,
        mapping_mode=mapping_mode,
        rng=derive_seed(base_seed, "prompt-shadow", index),
        name=f"prompted-{shadow.classifier.name}",
    )


def prompt_shadow_models(
    shadow_models: Sequence[ShadowModel],
    target_train: ImageDataset,
    profile: Optional[ExperimentProfile] = None,
    seed: SeedLike = 0,
    mapping_mode: str = "identity",
    executor=None,
) -> List[PromptedClassifier]:
    """Learn a visual prompt for every shadow model on ``D_T`` (white-box).

    The defender owns the shadow models, so gradients are available; this is
    the cheap part of BPROM and mirrors the paper exactly.  Every prompt's
    seed is derived from the shadow index, so running the fan-out on an
    executor yields the same prompts as the sequential loop.
    """
    profile = profile or FAST
    base_seed = normalize_seed(seed)
    task = partial(_prompt_shadow_task, target_train, profile, base_seed, mapping_mode)
    items = list(enumerate(shadow_models))
    if executor is None:
        return [task(item) for item in items]
    return executor.map(task, items)


def prompt_suspicious_model(
    suspicious: ImageClassifier,
    target_train: ImageDataset,
    profile: Optional[ExperimentProfile] = None,
    seed: SeedLike = 0,
    mapping_mode: str = "identity",
    query_function: Optional[QueryFunction] = None,
    num_source_classes: Optional[int] = None,
    query_counter: Optional[QueryCounter] = None,
) -> PromptedClassifier:
    """Learn a visual prompt for the suspicious model using black-box queries only.

    ``query_counter`` collects the run's query budget (images sent through the
    query function); the counter is also attached to the returned prompted
    classifier either way.
    """
    profile = profile or FAST
    base_seed = normalize_seed(seed)
    return train_prompt_blackbox(
        suspicious,
        target_train,
        config=profile.prompt,
        mapping_mode=mapping_mode,
        rng=derive_seed(base_seed, "prompt-suspicious", suspicious.name),
        name=f"prompted-{suspicious.name}",
        query_function=query_function,
        num_source_classes=num_source_classes,
        query_counter=query_counter,
    )
