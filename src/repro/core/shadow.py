"""Shadow-model generation (Algorithm 1, lines 1-8)."""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import BackdoorAttack
from repro.attacks.registry import attack_defaults, build_attack
from repro.config import (
    SHADOW_TRAINING_MODES,
    ExperimentProfile,
    FAST,
    resolve_precision,
)
from repro.datasets.base import ImageDataset
from repro.models.classifier import ImageClassifier
from repro.models.registry import architecture_family, build_classifier
from repro.nn.stacked import UnstackableModelError, fit_stacked
from repro.utils.rng import SeedLike, derive_seed, new_rng, normalize_seed


@dataclass
class ShadowModel:
    """A trained shadow classifier plus its ground-truth label.

    ``is_backdoored`` is ``True`` for shadow models trained on a poisoned copy
    of the reserved clean dataset, ``False`` for clean shadow models.
    """

    classifier: ImageClassifier
    is_backdoored: bool
    attack_name: Optional[str] = None
    target_class: Optional[int] = None
    clean_accuracy: float = float("nan")


@dataclass
class _PreparedShadow:
    """An initialised-but-untrained shadow: classifier, data and fit seed.

    The preparation step (seed derivation, parameter init, poisoning) is
    shared verbatim between the sequential and stacked training paths, which
    is what keeps the two pools — and therefore the artifact-store cache keys
    derived from them — interchangeable.
    """

    classifier: ImageClassifier
    dataset: ImageDataset
    fit_seed: int
    is_backdoored: bool
    attack_name: Optional[str] = None
    target_class: Optional[int] = None

    def into_shadow_model(self) -> ShadowModel:
        return ShadowModel(
            classifier=self.classifier,
            is_backdoored=self.is_backdoored,
            attack_name=self.attack_name,
            target_class=self.target_class,
            clean_accuracy=self.classifier.history.final_train_accuracy,
        )


class ShadowModelFactory:
    """Builds the defender's pool of clean and backdoored shadow models.

    Per the paper (Section 5.3), a *single* backdoor attack (BadNets by
    default) suffices to generate the backdoored shadow models, because BPROM
    relies on class-subspace inconsistency rather than on having "seen" the
    attack used against the suspicious model.  Diversity among backdoored
    shadow models comes from sampling different target classes, trigger seeds
    and parameter initialisations.

    ``training_mode`` selects how :meth:`build_pool` trains the pool:
    ``"stacked"`` lifts the K same-architecture shadows into one model-axis
    computation (:mod:`repro.nn.stacked`), ``"sequential"`` trains them one by
    one, and ``"auto"``/``None`` defers to the ``REPRO_SHADOW_TRAINING``
    environment variable and then to a measured per-family policy: stacking
    fuses Python/numpy dispatch overhead, which dominates the transformer
    zoo's many small token-space ops (1.2-4x pools), but K-fold-inflates the
    cache working set of the CNN/MLP pools, whose time is spent in
    memory-bound im2col/col2im and optimiser sweeps — those stay sequential
    unless explicitly forced.  Per-model RNG streams for initialisation,
    poisoning and shuffle order are identical in both modes, so the resulting
    pools — and the artifact-store keys derived from them — are
    interchangeable.
    """

    def __init__(
        self,
        profile: Optional[ExperimentProfile] = None,
        architecture: str = "resnet18",
        shadow_attack: str = "badnets",
        seed: SeedLike = 0,
        training_mode: Optional[str] = None,
        precision: Optional[str] = None,
    ) -> None:
        self.profile = profile or FAST
        self.architecture = architecture
        self.shadow_attack = shadow_attack
        self.seed = normalize_seed(seed)
        self.training_mode = training_mode
        #: precision tier the shadows train in ("float64" reference tier or
        #: the opt-in "float32" tier); models are always *initialised* in
        #: float64 — same RNG draws — and cast before training, so the
        #: float64 tier is bit-identical to the pre-precision-split factory
        self.precision = resolve_precision(precision)

    def _enter_precision_tier(self, classifier) -> None:
        if self.precision == "float32":
            classifier.astype(np.float32)

    def _resolve_training_mode(self) -> Tuple[str, bool]:
        """Resolved ``(mode, from_auto)`` — ``from_auto`` marks a policy pick.

        Precedence: an explicit constructor mode wins, then the
        ``REPRO_SHADOW_TRAINING`` environment variable, then the automatic
        per-family policy (stack transformer pools, train CNN/MLP pools
        sequentially — see the class docstring for the measured rationale).
        """
        mode = self.training_mode
        if mode is not None:
            mode = str(mode).lower()
        if mode is None or mode == "auto":
            mode = (os.environ.get("REPRO_SHADOW_TRAINING") or "auto").lower()
        if mode not in SHADOW_TRAINING_MODES:
            raise ValueError(
                f"unknown shadow training mode {mode!r}; "
                f"available: {SHADOW_TRAINING_MODES}"
            )
        if mode == "auto":
            family = architecture_family(self.architecture)
            return ("stacked" if family == "transformer" else "sequential"), True
        return mode, False

    def resolve_training_mode(self) -> str:
        """Collapse ``training_mode`` (and the env override) to a concrete mode."""
        return self._resolve_training_mode()[0]

    # -- spec preparation (shared by both training paths) -----------------------
    def _prepare_clean(self, reserved_clean: ImageDataset, index: int) -> _PreparedShadow:
        seed = derive_seed(self.seed, "clean-shadow", index)
        classifier = build_classifier(
            self.architecture,
            reserved_clean.num_classes,
            image_size=reserved_clean.image_size,
            rng=seed,
            name=f"shadow-clean-{index}",
        )
        self._enter_precision_tier(classifier)
        return _PreparedShadow(
            classifier=classifier,
            dataset=reserved_clean,
            fit_seed=seed + 1,
            is_backdoored=False,
        )

    def _prepare_backdoor(
        self,
        reserved_clean: ImageDataset,
        index: int,
        attack: Optional[BackdoorAttack] = None,
    ) -> _PreparedShadow:
        seed = derive_seed(self.seed, "backdoor-shadow", index)
        rng = new_rng(seed)
        if attack is None:
            target_class = int(rng.integers(0, reserved_clean.num_classes))
            attack = build_attack(
                self.shadow_attack, target_class=target_class, seed=seed
            )
        defaults = attack_defaults(attack.name)
        result = attack.poison(
            reserved_clean,
            poison_rate=defaults.poison_rate,
            cover_rate=defaults.cover_rate,
            rng=rng,
        )
        classifier = build_classifier(
            self.architecture,
            reserved_clean.num_classes,
            image_size=reserved_clean.image_size,
            rng=seed + 17,
            name=f"shadow-backdoor-{index}",
        )
        self._enter_precision_tier(classifier)
        return _PreparedShadow(
            classifier=classifier,
            dataset=result.dataset,
            fit_seed=seed + 23,
            is_backdoored=True,
            attack_name=attack.name,
            target_class=attack.target_class,
        )

    def _prepare(
        self,
        reserved_clean: ImageDataset,
        spec: Tuple[str, int, Optional[BackdoorAttack]],
    ) -> _PreparedShadow:
        kind, index, attack = spec
        if kind == "clean":
            return self._prepare_clean(reserved_clean, index)
        return self._prepare_backdoor(reserved_clean, index, attack=attack)

    # -- individual builders ---------------------------------------------------
    def train_clean_shadow(
        self, reserved_clean: ImageDataset, index: int
    ) -> ShadowModel:
        """Train one clean shadow model with its own parameter initialisation."""
        prepared = self._prepare_clean(reserved_clean, index)
        prepared.classifier.fit(
            prepared.dataset, self.profile.classifier, rng=prepared.fit_seed
        )
        return prepared.into_shadow_model()

    def train_backdoor_shadow(
        self,
        reserved_clean: ImageDataset,
        index: int,
        attack: Optional[BackdoorAttack] = None,
    ) -> ShadowModel:
        """Train one backdoored shadow model on a freshly poisoned copy of ``D_S``."""
        prepared = self._prepare_backdoor(reserved_clean, index, attack=attack)
        prepared.classifier.fit(
            prepared.dataset, self.profile.classifier, rng=prepared.fit_seed
        )
        return prepared.into_shadow_model()

    # -- the full pool -----------------------------------------------------------
    def build_pool(
        self,
        reserved_clean: ImageDataset,
        num_clean: Optional[int] = None,
        num_backdoor: Optional[int] = None,
        attacks: Optional[Sequence[BackdoorAttack]] = None,
        executor=None,
    ) -> List[ShadowModel]:
        """Train the full pool of shadow models (clean ones first).

        Each shadow model's seed is derived from its (kind, index) identity,
        so fanning the pool out over a :class:`repro.runtime.ParallelExecutor`
        produces exactly the same pool as the sequential loop.  An explicit
        ``"stacked"`` mode trains the whole pool as one model-axis
        computation instead (the executor is bypassed — there is only one
        task); under ``"auto"`` a genuinely parallel executor takes
        precedence over stacking, since multi-worker fan-out parallelises
        every pool while the single-process stacked engine only fuses
        dispatch overhead.  Pools the stacked engine cannot lift fall back to
        per-model training (on the executor when one is supplied).
        """
        num_clean = num_clean if num_clean is not None else self.profile.clean_shadow_models
        num_backdoor = (
            num_backdoor if num_backdoor is not None else self.profile.backdoor_shadow_models
        )
        specs: List[Tuple[str, int, Optional[BackdoorAttack]]] = [
            ("clean", index, None) for index in range(num_clean)
        ]
        for index in range(num_backdoor):
            attack = None
            if attacks is not None and len(attacks) > 0:
                attack = attacks[index % len(attacks)]
            specs.append(("backdoor", index, attack))
        mode, from_auto = self._resolve_training_mode()
        parallel_executor = executor is not None and getattr(executor, "parallel", False)
        use_stacked = mode == "stacked" and len(specs) >= 2
        if use_stacked and from_auto and parallel_executor:
            use_stacked = False
        if use_stacked:
            return self._build_pool_stacked(reserved_clean, specs, executor=executor)
        if executor is None:
            return [self._train_one(reserved_clean, spec) for spec in specs]
        return executor.map(partial(_train_shadow_task, self, reserved_clean), specs)

    def _build_pool_stacked(
        self,
        reserved_clean: ImageDataset,
        specs: Sequence[Tuple[str, int, Optional[BackdoorAttack]]],
        executor=None,
    ) -> List[ShadowModel]:
        """Train all shadows simultaneously along a model axis.

        Preparation (init seeds, poisoning) is byte-identical to the
        sequential path; only the training loop is fused.  Pools the stacked
        engine cannot lift (heterogeneous or unsupported layers) train the
        already-prepared shadows per model instead — fanned out over
        ``executor`` when one is supplied — preserving the exact sequential
        result.
        """
        prepared = [self._prepare(reserved_clean, spec) for spec in specs]
        try:
            fit_stacked(
                [p.classifier for p in prepared],
                [p.dataset for p in prepared],
                self.profile.classifier,
                rngs=[p.fit_seed for p in prepared],
            )
        except UnstackableModelError:
            task = partial(_fit_prepared_task, self.profile.classifier)
            if executor is None:
                prepared = [task(p) for p in prepared]
            else:
                prepared = executor.map(task, prepared)
        return [p.into_shadow_model() for p in prepared]

    def _train_one(
        self,
        reserved_clean: ImageDataset,
        spec: Tuple[str, int, Optional[BackdoorAttack]],
    ) -> ShadowModel:
        kind, index, attack = spec
        if kind == "clean":
            return self.train_clean_shadow(reserved_clean, index)
        return self.train_backdoor_shadow(reserved_clean, index, attack=attack)


def _train_shadow_task(
    factory: ShadowModelFactory,
    reserved_clean: ImageDataset,
    spec: Tuple[str, int, Optional[BackdoorAttack]],
) -> ShadowModel:
    """Module-level task wrapper so process-backend executors can pickle it."""
    return factory._train_one(reserved_clean, spec)


def _fit_prepared_task(config, prepared: _PreparedShadow) -> _PreparedShadow:
    """Train one already-prepared shadow (module-level for process executors)."""
    prepared.classifier.fit(prepared.dataset, config, rng=prepared.fit_seed)
    return prepared
