"""Shadow-model generation (Algorithm 1, lines 1-8)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.attacks.base import BackdoorAttack
from repro.attacks.registry import attack_defaults, build_attack
from repro.config import ExperimentProfile, FAST
from repro.datasets.base import ImageDataset
from repro.models.classifier import ImageClassifier
from repro.models.registry import build_classifier
from repro.utils.rng import SeedLike, derive_seed, new_rng, normalize_seed


@dataclass
class ShadowModel:
    """A trained shadow classifier plus its ground-truth label.

    ``is_backdoored`` is ``True`` for shadow models trained on a poisoned copy
    of the reserved clean dataset, ``False`` for clean shadow models.
    """

    classifier: ImageClassifier
    is_backdoored: bool
    attack_name: Optional[str] = None
    target_class: Optional[int] = None
    clean_accuracy: float = float("nan")


class ShadowModelFactory:
    """Builds the defender's pool of clean and backdoored shadow models.

    Per the paper (Section 5.3), a *single* backdoor attack (BadNets by
    default) suffices to generate the backdoored shadow models, because BPROM
    relies on class-subspace inconsistency rather than on having "seen" the
    attack used against the suspicious model.  Diversity among backdoored
    shadow models comes from sampling different target classes, trigger seeds
    and parameter initialisations.
    """

    def __init__(
        self,
        profile: Optional[ExperimentProfile] = None,
        architecture: str = "resnet18",
        shadow_attack: str = "badnets",
        seed: SeedLike = 0,
    ) -> None:
        self.profile = profile or FAST
        self.architecture = architecture
        self.shadow_attack = shadow_attack
        self.seed = normalize_seed(seed)

    # -- individual builders ---------------------------------------------------
    def train_clean_shadow(
        self, reserved_clean: ImageDataset, index: int
    ) -> ShadowModel:
        """Train one clean shadow model with its own parameter initialisation."""
        seed = derive_seed(self.seed, "clean-shadow", index)
        classifier = build_classifier(
            self.architecture,
            reserved_clean.num_classes,
            image_size=reserved_clean.image_size,
            rng=seed,
            name=f"shadow-clean-{index}",
        )
        classifier.fit(reserved_clean, self.profile.classifier, rng=seed + 1)
        return ShadowModel(
            classifier=classifier,
            is_backdoored=False,
            clean_accuracy=classifier.history.final_train_accuracy,
        )

    def train_backdoor_shadow(
        self,
        reserved_clean: ImageDataset,
        index: int,
        attack: Optional[BackdoorAttack] = None,
    ) -> ShadowModel:
        """Train one backdoored shadow model on a freshly poisoned copy of ``D_S``."""
        seed = derive_seed(self.seed, "backdoor-shadow", index)
        rng = new_rng(seed)
        if attack is None:
            target_class = int(rng.integers(0, reserved_clean.num_classes))
            attack = build_attack(
                self.shadow_attack, target_class=target_class, seed=seed
            )
        defaults = attack_defaults(attack.name)
        result = attack.poison(
            reserved_clean,
            poison_rate=defaults.poison_rate,
            cover_rate=defaults.cover_rate,
            rng=rng,
        )
        classifier = build_classifier(
            self.architecture,
            reserved_clean.num_classes,
            image_size=reserved_clean.image_size,
            rng=seed + 17,
            name=f"shadow-backdoor-{index}",
        )
        classifier.fit(result.dataset, self.profile.classifier, rng=seed + 23)
        return ShadowModel(
            classifier=classifier,
            is_backdoored=True,
            attack_name=attack.name,
            target_class=attack.target_class,
            clean_accuracy=classifier.history.final_train_accuracy,
        )

    # -- the full pool -----------------------------------------------------------
    def build_pool(
        self,
        reserved_clean: ImageDataset,
        num_clean: Optional[int] = None,
        num_backdoor: Optional[int] = None,
        attacks: Optional[Sequence[BackdoorAttack]] = None,
        executor=None,
    ) -> List[ShadowModel]:
        """Train the full pool of shadow models (clean ones first).

        Each shadow model's seed is derived from its (kind, index) identity,
        so fanning the pool out over a :class:`repro.runtime.ParallelExecutor`
        produces exactly the same pool as the sequential loop.
        """
        num_clean = num_clean if num_clean is not None else self.profile.clean_shadow_models
        num_backdoor = (
            num_backdoor if num_backdoor is not None else self.profile.backdoor_shadow_models
        )
        specs: List[Tuple[str, int, Optional[BackdoorAttack]]] = [
            ("clean", index, None) for index in range(num_clean)
        ]
        for index in range(num_backdoor):
            attack = None
            if attacks is not None and len(attacks) > 0:
                attack = attacks[index % len(attacks)]
            specs.append(("backdoor", index, attack))
        if executor is None:
            return [self._train_one(reserved_clean, spec) for spec in specs]
        return executor.map(partial(_train_shadow_task, self, reserved_clean), specs)

    def _train_one(
        self,
        reserved_clean: ImageDataset,
        spec: Tuple[str, int, Optional[BackdoorAttack]],
    ) -> ShadowModel:
        kind, index, attack = spec
        if kind == "clean":
            return self.train_clean_shadow(reserved_clean, index)
        return self.train_backdoor_shadow(reserved_clean, index, attack=attack)


def _train_shadow_task(
    factory: ShadowModelFactory,
    reserved_clean: ImageDataset,
    spec: Tuple[str, int, Optional[BackdoorAttack]],
) -> ShadowModel:
    """Module-level task wrapper so process-backend executors can pickle it."""
    return factory._train_one(reserved_clean, spec)
