"""Dataset substrate: containers, synthetic generators and the named registry."""

from repro.datasets.base import DataSplit, ImageDataset
from repro.datasets.registry import (
    DATASET_SPECS,
    DatasetSpec,
    available_datasets,
    load_dataset,
)
from repro.datasets.synthetic import SyntheticImageDistribution
from repro.datasets.transforms import (
    normalize,
    random_horizontal_flip,
    resize_batch,
    to_grayscale,
)

__all__ = [
    "ImageDataset",
    "DataSplit",
    "SyntheticImageDistribution",
    "DatasetSpec",
    "DATASET_SPECS",
    "available_datasets",
    "load_dataset",
    "resize_batch",
    "normalize",
    "random_horizontal_flip",
    "to_grayscale",
]
