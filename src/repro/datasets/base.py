"""Dataset containers used throughout the library.

Images are stored as float arrays in ``[0, 1]`` with NCHW layout; labels are
integer class indices.  The container is deliberately simple: it is a value
object with convenience methods for splitting, subsampling and batching, which
is all the attacks, trainers and defenses need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_fraction, check_image_batch, check_labels


class ImageDataset:
    """An in-memory labelled image dataset.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)`` with values in ``[0, 1]``.
    labels:
        Integer array of shape ``(N,)``.
    num_classes:
        Total number of classes; inferred from the labels when omitted.
    name:
        Human-readable dataset name (e.g. ``"cifar10"``); used in reports.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        num_classes: Optional[int] = None,
        name: str = "dataset",
    ) -> None:
        images = check_image_batch(images, "images")
        labels = check_labels(labels, name="labels")
        if images.shape[0] != labels.shape[0]:
            raise ValueError(
                f"images ({images.shape[0]}) and labels ({labels.shape[0]}) disagree on size"
            )
        self.images = np.clip(images.astype(np.float64), 0.0, 1.0)
        self.labels = labels
        inferred = int(labels.max()) + 1 if labels.size else 0
        self.num_classes = int(num_classes) if num_classes is not None else inferred
        if labels.size and int(labels.max()) >= self.num_classes:
            raise ValueError(
                f"labels exceed num_classes={self.num_classes}: max label {labels.max()}"
            )
        self.name = name

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return int(self.images.shape[0])

    def __getitem__(self, index) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    @property
    def image_size(self) -> int:
        return int(self.images.shape[2])

    def class_counts(self) -> np.ndarray:
        """Number of samples per class (length ``num_classes``)."""
        return np.bincount(self.labels, minlength=self.num_classes)

    # -- constructors ------------------------------------------------------
    def copy(self) -> "ImageDataset":
        return ImageDataset(
            self.images.copy(), self.labels.copy(), self.num_classes, self.name
        )

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "ImageDataset":
        indices = np.asarray(indices, dtype=np.int64)
        return ImageDataset(
            self.images[indices],
            self.labels[indices],
            self.num_classes,
            name or self.name,
        )

    def with_labels(self, labels: np.ndarray) -> "ImageDataset":
        """Same images, new labels (used by poisoning code)."""
        return ImageDataset(self.images, labels, self.num_classes, self.name)

    @staticmethod
    def concatenate(datasets: Sequence["ImageDataset"], name: Optional[str] = None) -> "ImageDataset":
        if not datasets:
            raise ValueError("cannot concatenate an empty list of datasets")
        num_classes = max(d.num_classes for d in datasets)
        images = np.concatenate([d.images for d in datasets], axis=0)
        labels = np.concatenate([d.labels for d in datasets], axis=0)
        return ImageDataset(images, labels, num_classes, name or datasets[0].name)

    # -- sampling ----------------------------------------------------------
    def shuffled(self, rng: SeedLike = None) -> "ImageDataset":
        rng = new_rng(rng)
        order = rng.permutation(len(self))
        return self.subset(order)

    def sample(self, count: int, rng: SeedLike = None, replace: bool = False) -> "ImageDataset":
        """Uniformly sample ``count`` items (without replacement by default)."""
        rng = new_rng(rng)
        if not replace and count > len(self):
            raise ValueError(
                f"cannot sample {count} items without replacement from {len(self)}"
            )
        indices = rng.choice(len(self), size=count, replace=replace)
        return self.subset(indices)

    def sample_fraction(self, fraction: float, rng: SeedLike = None) -> "ImageDataset":
        """Sample a class-stratified fraction of the dataset (at least 1 per class)."""
        check_fraction(fraction, "fraction")
        rng = new_rng(rng)
        chosen = []
        for cls in range(self.num_classes):
            cls_idx = np.flatnonzero(self.labels == cls)
            if cls_idx.size == 0:
                continue
            take = max(1, int(round(cls_idx.size * fraction)))
            chosen.append(rng.choice(cls_idx, size=min(take, cls_idx.size), replace=False))
        indices = np.concatenate(chosen) if chosen else np.empty(0, dtype=np.int64)
        return self.subset(rng.permutation(indices))

    def split(self, first_fraction: float, rng: SeedLike = None) -> "DataSplit":
        """Random split into two datasets of sizes ``first_fraction`` / rest."""
        check_fraction(first_fraction, "first_fraction")
        rng = new_rng(rng)
        order = rng.permutation(len(self))
        cut = int(round(len(self) * first_fraction))
        return DataSplit(self.subset(order[:cut]), self.subset(order[cut:]))

    def per_class_indices(self) -> dict:
        """Mapping class index -> array of sample indices."""
        return {
            cls: np.flatnonzero(self.labels == cls) for cls in range(self.num_classes)
        }

    # -- batching ----------------------------------------------------------
    def batches(
        self,
        batch_size: int,
        shuffle: bool = True,
        rng: SeedLike = None,
        drop_last: bool = False,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(images, labels)`` mini-batches."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        order = np.arange(len(self))
        if shuffle:
            order = new_rng(rng).permutation(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            if drop_last and idx.size < batch_size:
                break
            yield self.images[idx], self.labels[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ImageDataset(name={self.name!r}, n={len(self)}, "
            f"classes={self.num_classes}, shape={self.image_shape})"
        )


@dataclass
class DataSplit:
    """A pair of datasets produced by :meth:`ImageDataset.split`."""

    first: ImageDataset
    second: ImageDataset

    def __iter__(self):
        return iter((self.first, self.second))
