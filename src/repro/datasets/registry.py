"""Named registry of the synthetic stand-ins for the paper's datasets.

Each entry mirrors the *role* a dataset plays in the paper:

* ``cifar10`` / ``gtsrb`` / ``cifar100`` / ``tiny_imagenet`` / ``imagenet`` —
  suspicious-task datasets ``D_S`` (different class counts and styles).
* ``stl10`` / ``svhn`` / ``mnist`` — external clean prompting datasets ``D_T``.

Class counts for the many-class datasets are capped by the experiment
profile's ``max_classes`` so that a single CPU core can train the dozens of
shadow and suspicious models required by the evaluation; the native class
counts are retained in the spec for documentation and for the ``paper``
profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import ExperimentProfile, FAST
from repro.datasets.base import ImageDataset
from repro.datasets.synthetic import SyntheticImageDistribution, SyntheticStyle
from repro.utils.rng import SeedLike, derive_seed, new_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a named dataset stand-in."""

    name: str
    native_classes: int
    style: SyntheticStyle
    #: whether the profile's ``max_classes`` cap applies (many-class datasets)
    capped: bool = False
    description: str = ""

    def effective_classes(self, profile: ExperimentProfile) -> int:
        if self.capped:
            return max(2, min(self.native_classes, profile.max_classes))
        return self.native_classes


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "cifar10": DatasetSpec(
        name="cifar10",
        native_classes=10,
        style=SyntheticStyle(style_seed=101, texture_grid=4, color_saturation=0.85),
        description="Natural-image style, 10 classes (suspicious-task dataset).",
    ),
    "gtsrb": DatasetSpec(
        name="gtsrb",
        native_classes=43,
        capped=True,
        style=SyntheticStyle(
            style_seed=202, texture_grid=3, color_saturation=1.0, contrast=0.45
        ),
        description="Traffic-sign style, many classes with strong colours.",
    ),
    "stl10": DatasetSpec(
        name="stl10",
        native_classes=10,
        style=SyntheticStyle(style_seed=303, texture_grid=5, color_saturation=0.7),
        description="Natural-image style, 10 classes (default external dataset D_T).",
    ),
    "svhn": DatasetSpec(
        name="svhn",
        native_classes=10,
        style=SyntheticStyle(
            style_seed=404, texture_grid=3, color_saturation=0.9, noise_level=0.08
        ),
        description="Digit-photo style, 10 classes (alternative external dataset D_T).",
    ),
    "mnist": DatasetSpec(
        name="mnist",
        native_classes=10,
        style=SyntheticStyle(
            style_seed=505, texture_grid=3, color_saturation=0.1, contrast=0.5,
            noise_level=0.05,
        ),
        description="Grayscale digit style, 10 classes.",
    ),
    "cifar100": DatasetSpec(
        name="cifar100",
        native_classes=100,
        capped=True,
        style=SyntheticStyle(style_seed=606, texture_grid=4, color_saturation=0.8),
        description="Natural-image style, 100 classes (class-count mismatch study).",
    ),
    "tiny_imagenet": DatasetSpec(
        name="tiny_imagenet",
        native_classes=200,
        capped=True,
        style=SyntheticStyle(
            style_seed=707, texture_grid=6, color_saturation=0.75, noise_level=0.07
        ),
        description="Many-class natural-image style (Tiny-ImageNet stand-in).",
    ),
    "imagenet": DatasetSpec(
        name="imagenet",
        native_classes=1000,
        capped=True,
        style=SyntheticStyle(
            style_seed=808, texture_grid=7, color_saturation=0.7, noise_level=0.08
        ),
        description="Many-class natural-image style (ImageNet stand-in).",
    ),
}


def available_datasets() -> Tuple[str, ...]:
    """Names accepted by :func:`load_dataset`."""
    return tuple(sorted(DATASET_SPECS))


def get_spec(name: str) -> DatasetSpec:
    try:
        return DATASET_SPECS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from exc


def build_distribution(
    name: str, profile: Optional[ExperimentProfile] = None
) -> SyntheticImageDistribution:
    """Construct the synthetic distribution behind a named dataset."""
    profile = profile or FAST
    spec = get_spec(name)
    return SyntheticImageDistribution(
        num_classes=spec.effective_classes(profile),
        image_size=profile.image_size,
        channels=profile.channels,
        style=spec.style,
        name=spec.name,
    )


def load_dataset(
    name: str,
    profile: Optional[ExperimentProfile] = None,
    seed: SeedLike = 0,
) -> Tuple[ImageDataset, ImageDataset]:
    """Return deterministic ``(train, test)`` datasets for a registry name.

    The same ``(name, profile, seed)`` triple always yields identical data, so
    experiments that share a dataset (e.g. shadow training and suspicious-model
    training) see consistent distributions.
    """
    profile = profile or FAST
    distribution = build_distribution(name, profile)
    rng = new_rng(derive_seed(seed if isinstance(seed, int) else 0, "dataset", name))
    return distribution.sample_train_test(
        train_per_class=profile.train_per_class,
        test_per_class=profile.test_per_class,
        rng=rng,
    )
