"""Procedural class-conditional image distributions.

The paper's experiments use CIFAR-10, GTSRB, STL-10, SVHN, MNIST, CIFAR-100,
Tiny-ImageNet and ImageNet.  None of these can be downloaded in this offline
environment, so each is replaced by a *synthetic class-conditional image
distribution*: every class owns a smooth random "prototype" pattern (a
low-frequency random field plus a class colour) and samples are noisy,
brightness-jittered, slightly shifted variants of the prototype.

Why this preserves the paper's behaviour
----------------------------------------
BPROM's signal is geometric: backdoor poisoning forces the target-class
subspace to border every other class subspace, which breaks the subspace
alignment that visual prompting relies on.  That phenomenon only requires (a)
datasets whose classes a small CNN can separate, and (b) a domain gap between
the suspicious-task dataset ``D_S`` and the external prompting dataset ``D_T``.
Both properties are controlled explicitly here: class separability through the
prototype/noise contrast, and domain gap through the per-dataset style seed,
texture scale and colour palette.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.base import ImageDataset
from repro.datasets.transforms import random_shift, resize_batch
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class SyntheticStyle:
    """Visual "style" of a synthetic dataset (its domain identity).

    Attributes
    ----------
    style_seed:
        Root seed for all class prototypes; two datasets with different seeds
        live in different domains.
    texture_grid:
        Resolution of the low-frequency random field; higher values give
        busier textures (ImageNet-like), lower values give flatter ones
        (MNIST-like).
    color_saturation:
        0 gives grayscale prototypes, 1 gives fully saturated class colours.
    contrast:
        Scale of the prototype pattern relative to the 0.5 grey midpoint.
    noise_level:
        Standard deviation of per-sample pixel noise.
    brightness_jitter:
        Maximum absolute per-sample brightness offset.
    max_shift:
        Maximum per-sample translation in pixels.
    """

    style_seed: int = 0
    texture_grid: int = 4
    color_saturation: float = 0.8
    contrast: float = 0.45
    noise_level: float = 0.06
    brightness_jitter: float = 0.05
    max_shift: int = 1


class SyntheticImageDistribution:
    """Generator of labelled images for one synthetic dataset."""

    def __init__(
        self,
        num_classes: int,
        image_size: int = 16,
        channels: int = 3,
        style: Optional[SyntheticStyle] = None,
        name: str = "synthetic",
    ) -> None:
        self.num_classes = check_positive_int(num_classes, "num_classes")
        self.image_size = check_positive_int(image_size, "image_size")
        self.channels = check_positive_int(channels, "channels")
        self.style = style or SyntheticStyle()
        self.name = name
        self._prototypes = self._build_prototypes()

    # -- prototype construction --------------------------------------------
    def _build_prototypes(self) -> np.ndarray:
        """One prototype image per class, shape (K, C, H, W), values around 0.5."""
        style = self.style
        rng = new_rng(style.style_seed)
        grid = max(2, int(style.texture_grid))
        prototypes = np.empty(
            (self.num_classes, self.channels, self.image_size, self.image_size)
        )
        for cls in range(self.num_classes):
            # low-frequency spatial pattern shared across channels
            field = rng.normal(size=(1, 1, grid, grid))
            field = resize_batch(
                (field - field.min()) / (np.ptp(field) + 1e-12), self.image_size
            )[0, 0]
            field = field - field.mean()
            # per-class colour direction
            color = rng.normal(size=self.channels)
            color = color / (np.linalg.norm(color) + 1e-12)
            # a second, channel-specific pattern adds intra-class texture
            detail = rng.normal(size=(1, self.channels, grid, grid))
            detail = resize_batch(detail, self.image_size)[0]
            detail = detail - detail.mean(axis=(1, 2), keepdims=True)
            detail_norm = np.abs(detail).max() + 1e-12
            proto = 0.5 + style.contrast * (
                field[None, :, :] * (1.0 + style.color_saturation * color[:, None, None])
                + 0.5 * style.color_saturation * detail / detail_norm
            )
            prototypes[cls] = proto
        return np.clip(prototypes, 0.05, 0.95)

    @property
    def prototypes(self) -> np.ndarray:
        """A copy of the per-class prototype images."""
        return self._prototypes.copy()

    # -- sampling ------------------------------------------------------------
    def sample_class(self, cls: int, count: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``count`` samples of class ``cls`` as an NCHW array."""
        if not 0 <= cls < self.num_classes:
            raise ValueError(f"class index {cls} out of range [0, {self.num_classes})")
        check_positive_int(count, "count")
        rng = new_rng(rng)
        style = self.style
        proto = self._prototypes[cls][None]
        images = np.repeat(proto, count, axis=0)
        # smooth per-sample deformation of the prototype
        grid = max(2, int(style.texture_grid))
        smooth_noise = rng.normal(size=(count, self.channels, grid, grid))
        smooth_noise = resize_batch(smooth_noise, self.image_size) * (style.noise_level * 1.5)
        images = images + smooth_noise
        # pixel noise and brightness jitter
        images = images + rng.normal(0.0, style.noise_level, size=images.shape)
        brightness = rng.uniform(
            -style.brightness_jitter, style.brightness_jitter, size=(count, 1, 1, 1)
        )
        images = images + brightness
        if style.max_shift > 0:
            images = random_shift(images, max_shift=style.max_shift, rng=rng)
        return np.clip(images, 0.0, 1.0)

    def sample(
        self, per_class: int, rng: SeedLike = None, name_suffix: str = ""
    ) -> ImageDataset:
        """Draw a balanced dataset with ``per_class`` samples of every class."""
        check_positive_int(per_class, "per_class")
        rng = new_rng(rng)
        images = []
        labels = []
        for cls in range(self.num_classes):
            images.append(self.sample_class(cls, per_class, rng=rng))
            labels.append(np.full(per_class, cls, dtype=np.int64))
        dataset = ImageDataset(
            np.concatenate(images, axis=0),
            np.concatenate(labels, axis=0),
            num_classes=self.num_classes,
            name=self.name + name_suffix,
        )
        return dataset.shuffled(rng)

    def sample_train_test(
        self, train_per_class: int, test_per_class: int, rng: SeedLike = None
    ):
        """Draw disjoint train/test datasets from the distribution."""
        rng = new_rng(rng)
        train = self.sample(train_per_class, rng=rng, name_suffix="-train")
        test = self.sample(test_per_class, rng=rng, name_suffix="-test")
        return train, test
