"""Image transforms: resizing, normalisation and light augmentation.

All transforms operate on NCHW batches with values in ``[0, 1]`` and are pure
functions (they return new arrays).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_image_batch


def resize_batch(images: np.ndarray, size: int) -> np.ndarray:
    """Bilinear resize of an NCHW batch to ``size`` x ``size``.

    A plain vectorised bilinear interpolation; adequate for the small images
    used in this reproduction and dependency-free.
    """
    images = check_image_batch(images, "images")
    n, c, h, w = images.shape
    if h == size and w == size:
        return images.copy()
    # sample positions in the source image for each output pixel (align corners=False)
    ys = (np.arange(size) + 0.5) * (h / size) - 0.5
    xs = (np.arange(size) + 0.5) * (w / size) - 0.5
    ys = np.clip(ys, 0, h - 1)
    xs = np.clip(xs, 0, w - 1)
    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.clip(y0 + 1, 0, h - 1)
    x1 = np.clip(x0 + 1, 0, w - 1)
    wy = (ys - y0)[None, None, :, None]
    wx = (xs - x0)[None, None, None, :]
    top = images[:, :, y0][:, :, :, x0] * (1 - wx) + images[:, :, y0][:, :, :, x1] * wx
    bottom = images[:, :, y1][:, :, :, x0] * (1 - wx) + images[:, :, y1][:, :, :, x1] * wx
    return top * (1 - wy) + bottom * wy


def normalize(images: np.ndarray, mean: float = 0.5, std: float = 0.5) -> np.ndarray:
    """Shift/scale pixel values; used when a model expects centred inputs."""
    return (check_image_batch(images) - mean) / std


def denormalize(images: np.ndarray, mean: float = 0.5, std: float = 0.5) -> np.ndarray:
    """Inverse of :func:`normalize`."""
    return check_image_batch(images) * std + mean


def to_grayscale(images: np.ndarray) -> np.ndarray:
    """Collapse an RGB batch to its luminance, replicated over 3 channels."""
    images = check_image_batch(images)
    if images.shape[1] == 1:
        return np.repeat(images, 3, axis=1)
    weights = np.array([0.299, 0.587, 0.114])[: images.shape[1]]
    weights = weights / weights.sum()
    gray = np.tensordot(weights, images, axes=([0], [1]))[:, None]
    return np.repeat(gray, 3, axis=1)


def random_horizontal_flip(
    images: np.ndarray, probability: float = 0.5, rng: SeedLike = None
) -> np.ndarray:
    """Flip a random subset of the batch left-right."""
    images = check_image_batch(images).copy()
    rng = new_rng(rng)
    flips = rng.random(images.shape[0]) < probability
    images[flips] = images[flips][:, :, :, ::-1]
    return images


def random_shift(
    images: np.ndarray, max_shift: int = 2, rng: SeedLike = None
) -> np.ndarray:
    """Randomly translate each image by up to ``max_shift`` pixels (zero padded)."""
    images = check_image_batch(images)
    rng = new_rng(rng)
    n, c, h, w = images.shape
    out = np.zeros_like(images)
    shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
    for i, (dy, dx) in enumerate(shifts):
        src_y = slice(max(0, -dy), min(h, h - dy))
        src_x = slice(max(0, -dx), min(w, w - dx))
        dst_y = slice(max(0, dy), min(h, h + dy))
        dst_x = slice(max(0, dx), min(w, w + dx))
        out[i, :, dst_y, dst_x] = images[i, :, src_y, src_x]
    return out


def pad_to(images: np.ndarray, size: int, fill: float = 0.0) -> np.ndarray:
    """Centre-pad an NCHW batch to ``size`` x ``size`` with a constant fill value."""
    images = check_image_batch(images)
    n, c, h, w = images.shape
    if h > size or w > size:
        raise ValueError(f"cannot pad images of size {h}x{w} to smaller size {size}")
    out = np.full((n, c, size, size), fill, dtype=np.float64)
    top = (size - h) // 2
    left = (size - w) // 2
    out[:, :, top : top + h, left : left + w] = images
    return out
