"""Baseline backdoor defenses used as comparison points in the paper's tables.

Three defense families are distinguished by what they score:

* **Input-level** (:class:`InputLevelDefense`) — score *individual inference
  inputs* as trigger-carrying or benign (STRIP, SCALE-UP, TeCo, SentiNet,
  TED, Cognitive Distillation).
* **Dataset-level** (:class:`DatasetLevelDefense`) — score *training samples*
  of a (possibly poisoned) training set (Activation Clustering, Spectral
  Signatures, SCAn, SPECTRE, Frequency, Confusion Training).
* **Model-level** (:class:`ModelLevelDefense`) — score a *whole model* as
  backdoored or clean (MM-BD, MNTD, and BPROM itself).

Every implementation follows the published method's central statistic but is
re-implemented from scratch on the numpy substrate; see each class docstring
for the simplifications made.
"""

from repro.defenses.base import (
    DatasetLevelDefense,
    InputLevelDefense,
    ModelLevelDefense,
)
from repro.defenses.input_level import (
    CognitiveDistillationDefense,
    ScaleUpDefense,
    SentiNetDefense,
    StripDefense,
    TeCoDefense,
    TEDDefense,
)
from repro.defenses.dataset_level import (
    ActivationClusteringDefense,
    ConfusionTrainingDefense,
    FrequencyDefense,
    ScanDefense,
    SpectralSignaturesDefense,
    SpectreDefense,
)
from repro.defenses.model_level import MMBDDefense, MNTDDefense
from repro.defenses.registry import available_defenses, build_defense

__all__ = [
    "InputLevelDefense",
    "DatasetLevelDefense",
    "ModelLevelDefense",
    "StripDefense",
    "ScaleUpDefense",
    "TeCoDefense",
    "SentiNetDefense",
    "TEDDefense",
    "CognitiveDistillationDefense",
    "ActivationClusteringDefense",
    "SpectralSignaturesDefense",
    "ScanDefense",
    "SpectreDefense",
    "FrequencyDefense",
    "ConfusionTrainingDefense",
    "MMBDDefense",
    "MNTDDefense",
    "available_defenses",
    "build_defense",
]
