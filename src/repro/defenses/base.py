"""Common interfaces and evaluation helpers for the baseline defenses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attacks.base import BackdoorAttack, PoisoningResult
from repro.datasets.base import ImageDataset
from repro.ml.metrics import auroc, best_f1_from_scores
from repro.models.classifier import ImageClassifier
from repro.utils.rng import SeedLike, new_rng


@dataclass
class DefenseEvaluation:
    """AUROC / F1 of a defense on one (model, attack) configuration."""

    auroc: float
    f1: float
    scores: np.ndarray
    labels: np.ndarray


class InputLevelDefense:
    """Scores inference-time inputs; higher score = more likely trigger-carrying."""

    name = "input-level"

    def score_inputs(self, classifier: ImageClassifier, images: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def evaluate(
        self,
        classifier: ImageClassifier,
        clean_images: np.ndarray,
        triggered_images: np.ndarray,
    ) -> DefenseEvaluation:
        """AUROC/F1 of separating triggered inputs (positives) from clean inputs."""
        clean_scores = self.score_inputs(classifier, clean_images)
        trigger_scores = self.score_inputs(classifier, triggered_images)
        scores = np.concatenate([clean_scores, trigger_scores])
        labels = np.concatenate(
            [np.zeros(len(clean_scores), dtype=np.int64), np.ones(len(trigger_scores), dtype=np.int64)]
        )
        return DefenseEvaluation(
            auroc=auroc(scores, labels),
            f1=best_f1_from_scores(scores, labels),
            scores=scores,
            labels=labels,
        )


class DatasetLevelDefense:
    """Scores training samples of a poisoned training set; higher = more suspicious."""

    name = "dataset-level"

    def score_training_samples(
        self, classifier: ImageClassifier, dataset: ImageDataset
    ) -> np.ndarray:
        raise NotImplementedError

    def evaluate(
        self, classifier: ImageClassifier, poisoning: PoisoningResult
    ) -> DefenseEvaluation:
        """AUROC/F1 of recovering the ground-truth poisoned sample mask."""
        scores = self.score_training_samples(classifier, poisoning.dataset)
        labels = poisoning.is_poisoned_mask().astype(np.int64)
        return DefenseEvaluation(
            auroc=auroc(scores, labels),
            f1=best_f1_from_scores(scores, labels),
            scores=scores,
            labels=labels,
        )


class ModelLevelDefense:
    """Scores whole models; higher score = more likely backdoored."""

    name = "model-level"

    def score_model(
        self,
        classifier: ImageClassifier,
        clean_data: ImageDataset,
        rng: SeedLike = None,
    ) -> float:
        raise NotImplementedError

    def evaluate_models(
        self,
        classifiers,
        labels,
        clean_data: ImageDataset,
        rng: SeedLike = None,
    ) -> DefenseEvaluation:
        """AUROC/F1 over a pool of clean (0) and backdoored (1) models."""
        rng = new_rng(rng)
        scores = np.array(
            [self.score_model(clf, clean_data, rng=rng) for clf in classifiers]
        )
        labels = np.asarray(labels, dtype=np.int64)
        return DefenseEvaluation(
            auroc=auroc(scores, labels),
            f1=best_f1_from_scores(scores, labels),
            scores=scores,
            labels=labels,
        )


def triggered_and_clean_split(
    attack: BackdoorAttack,
    test_set: ImageDataset,
    max_samples: Optional[int] = None,
    rng: SeedLike = None,
):
    """Build matched clean / triggered input batches for input-level evaluation."""
    rng = new_rng(rng)
    data = test_set if max_samples is None else test_set.sample(
        min(max_samples, len(test_set)), rng=rng
    )
    # exclude samples already belonging to the target class (standard protocol)
    keep = data.labels != attack.target_class
    clean_images = data.images[keep]
    triggered_images = attack.apply_trigger(clean_images, rng=rng)
    return clean_images, triggered_images
