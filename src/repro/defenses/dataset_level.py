"""Dataset-level (poison-filtering) defenses: AC, SS, SCAn, SPECTRE, Frequency, CT.

These defenses inspect a (possibly poisoned) *training set*, usually with the
help of the trained model's features, and score each training sample's
likelihood of being poisoned.
"""

from __future__ import annotations

import numpy as np

from repro.config import TrainingConfig
from repro.datasets.base import ImageDataset
from repro.defenses.base import DatasetLevelDefense
from repro.ml.kmeans import KMeans
from repro.ml.stats import mahalanobis_scores, spectral_scores, whiten
from repro.models.classifier import ImageClassifier
from repro.models.registry import build_classifier
from repro.utils.rng import SeedLike, new_rng


class ActivationClusteringDefense(DatasetLevelDefense):
    """Activation Clustering (Chen et al., 2018).

    For every class, the penultimate activations are split into two k-means
    clusters; members of the smaller cluster are flagged.  The score is the
    (negative) relative size of a sample's cluster, so smaller clusters score
    higher.
    """

    name = "activation_clustering"

    def __init__(self, rng: SeedLike = None) -> None:
        self._rng = new_rng(rng)

    def score_training_samples(
        self, classifier: ImageClassifier, dataset: ImageDataset
    ) -> np.ndarray:
        features = classifier.features(dataset.images)
        scores = np.zeros(len(dataset))
        for cls in range(dataset.num_classes):
            idx = np.flatnonzero(dataset.labels == cls)
            if idx.size < 4:
                continue
            clusters = KMeans(n_clusters=2, rng=self._rng).fit_predict(features[idx])
            sizes = np.bincount(clusters, minlength=2)
            relative = sizes[clusters] / idx.size
            scores[idx] = 1.0 - relative
        return scores


class SpectralSignaturesDefense(DatasetLevelDefense):
    """Spectral Signatures (Tran et al., 2018).

    Poisoned samples leave a detectable trace along the top singular direction
    of their class's centred feature matrix; the score is the squared
    projection onto that direction, normalised per class.
    """

    name = "spectral_signatures"

    def score_training_samples(
        self, classifier: ImageClassifier, dataset: ImageDataset
    ) -> np.ndarray:
        features = classifier.features(dataset.images)
        scores = np.zeros(len(dataset))
        for cls in range(dataset.num_classes):
            idx = np.flatnonzero(dataset.labels == cls)
            if idx.size < 3:
                continue
            class_scores = spectral_scores(features[idx])
            spread = class_scores.std() + 1e-12
            scores[idx] = (class_scores - class_scores.mean()) / spread
        return scores


class ScanDefense(DatasetLevelDefense):
    """SCAn (Tang et al., 2021), simplified two-component decomposition.

    SCAn tests, per class, whether the feature distribution is better explained
    by one component or by two (benign + poisoned).  This implementation
    computes, per class, the likelihood-ratio proxy ``1 - inertia_2/inertia_1``
    from k-means with one vs. two clusters and assigns each sample in the
    smaller sub-cluster that score (others get the within-class Mahalanobis
    anomaly score, scaled down).
    """

    name = "scan"

    def __init__(self, rng: SeedLike = None) -> None:
        self._rng = new_rng(rng)

    def score_training_samples(
        self, classifier: ImageClassifier, dataset: ImageDataset
    ) -> np.ndarray:
        features = classifier.features(dataset.images)
        scores = np.zeros(len(dataset))
        for cls in range(dataset.num_classes):
            idx = np.flatnonzero(dataset.labels == cls)
            if idx.size < 6:
                continue
            class_features = features[idx]
            centred = class_features - class_features.mean(axis=0)
            inertia_one = float(np.sum(centred**2))
            two = KMeans(n_clusters=2, rng=self._rng).fit(class_features)
            split_gain = 1.0 - two.inertia_ / max(inertia_one, 1e-12)
            sizes = np.bincount(two.labels_, minlength=2)
            minority = int(np.argmin(sizes))
            in_minority = two.labels_ == minority
            anomaly = mahalanobis_scores(class_features)
            anomaly = anomaly / (anomaly.max() + 1e-12)
            scores[idx] = 0.25 * anomaly
            scores[idx[in_minority]] = split_gain + 0.25 * anomaly[in_minority]
        return scores


class SpectreDefense(DatasetLevelDefense):
    """SPECTRE (Hayase et al., 2021), simplified QUE scoring.

    Features of each class are whitened with a robust (trimmed) covariance
    estimate and samples are scored by their norm in the whitened space along
    the top principal direction, which amplifies the poisoned outliers.
    """

    name = "spectre"

    def __init__(self, trim_fraction: float = 0.1) -> None:
        self.trim_fraction = float(trim_fraction)

    def score_training_samples(
        self, classifier: ImageClassifier, dataset: ImageDataset
    ) -> np.ndarray:
        features = classifier.features(dataset.images)
        scores = np.zeros(len(dataset))
        for cls in range(dataset.num_classes):
            idx = np.flatnonzero(dataset.labels == cls)
            if idx.size < 6:
                continue
            class_features = features[idx]
            # robust whitening: drop the most extreme samples before estimating covariance
            distances = mahalanobis_scores(class_features)
            keep = distances <= np.quantile(distances, 1.0 - self.trim_fraction)
            if keep.sum() < 4:
                keep = np.ones(idx.size, dtype=bool)
            _, mean, whitening = whiten(class_features[keep])
            whitened = (class_features - mean) @ whitening
            scores[idx] = spectral_scores(whitened)
        return scores


class FrequencyDefense(DatasetLevelDefense):
    """Frequency defense (Zeng et al., 2021).

    Backdoor triggers leave high-frequency artefacts; samples are scored by the
    relative high-frequency energy of their 2-D DFT compared to the median
    spectrum of their class.
    """

    name = "frequency"

    def __init__(self, cutoff_fraction: float = 0.5) -> None:
        self.cutoff_fraction = float(cutoff_fraction)

    def _high_frequency_energy(self, images: np.ndarray) -> np.ndarray:
        spectrum = np.abs(np.fft.fft2(images, axes=(2, 3)))
        spectrum = np.fft.fftshift(spectrum, axes=(2, 3))
        _, _, h, w = images.shape
        yy, xx = np.meshgrid(np.arange(h) - h / 2, np.arange(w) - w / 2, indexing="ij")
        radius = np.sqrt(yy**2 + xx**2)
        cutoff = self.cutoff_fraction * radius.max()
        high_mask = radius >= cutoff
        total = spectrum.sum(axis=(1, 2, 3)) + 1e-12
        high = (spectrum * high_mask[None, None]).sum(axis=(1, 2, 3))
        return high / total

    def score_training_samples(
        self, classifier: ImageClassifier, dataset: ImageDataset
    ) -> np.ndarray:
        energy = self._high_frequency_energy(dataset.images)
        scores = np.zeros(len(dataset))
        for cls in range(dataset.num_classes):
            idx = np.flatnonzero(dataset.labels == cls)
            if idx.size == 0:
                continue
            median = np.median(energy[idx])
            scores[idx] = energy[idx] - median
        return scores

    def score_inputs(self, classifier: ImageClassifier, images: np.ndarray) -> np.ndarray:
        """Frequency can also be used input-level (no class information needed)."""
        return self._high_frequency_energy(images)


class ConfusionTrainingDefense(DatasetLevelDefense):
    """Confusion Training (Qi et al., 2023c), scaled-down proactive variant.

    CT trains a "confusion" model on the suspect dataset with deliberately
    randomised labels mixed in: the shortcut from trigger to target class
    survives confusion training while the natural class signal is destroyed,
    so samples the confusion model still predicts as their (possibly poisoned)
    label with high confidence are flagged.
    """

    name = "confusion_training"

    def __init__(
        self,
        architecture: str = "mlp",
        confusion_ratio: float = 0.5,
        epochs: int = 8,
        rng: SeedLike = None,
    ) -> None:
        self.architecture = architecture
        self.confusion_ratio = float(confusion_ratio)
        self.epochs = int(epochs)
        self._rng = new_rng(rng)

    def score_training_samples(
        self, classifier: ImageClassifier, dataset: ImageDataset
    ) -> np.ndarray:
        rng = self._rng
        labels = dataset.labels.copy()
        flip = rng.random(len(dataset)) < self.confusion_ratio
        labels[flip] = rng.integers(0, dataset.num_classes, size=int(flip.sum()))
        confused = ImageDataset(dataset.images, labels, dataset.num_classes, "confusion")
        confusion_model = build_classifier(
            self.architecture,
            dataset.num_classes,
            image_size=dataset.image_size,
            rng=rng,
            name="confusion-model",
        )
        confusion_model.fit(
            confused,
            TrainingConfig(epochs=self.epochs, learning_rate=5e-3, batch_size=64),
            rng=rng,
        )
        probabilities = confusion_model.predict_proba(dataset.images)
        return probabilities[np.arange(len(dataset)), dataset.labels]
