"""Input-level defenses: STRIP, SCALE-UP, TeCo, SentiNet, TED, Cognitive Distillation.

Each defense scores an inference-time input; higher scores flag likely
trigger-carrying samples.  The implementations reproduce the published
statistic of each method on the numpy substrate; heavyweight inner loops
(e.g. SentiNet's Grad-CAM, CD's learned masks) are replaced by occlusion-based
equivalents, noted per class.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import ImageDataset
from repro.defenses.base import InputLevelDefense
from repro.models.classifier import ImageClassifier
from repro.utils.rng import SeedLike, new_rng


def _entropy(probabilities: np.ndarray) -> np.ndarray:
    clipped = np.clip(probabilities, 1e-12, 1.0)
    return -np.sum(clipped * np.log(clipped), axis=1)


class StripDefense(InputLevelDefense):
    """STRIP (Gao et al., 2019): perturbation-entropy test.

    Each input is superimposed with several held-out clean images; a
    trigger-carrying input keeps the backdoor active, so the averaged
    prediction entropy stays low.  The score is the *negative* mean entropy
    (higher = more suspicious), matching STRIP's decision direction.
    """

    name = "strip"

    def __init__(
        self,
        overlay_pool: ImageDataset,
        num_overlays: int = 10,
        blend_ratio: float = 0.5,
        rng: SeedLike = None,
    ) -> None:
        self.overlay_pool = overlay_pool
        self.num_overlays = int(num_overlays)
        self.blend_ratio = float(blend_ratio)
        self._rng = new_rng(rng)

    def score_inputs(self, classifier: ImageClassifier, images: np.ndarray) -> np.ndarray:
        overlays = self.overlay_pool.sample(
            min(self.num_overlays, len(self.overlay_pool)), rng=self._rng
        ).images
        entropies = np.zeros((images.shape[0], overlays.shape[0]))
        for j, overlay in enumerate(overlays):
            blended = np.clip(
                (1 - self.blend_ratio) * images + self.blend_ratio * overlay[None], 0, 1
            )
            entropies[:, j] = _entropy(classifier.predict_proba(blended))
        return -entropies.mean(axis=1)


class ScaleUpDefense(InputLevelDefense):
    """SCALE-UP (Guo et al., 2023): scaled prediction consistency.

    Pixel values are amplified by several factors; trigger samples tend to keep
    their (target-class) prediction under amplification while benign samples
    drift.  The score is the fraction of scaled copies that agree with the
    original prediction.
    """

    name = "scale_up"

    def __init__(self, factors=(3.0, 5.0, 7.0, 9.0, 11.0)) -> None:
        self.factors = tuple(float(f) for f in factors)

    def score_inputs(self, classifier: ImageClassifier, images: np.ndarray) -> np.ndarray:
        base_pred = classifier.predict(images)
        agreement = np.zeros(images.shape[0])
        for factor in self.factors:
            scaled = np.clip(images * factor, 0.0, 1.0)
            agreement += (classifier.predict(scaled) == base_pred).astype(np.float64)
        return agreement / len(self.factors)


class TeCoDefense(InputLevelDefense):
    """TeCo (Liu et al., 2023): corruption-robustness consistency.

    Benign samples degrade consistently across different corruption types,
    while trigger samples show corruption-dependent robustness.  For each
    corruption type we find the first severity level at which the prediction
    flips; the score is the standard deviation of that level across corruption
    types (high deviation = inconsistent = suspicious).
    """

    name = "teco"

    def __init__(self, severities=(0.05, 0.1, 0.2, 0.3, 0.4), rng: SeedLike = None) -> None:
        self.severities = tuple(float(s) for s in severities)
        self._rng = new_rng(rng)

    def _corrupt(self, images: np.ndarray, kind: str, severity: float) -> np.ndarray:
        if kind == "noise":
            return np.clip(images + self._rng.normal(0, severity, images.shape), 0, 1)
        if kind == "brightness":
            return np.clip(images + severity, 0, 1)
        if kind == "contrast":
            return np.clip((images - 0.5) * (1 - severity) + 0.5, 0, 1)
        if kind == "blur":
            blurred = images.copy()
            shifts = ((0, 1), (0, -1), (1, 0), (-1, 0))
            for dy, dx in shifts:
                blurred += np.roll(np.roll(images, dy, axis=2), dx, axis=3)
            blurred /= len(shifts) + 1
            return np.clip((1 - severity) * images + severity * blurred, 0, 1)
        raise ValueError(f"unknown corruption {kind!r}")

    def score_inputs(self, classifier: ImageClassifier, images: np.ndarray) -> np.ndarray:
        base_pred = classifier.predict(images)
        kinds = ("noise", "brightness", "contrast", "blur")
        flip_levels = np.full((images.shape[0], len(kinds)), len(self.severities), dtype=np.float64)
        for k, kind in enumerate(kinds):
            flipped = np.zeros(images.shape[0], dtype=bool)
            for level, severity in enumerate(self.severities):
                corrupted = self._corrupt(images, kind, severity)
                pred = classifier.predict(corrupted)
                newly = (~flipped) & (pred != base_pred)
                flip_levels[newly, k] = level
                flipped |= newly
        return flip_levels.std(axis=1)


class SentiNetDefense(InputLevelDefense):
    """SentiNet (Chou et al., 2018): localized-saliency consistency.

    The original uses Grad-CAM to find a salient region and tests whether
    pasting it onto other images hijacks their prediction.  Here the salient
    region is found by occlusion (the patch whose removal changes the
    prediction confidence most), which keeps the method black-box-friendly.
    The score is the hijack rate of that region pasted onto held-out images.
    """

    name = "sentinet"

    def __init__(
        self,
        carrier_pool: ImageDataset,
        patch_size: int = 4,
        num_carriers: int = 8,
        rng: SeedLike = None,
    ) -> None:
        self.carrier_pool = carrier_pool
        self.patch_size = int(patch_size)
        self.num_carriers = int(num_carriers)
        self._rng = new_rng(rng)

    def _salient_patch(self, classifier: ImageClassifier, image: np.ndarray):
        _, h, w = image.shape
        p = self.patch_size
        base_probs = classifier.predict_proba(image[None])[0]
        base_class = int(np.argmax(base_probs))
        best_drop, best_pos = -1.0, (0, 0)
        for top in range(0, h - p + 1, p):
            for left in range(0, w - p + 1, p):
                occluded = image.copy()
                occluded[:, top : top + p, left : left + p] = 0.5
                drop = base_probs[base_class] - classifier.predict_proba(occluded[None])[0][base_class]
                if drop > best_drop:
                    best_drop, best_pos = drop, (top, left)
        return best_pos, base_class

    def score_inputs(self, classifier: ImageClassifier, images: np.ndarray) -> np.ndarray:
        carriers = self.carrier_pool.sample(
            min(self.num_carriers, len(self.carrier_pool)), rng=self._rng
        ).images
        p = self.patch_size
        scores = np.zeros(images.shape[0])
        for i, image in enumerate(images):
            (top, left), base_class = self._salient_patch(classifier, image)
            pasted = carriers.copy()
            pasted[:, :, top : top + p, left : left + p] = image[:, top : top + p, left : left + p]
            hijacked = classifier.predict(pasted) == base_class
            scores[i] = float(np.mean(hijacked))
        return scores


class TEDDefense(InputLevelDefense):
    """TED (Mo et al., 2024): topological evolution dynamics, simplified.

    TED tracks how a sample's nearest-neighbour label evolves across network
    layers.  The simplification here uses two "layers" — pixel space and the
    penultimate feature space — and scores a sample by how strongly its
    feature-space neighbourhood disagrees with its pixel-space neighbourhood
    about the predicted class (trigger samples jump towards the target class
    only deep in the network).
    """

    name = "ted"

    def __init__(self, reference: ImageDataset, neighbours: int = 5) -> None:
        self.reference = reference
        self.neighbours = int(neighbours)

    @staticmethod
    def _knn_class_share(query: np.ndarray, reference: np.ndarray, labels: np.ndarray,
                         predicted: np.ndarray, k: int) -> np.ndarray:
        distances = (
            np.sum(query**2, axis=1, keepdims=True)
            - 2 * query @ reference.T
            + np.sum(reference**2, axis=1)
        )
        order = np.argsort(distances, axis=1)[:, :k]
        neighbour_labels = labels[order]
        return np.mean(neighbour_labels == predicted[:, None], axis=1)

    def score_inputs(self, classifier: ImageClassifier, images: np.ndarray) -> np.ndarray:
        predicted = classifier.predict(images)
        pixel_share = self._knn_class_share(
            images.reshape(images.shape[0], -1),
            self.reference.images.reshape(len(self.reference), -1),
            self.reference.labels,
            predicted,
            self.neighbours,
        )
        feature_share = self._knn_class_share(
            classifier.features(images),
            classifier.features(self.reference.images),
            self.reference.labels,
            predicted,
            self.neighbours,
        )
        # benign samples: both neighbourhoods support the prediction.
        # trigger samples: deep features support the (hijacked) prediction while
        # pixel neighbours do not.
        return feature_share - pixel_share


class CognitiveDistillationDefense(InputLevelDefense):
    """Cognitive Distillation (Huang et al., 2023), occlusion-based simplification.

    CD learns the minimal input mask that preserves the model's prediction;
    trigger samples need only a tiny mask (the trigger itself).  Here we
    measure, via greedy patch occlusion, how many patches can be removed while
    keeping the prediction: the score is the fraction of removable patches
    (high = prediction depends on a small region = suspicious).
    """

    name = "cognitive_distillation"

    def __init__(self, patch_size: int = 4) -> None:
        self.patch_size = int(patch_size)

    def score_inputs(self, classifier: ImageClassifier, images: np.ndarray) -> np.ndarray:
        n, c, h, w = images.shape
        p = self.patch_size
        positions = [
            (top, left)
            for top in range(0, h - p + 1, p)
            for left in range(0, w - p + 1, p)
        ]
        base_pred = classifier.predict(images)
        removable = np.zeros(n)
        for top, left in positions:
            occluded = images.copy()
            occluded[:, :, top : top + p, left : left + p] = 0.5
            removable += (classifier.predict(occluded) == base_pred).astype(np.float64)
        return removable / len(positions)
