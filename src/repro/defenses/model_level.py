"""Model-level baseline defenses: MM-BD and MNTD.

These, like BPROM, decide whether a whole model is backdoored.  MM-BD needs
only the model; MNTD — the closest prior work to BPROM — trains its own shadow
models and meta-classifier, but queries them with *unprompted* tuned inputs
rather than through visual prompting.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.config import ExperimentProfile, FAST, resolve_precision
from repro.core.shadow import ShadowModel, ShadowModelFactory
from repro.datasets.base import ImageDataset
from repro.defenses.base import ModelLevelDefense
from repro.ml.forest import RandomForestClassifier
from repro.ml.stats import median_absolute_deviation
from repro.models.classifier import ImageClassifier
from repro.nn.stacked import UnstackableModelError, predict_proba_many
from repro.utils.rng import SeedLike, derive_seed, new_rng


class MMBDDefense(ModelLevelDefense):
    """MM-BD (Wang et al., 2024): maximum-margin backdoor detection.

    For each class the maximum classification margin achievable over a pool of
    random/perturbed inputs is estimated; a backdoored class exhibits an
    abnormally large maximum margin.  The model score is the MAD-normalised
    gap between the largest per-class maximum margin and the median.
    """

    name = "mmbd"

    def __init__(self, num_probes: int = 256, optimisation_steps: int = 4) -> None:
        self.num_probes = int(num_probes)
        self.optimisation_steps = int(optimisation_steps)

    def _max_margins(
        self, classifier: ImageClassifier, clean_data: ImageDataset, rng: np.random.Generator
    ) -> np.ndarray:
        shape = clean_data.image_shape
        probes = rng.random((self.num_probes, *shape))
        # greedy coordinate ascent: nudge probes towards higher top-margin
        for _ in range(self.optimisation_steps):
            logits = classifier.predict_logits(probes)
            margins = np.sort(logits, axis=1)
            top_margin = margins[:, -1] - margins[:, -2]
            perturbed = np.clip(probes + rng.normal(0, 0.1, probes.shape), 0, 1)
            new_logits = classifier.predict_logits(perturbed)
            new_margins = np.sort(new_logits, axis=1)
            new_top = new_margins[:, -1] - new_margins[:, -2]
            improved = new_top > top_margin
            probes[improved] = perturbed[improved]
        logits = classifier.predict_logits(probes)
        predictions = np.argmax(logits, axis=1)
        sorted_logits = np.sort(logits, axis=1)
        margins = sorted_logits[:, -1] - sorted_logits[:, -2]
        per_class = np.zeros(classifier.num_classes)
        for cls in range(classifier.num_classes):
            cls_margins = margins[predictions == cls]
            per_class[cls] = float(cls_margins.max()) if cls_margins.size else 0.0
        return per_class

    def score_model(
        self,
        classifier: ImageClassifier,
        clean_data: ImageDataset,
        rng: SeedLike = None,
    ) -> float:
        rng = new_rng(rng)
        per_class = self._max_margins(classifier, clean_data, rng)
        median = float(np.median(per_class))
        mad = median_absolute_deviation(per_class) + 1e-9
        return float((per_class.max() - median) / mad)


class MNTDDefense(ModelLevelDefense):
    """MNTD (Xu et al., 2019): meta neural Trojan detection.

    MNTD trains many clean/backdoored shadow models and a meta-classifier over
    their outputs on a set of query inputs.  Unlike BPROM there is no visual
    prompting: the query inputs are drawn directly from the suspicious task's
    input space.  The paper contrasts MNTD's need for many, attack-diverse
    shadow models with BPROM's few-shadow design; the shadow pool here is
    shared with BPROM's factory so the comparison is apples-to-apples.
    """

    name = "mntd"

    def __init__(
        self,
        profile: Optional[ExperimentProfile] = None,
        architecture: str = "resnet18",
        shadow_attacks: Sequence[str] = ("badnets", "blend", "trojan"),
        num_queries: int = 16,
        threshold: float = 0.5,
        seed: SeedLike = 0,
        precision: Optional[str] = None,
    ) -> None:
        self.profile = profile or FAST
        self.architecture = architecture
        self.shadow_attacks = tuple(shadow_attacks)
        self.num_queries = int(num_queries)
        #: precision tier the shadow pool trains in (see RuntimeConfig.precision)
        self.precision = resolve_precision(precision)
        #: hard-decision threshold on the meta-probability (used by services
        #: that need a verdict rather than a raw score, e.g. the audit gateway)
        self.threshold = float(threshold)
        self.seed = seed if isinstance(seed, int) else 0
        self.shadow_models: List[ShadowModel] = []
        self._query_images: Optional[np.ndarray] = None
        self._meta: Optional[RandomForestClassifier] = None

    def fit(
        self,
        reserved_clean: ImageDataset,
        shadow_models: Optional[Sequence[ShadowModel]] = None,
    ) -> "MNTDDefense":
        """Train shadow models (or reuse a pool) and the meta-classifier."""
        rng = new_rng(derive_seed(self.seed, "mntd"))
        if shadow_models is None:
            from repro.attacks.registry import build_attack

            attacks = [
                build_attack(name, target_class=int(rng.integers(0, reserved_clean.num_classes)),
                             seed=derive_seed(self.seed, "mntd-attack", i))
                for i, name in enumerate(self.shadow_attacks)
            ]
            factory = ShadowModelFactory(
                profile=self.profile,
                architecture=self.architecture,
                seed=derive_seed(self.seed, "mntd-shadows"),
                precision=self.precision,
            )
            self.shadow_models = factory.build_pool(reserved_clean, attacks=attacks)
        else:
            self.shadow_models = list(shadow_models)
        # tuned query set: start from random noise, keep the most informative probes
        shape = reserved_clean.image_shape
        self._query_images = rng.random((self.num_queries, *shape))
        # query the whole shadow pool in one stacked forward; heterogeneous
        # pools the stacked engine cannot lift fall back to per-model queries
        # (identical feature values either way)
        pool_probabilities = None
        if len(self.shadow_models) > 1:
            try:
                pool_probabilities = predict_proba_many(
                    [shadow.classifier for shadow in self.shadow_models],
                    self._query_images,
                )
            except UnstackableModelError:
                pool_probabilities = None
        features = []
        labels = []
        for index, shadow in enumerate(self.shadow_models):
            if pool_probabilities is not None:
                features.append(pool_probabilities[index].ravel())
            else:
                features.append(shadow.classifier.predict_proba(self._query_images).ravel())
            labels.append(int(shadow.is_backdoored))
        self._meta = RandomForestClassifier(
            n_estimators=self.profile.meta_trees, max_depth=6, rng=rng
        )
        self._meta.fit(np.stack(features), np.asarray(labels))
        return self

    def score_model(
        self,
        classifier: ImageClassifier,
        clean_data: ImageDataset,
        rng: SeedLike = None,
    ) -> float:
        if self._meta is None or self._query_images is None:
            raise RuntimeError("MNTDDefense.fit must be called before scoring models")
        feature = classifier.predict_proba(self._query_images).ravel()[None, :]
        probabilities = self._meta.predict_proba(feature)
        return float(probabilities[0, 1] if probabilities.shape[1] > 1 else probabilities[0, 0])

    # -- persistence ----------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Persist the fitted defense (query images + meta forest) to a directory.

        The round trip through :meth:`load` produces bit-identical
        :meth:`score_model` outputs, which is what lets one MNTD fit serve
        audits across processes through the detector registry — the same
        cross-process reuse ``BpromDetector.save``/``load`` provides for
        BPROM.
        """
        # imported lazily: the runtime serialization layer imports model
        # registries, which must not become an import-time dependency of the
        # defenses package
        from repro.runtime.serialization import save_mntd_defense
        from repro.runtime.store import Artifact

        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        save_mntd_defense(Artifact(directory), self)
        return directory

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MNTDDefense":
        """Restore a defense saved by :meth:`save`; scores are bit-identical.

        Shadow classifiers are training-time artefacts and are not stored;
        ``shadow_models`` is empty on a loaded defense (exactly like a loaded
        ``BpromDetector``), but :meth:`score_model` serves immediately.
        """
        from repro.runtime.serialization import load_mntd_defense
        from repro.runtime.store import Artifact

        return load_mntd_defense(Artifact(Path(path)))
