"""Defense registry mapping paper names to implementations."""

from __future__ import annotations

from typing import Tuple

from repro.datasets.base import ImageDataset
from repro.defenses.dataset_level import (
    ActivationClusteringDefense,
    ConfusionTrainingDefense,
    FrequencyDefense,
    ScanDefense,
    SpectralSignaturesDefense,
    SpectreDefense,
)
from repro.defenses.input_level import (
    CognitiveDistillationDefense,
    ScaleUpDefense,
    SentiNetDefense,
    StripDefense,
    TeCoDefense,
    TEDDefense,
)
from repro.defenses.model_level import MMBDDefense, MNTDDefense
from repro.utils.rng import SeedLike

#: defenses that score inference inputs (need a clean auxiliary pool)
INPUT_LEVEL_DEFENSES: Tuple[str, ...] = (
    "strip",
    "scale_up",
    "teco",
    "sentinet",
    "ted",
    "cognitive_distillation",
)

#: defenses that score training samples of a poisoned training set
DATASET_LEVEL_DEFENSES: Tuple[str, ...] = (
    "activation_clustering",
    "spectral_signatures",
    "scan",
    "spectre",
    "frequency",
    "confusion_training",
)

#: defenses that score whole models
MODEL_LEVEL_DEFENSES: Tuple[str, ...] = ("mmbd", "mntd", "bprom")

_ALIASES = {
    "ac": "activation_clustering",
    "ss": "spectral_signatures",
    "ct": "confusion_training",
    "cd": "cognitive_distillation",
    "scaleup": "scale_up",
    "scale-up": "scale_up",
    "mm-bd": "mmbd",
}


def canonical_defense_name(name: str) -> str:
    key = name.strip().lower().replace(" ", "_")
    return _ALIASES.get(key, key)


def available_defenses() -> Tuple[str, ...]:
    """All registry names (excluding BPROM, which lives in :mod:`repro.core`)."""
    return tuple(
        sorted(set(INPUT_LEVEL_DEFENSES) | set(DATASET_LEVEL_DEFENSES) | {"mmbd", "mntd"})
    )


def build_defense(
    name: str,
    auxiliary_data: ImageDataset | None = None,
    rng: SeedLike = None,
    **kwargs,
):
    """Instantiate a defense by name.

    ``auxiliary_data`` is the defender's small clean pool, required by the
    defenses that blend, paste or compare against clean samples (STRIP,
    SentiNet, TED).
    """
    key = canonical_defense_name(name)
    if key in ("strip", "sentinet", "ted") and auxiliary_data is None:
        raise ValueError(f"defense {key!r} requires auxiliary_data (a clean pool)")
    if key == "strip":
        return StripDefense(auxiliary_data, rng=rng, **kwargs)
    if key == "scale_up":
        return ScaleUpDefense(**kwargs)
    if key == "teco":
        return TeCoDefense(rng=rng, **kwargs)
    if key == "sentinet":
        return SentiNetDefense(auxiliary_data, rng=rng, **kwargs)
    if key == "ted":
        return TEDDefense(auxiliary_data, **kwargs)
    if key == "cognitive_distillation":
        return CognitiveDistillationDefense(**kwargs)
    if key == "activation_clustering":
        return ActivationClusteringDefense(rng=rng, **kwargs)
    if key == "spectral_signatures":
        return SpectralSignaturesDefense(**kwargs)
    if key == "scan":
        return ScanDefense(rng=rng, **kwargs)
    if key == "spectre":
        return SpectreDefense(**kwargs)
    if key == "frequency":
        return FrequencyDefense(**kwargs)
    if key == "confusion_training":
        return ConfusionTrainingDefense(rng=rng, **kwargs)
    if key == "mmbd":
        return MMBDDefense(**kwargs)
    if key == "mntd":
        return MNTDDefense(seed=rng if isinstance(rng, int) else 0, **kwargs)
    raise KeyError(f"unknown defense {name!r}; available: {available_defenses()}")
