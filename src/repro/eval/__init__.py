"""Evaluation harness: suspicious-model zoos, per-table experiments and reports."""

from repro.eval.harness import (
    ExperimentContext,
    bprom_detection_auroc,
    build_suspicious_pool,
    evaluate_input_level_defense,
    evaluate_dataset_level_defense,
    evaluate_model_level_defense,
    get_context,
)
from repro.eval.tables import format_table, merge_rows
from repro.eval import paper_reference

__all__ = [
    "ExperimentContext",
    "get_context",
    "build_suspicious_pool",
    "bprom_detection_auroc",
    "evaluate_input_level_defense",
    "evaluate_dataset_level_defense",
    "evaluate_model_level_defense",
    "format_table",
    "merge_rows",
    "paper_reference",
]
