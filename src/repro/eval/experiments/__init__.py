"""One module per paper experiment (tables and figures).

Every experiment module exposes one or more ``run_*`` functions taking an
:class:`~repro.eval.harness.ExperimentContext` (or profile/seed) and returning
a dictionary with a ``rows`` list (one dict per table row) and a formatted
``table`` string.  The benchmark harness in ``benchmarks/`` calls these
functions; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from repro.eval.experiments import (
    ablations,
    defense_comparison,
    figure03_subspace,
    table01_input_level,
    table02_target_classes,
    table03_04_prompted_accuracy,
    table07_shadow_count,
    table08_09_attack_strength,
    table10_cross_architecture,
    table11_low_poison,
    table12_clean_label,
    table14_15_accuracy_asr,
    table22_feature_backdoors,
    table23_reserved_size,
)

__all__ = [
    "ablations",
    "defense_comparison",
    "figure03_subspace",
    "table01_input_level",
    "table02_target_classes",
    "table03_04_prompted_accuracy",
    "table07_shadow_count",
    "table08_09_attack_strength",
    "table10_cross_architecture",
    "table11_low_poison",
    "table12_clean_label",
    "table14_15_accuracy_asr",
    "table22_feature_backdoors",
    "table23_reserved_size",
]
