"""Ablations beyond the paper's own tables (see DESIGN.md §5).

* meta-classifier family (random forest vs. logistic regression vs. a plain
  prompted-accuracy threshold),
* black-box prompt optimiser (CMA-ES vs. SPSA vs. random search),
* number of query samples ``q``,
* the paper's stated limitation: all-to-all backdoors.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.config import ExperimentProfile
from repro.core.detector import BpromDetector
from repro.eval.harness import build_suspicious_pool, bprom_detection_auroc, get_context
from repro.eval.tables import format_table
from repro.ml.metrics import auroc
from repro.utils.rng import derive_seed


def run_meta_classifier(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attack: str = "badnets",
    kinds: Sequence[str] = ("random_forest", "logistic", "accuracy_threshold"),
) -> dict:
    """Compare meta-classifier families; "accuracy_threshold" scores a model by
    the negative prompted accuracy (the paper's raw signal without a learner)."""
    context = get_context(profile, seed)
    rows = []
    for kind in kinds:
        if kind == "accuracy_threshold":
            detector = context.detector(dataset, "stl10")
            pool, labels = build_suspicious_pool(context, dataset, attack)
            detector_key = f"{dataset}/stl10/resnet18/None/None/None"
            scores = []
            for entry in pool:
                prompted = context.prompted_suspicious(detector, entry, detector_key)
                scores.append(-prompted.evaluate(detector.meta_classifier.query_pool))
            value = auroc(np.asarray(scores), np.asarray(labels))
        else:
            reserved = context.reserved_clean(dataset)
            target_train, target_test = context.datasets("stl10")
            detector = BpromDetector(
                profile=context.profile,
                meta_classifier_kind=kind,
                seed=derive_seed(seed, "ablation-meta", kind),
            )
            detector.fit(
                reserved,
                target_train,
                target_test,
                shadow_models=context.shadow_pool(dataset),
            )
            pool, labels = build_suspicious_pool(context, dataset, attack)
            scores = [
                detector.meta_classifier.backdoor_score(detector.prompt_suspicious(entry.classifier))
                for entry in pool
            ]
            value = auroc(np.asarray(scores), np.asarray(labels))
        rows.append({"meta_classifier": kind, "auroc": value})
    return {"rows": rows, "table": format_table(rows, title="Ablation: meta-classifier")}


def run_blackbox_optimizer(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attack: str = "badnets",
    optimizers: Sequence[str] = ("cma-es", "spsa", "random"),
) -> dict:
    """Compare gradient-free optimisers used to prompt the suspicious model."""
    context = get_context(profile, seed)
    rows = []
    for optimizer in optimizers:
        local_profile = context.profile.with_overrides(
            prompt=context.profile.prompt.__class__(
                **{**context.profile.prompt.__dict__, "blackbox_optimizer": optimizer}
            )
        )
        local_context = get_context(local_profile, seed + hash(optimizer) % 997)
        metrics = bprom_detection_auroc(local_context, dataset, attack)
        rows.append({"optimizer": optimizer, "auroc": metrics["auroc"], "f1": metrics["f1"]})
    return {"rows": rows, "table": format_table(rows, title="Ablation: black-box optimizer")}


def run_query_count(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attack: str = "badnets",
    query_counts: Sequence[int] = (2, 4, 8),
) -> dict:
    """Sensitivity to the number of query samples ``q`` in the meta-feature."""
    rows = []
    base = get_context(profile, seed).profile
    for q in query_counts:
        local_context = get_context(base.with_overrides(name=f"{base.name}-q{q}", query_samples=q), seed)
        metrics = bprom_detection_auroc(local_context, dataset, attack)
        rows.append({"query_samples": q, "auroc": metrics["auroc"], "f1": metrics["f1"]})
    return {"rows": rows, "table": format_table(rows, title="Ablation: query count")}


def run_all_to_all(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
) -> dict:
    """The paper's stated limitation: all-to-all backdoors are harder to detect."""
    context = get_context(profile, seed)
    all_to_one = bprom_detection_auroc(context, dataset, "badnets")
    all_to_all = bprom_detection_auroc(context, dataset, "all_to_all")
    rows = [
        {"backdoor_type": "all-to-one (badnets)", "auroc": all_to_one["auroc"]},
        {"backdoor_type": "all-to-all", "auroc": all_to_all["auroc"]},
    ]
    return {"rows": rows, "table": format_table(rows, title="Ablation: all-to-all limitation")}
