"""Main defense-comparison experiments (Tables 5, 6, 16-21, 24-26).

One generic routine compares BPROM with the baseline defenses over a set of
attacks on a given (suspicious dataset, architecture, external dataset DT)
combination; the ``run_table*`` wrappers fix the combination each paper table
uses.  AUROC is the primary metric (F1 is also reported, covering the paper's
F1 tables).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import ExperimentProfile
from repro.eval.harness import (
    bprom_detection_auroc,
    evaluate_dataset_level_defense,
    evaluate_input_level_defense,
    evaluate_model_level_defense,
    get_context,
)
from repro.eval.tables import format_table

#: attacks used in the paper's main table, trimmed to the ones that matter most
#: for quick runs; pass ``attacks=MAIN_TABLE_ATTACKS`` for the full set.
QUICK_ATTACKS: Sequence[str] = ("badnets", "blend", "wanet")
FULL_ATTACKS: Sequence[str] = (
    "badnets",
    "blend",
    "trojan",
    "bpp",
    "wanet",
    "dynamic",
    "adaptive_blend",
    "adaptive_patch",
)

#: default baseline defenses per family used in the comparison tables
INPUT_BASELINES: Sequence[str] = ("strip", "scale_up", "teco", "sentinet", "ted", "cognitive_distillation")
DATASET_BASELINES: Sequence[str] = (
    "activation_clustering",
    "spectral_signatures",
    "scan",
    "spectre",
    "frequency",
    "confusion_training",
)
MODEL_BASELINES: Sequence[str] = ("mmbd", "mntd")


def defense_comparison(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    target_dataset: str = "stl10",
    architecture: str = "resnet18",
    attacks: Sequence[str] = QUICK_ATTACKS,
    input_defenses: Sequence[str] = ("strip", "scale_up"),
    dataset_defenses: Sequence[str] = ("activation_clustering", "spectral_signatures", "frequency"),
    model_defenses: Sequence[str] = ("mmbd",),
    include_bprom: bool = True,
    reserved_fraction: Optional[float] = None,
) -> Dict:
    """AUROC/F1 of every requested defense against every requested attack."""
    context = get_context(profile, seed)
    rows: List[Dict] = []

    def add_row(defense: str, per_attack: Dict[str, Dict[str, float]]):
        row = {"defense": defense, "dataset": dataset, "architecture": architecture}
        for attack, metrics in per_attack.items():
            row[f"{attack}_auroc"] = metrics["auroc"]
            row[f"{attack}_f1"] = metrics["f1"]
        row["avg_auroc"] = float(np.mean([m["auroc"] for m in per_attack.values()]))
        row["avg_f1"] = float(np.mean([m["f1"] for m in per_attack.values()]))
        rows.append(row)

    for defense in input_defenses:
        add_row(
            defense,
            {
                attack: evaluate_input_level_defense(
                    context, defense, dataset, attack, architecture
                )
                for attack in attacks
            },
        )
    for defense in dataset_defenses:
        add_row(
            defense,
            {
                attack: evaluate_dataset_level_defense(
                    context, defense, dataset, attack, architecture
                )
                for attack in attacks
            },
        )
    for defense in model_defenses:
        add_row(
            defense,
            {
                attack: evaluate_model_level_defense(
                    context, defense, dataset, attack, architecture
                )
                for attack in attacks
            },
        )
    if include_bprom:
        add_row(
            "bprom",
            {
                attack: bprom_detection_auroc(
                    context,
                    dataset,
                    attack,
                    target_dataset=target_dataset,
                    architecture=architecture,
                    reserved_fraction=reserved_fraction,
                )
                for attack in attacks
            },
        )
    return {"rows": rows, "table": format_table(rows, title=f"Defense comparison ({dataset}, {architecture})")}


# -- wrappers matching the paper tables --------------------------------------------

def run_table05(profile=None, seed: int = 0, attacks: Sequence[str] = QUICK_ATTACKS) -> Dict:
    """Table 5 / Table 16: ResNet18 on CIFAR-10 and GTSRB, AUROC and F1."""
    results = {}
    for dataset in ("cifar10", "gtsrb"):
        results[dataset] = defense_comparison(
            profile, seed, dataset=dataset, attacks=attacks
        )
    rows = results["cifar10"]["rows"] + results["gtsrb"]["rows"]
    return {"rows": rows, "table": format_table(rows, title="Table 5 (reproduced)")}


def run_table06(profile=None, seed: int = 0, attacks: Sequence[str] = ("badnets", "blend")) -> Dict:
    """Table 6: Tiny-ImageNet stand-in, ResNet18 and MobileNetV2."""
    rows = []
    for architecture in ("resnet18", "mobilenetv2"):
        rows.extend(
            defense_comparison(
                profile,
                seed,
                dataset="tiny_imagenet",
                architecture=architecture,
                attacks=attacks,
                input_defenses=("strip", "scale_up"),
                dataset_defenses=("scan",),
                model_defenses=("mmbd",),
            )["rows"]
        )
    return {"rows": rows, "table": format_table(rows, title="Table 6 (reproduced)")}


def run_table17_18(profile=None, seed: int = 0, attacks: Sequence[str] = ("badnets", "blend")) -> Dict:
    """Tables 17/18: MobileNetV2 as shadow and suspicious architecture."""
    rows = []
    for dataset in ("cifar10", "gtsrb"):
        rows.extend(
            defense_comparison(
                profile, seed, dataset=dataset, architecture="mobilenetv2", attacks=attacks
            )["rows"]
        )
    return {"rows": rows, "table": format_table(rows, title="Tables 17/18 (reproduced)")}


def run_table19_20(profile=None, seed: int = 0, attacks: Sequence[str] = ("badnets", "blend")) -> Dict:
    """Tables 19/20: external dataset D_T switched to SVHN."""
    rows = []
    for dataset in ("gtsrb", "cifar10"):
        result = defense_comparison(
            profile,
            seed,
            dataset=dataset,
            target_dataset="svhn",
            attacks=attacks,
            input_defenses=(),
            dataset_defenses=(),
            model_defenses=(),
        )
        rows.extend(result["rows"])
    return {"rows": rows, "table": format_table(rows, title="Tables 19/20 (reproduced)")}


def run_table21(profile=None, seed: int = 0, attacks: Sequence[str] = ("badnets", "blend")) -> Dict:
    """Table 21: D_S = CIFAR-100 stand-in (class-count mismatch with D_T)."""
    return defense_comparison(
        profile,
        seed,
        dataset="cifar100",
        attacks=attacks,
        input_defenses=("strip",),
        dataset_defenses=("spectral_signatures",),
        model_defenses=(),
    )


def run_table24_25(profile=None, seed: int = 0, attacks: Sequence[str] = ("badnets", "blend")) -> Dict:
    """Tables 24/25: transformer-family architectures (MobileViT / Swin stand-in)."""
    rows = []
    for architecture in ("mobilevit", "swin"):
        rows.extend(
            defense_comparison(
                profile,
                seed,
                dataset="cifar10",
                architecture=architecture,
                attacks=attacks,
                input_defenses=("strip",),
                dataset_defenses=("spectral_signatures",),
                model_defenses=(),
            )["rows"]
        )
    return {"rows": rows, "table": format_table(rows, title="Tables 24/25 (reproduced)")}


def run_table26(profile=None, seed: int = 0, attacks: Sequence[str] = ("badnets", "trojan")) -> Dict:
    """Table 26: ImageNet stand-in."""
    return defense_comparison(
        profile,
        seed,
        dataset="imagenet",
        attacks=attacks,
        input_defenses=("strip", "scale_up", "cognitive_distillation"),
        dataset_defenses=(),
        model_defenses=(),
    )
