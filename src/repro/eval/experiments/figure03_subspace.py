"""Figures 3 and 5 — class-subspace-inconsistency visualisations.

Figure 3: 2-D PCA projections of per-class penultimate features of a clean and
an infected source model (and of prompted target-domain features), showing the
target class crowding its neighbours in the infected model.

Figure 5: PCA of meta-feature vectors (concatenated query confidence vectors)
of many clean and backdoored models, showing that prompted clean and prompted
backdoored models separate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import ExperimentProfile
from repro.core.inconsistency import (
    class_subspace_projection,
    meta_feature_projection,
    subspace_inconsistency_score,
)
from repro.eval.harness import get_context
from repro.eval.tables import format_table


def run_figure3(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attack: str = "badnets",
) -> dict:
    """Clean vs infected source-model feature geometry + inconsistency scores."""
    context = get_context(profile, seed)
    _, test = context.datasets(dataset)
    clean_entry = context.suspicious_model(dataset, None, 0)
    infected_entry = context.suspicious_model(dataset, attack, 0)
    clean_projection = class_subspace_projection(clean_entry.classifier, test)
    infected_projection = class_subspace_projection(infected_entry.classifier, test)
    target = infected_entry.attack.target_class
    rows = [
        {
            "model": "clean",
            "mean_inconsistency": subspace_inconsistency_score(clean_entry.classifier, test),
            "target_class_inconsistency": subspace_inconsistency_score(
                clean_entry.classifier, test, target_class=target
            ),
        },
        {
            "model": f"infected ({attack})",
            "mean_inconsistency": subspace_inconsistency_score(infected_entry.classifier, test),
            "target_class_inconsistency": subspace_inconsistency_score(
                infected_entry.classifier, test, target_class=target
            ),
        },
    ]
    return {
        "rows": rows,
        "table": format_table(rows, title="Figure 3 (reproduced, scalar summary)"),
        "clean_projection": clean_projection,
        "infected_projection": infected_projection,
    }


def run_figure5(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attack: str = "trojan",
    target_dataset: str = "stl10",
) -> dict:
    """PCA of prompted meta-features of clean vs backdoored models + shadow models."""
    context = get_context(profile, seed)
    detector = context.detector(dataset, target_dataset)
    detector_key = f"fig5/{dataset}/{target_dataset}"
    query = detector.meta_classifier.query_pool.sample(
        detector.meta_classifier.query_samples, rng=seed
    )
    prompted = list(detector.prompted_shadows)
    labels = [int(s.is_backdoored) for s in detector.shadow_models]
    for index in range(context.profile.clean_suspicious_models):
        entry = context.suspicious_model(dataset, None, index)
        prompted.append(context.prompted_suspicious(detector, entry, detector_key))
        labels.append(0)
    for index in range(context.profile.backdoor_suspicious_models):
        entry = context.suspicious_model(dataset, attack, index)
        prompted.append(context.prompted_suspicious(detector, entry, detector_key))
        labels.append(1)
    projection = meta_feature_projection(prompted, labels, query.images)
    separation = _cluster_separation(projection["projection"], projection["labels"])
    rows = [{"attack": attack, "num_models": len(labels), "cluster_separation": separation}]
    return {
        "rows": rows,
        "table": format_table(rows, title="Figure 5 (reproduced, scalar summary)"),
        "projection": projection,
    }


def _cluster_separation(points: np.ndarray, labels: np.ndarray) -> float:
    """Distance between class centroids divided by mean within-class spread."""
    clean = points[labels == 0]
    backdoored = points[labels == 1]
    if len(clean) == 0 or len(backdoored) == 0:
        return float("nan")
    centroid_distance = float(np.linalg.norm(clean.mean(axis=0) - backdoored.mean(axis=0)))
    spread = float(
        np.mean(
            [np.linalg.norm(group - group.mean(axis=0), axis=1).mean()
             for group in (clean, backdoored) if len(group) > 1]
        )
    )
    return centroid_distance / max(spread, 1e-9)
