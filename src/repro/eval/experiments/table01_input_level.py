"""Table 1 — input-level detectors (TeCo, SCALE-UP) degrade on clean models.

For each attack, the input-level detector's AUROC/F1 is measured twice: on a
backdoored model (where the trigger actually works) and on a clean model
(where "triggered" inputs are harmless).  The paper's point is that the clean
case collapses to chance, motivating model-level detection as a front line.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import ExperimentProfile
from repro.eval.harness import evaluate_input_level_defense, get_context
from repro.eval.tables import format_table

DEFAULT_ATTACKS: Sequence[str] = ("badnets", "blend", "wanet")
DEFAULT_DEFENSES: Sequence[str] = ("teco", "scale_up")


def run(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attacks: Sequence[str] = DEFAULT_ATTACKS,
    defenses: Sequence[str] = DEFAULT_DEFENSES,
) -> dict:
    context = get_context(profile, seed)
    rows = []
    for defense in defenses:
        for attack in attacks:
            on_backdoored = evaluate_input_level_defense(
                context, defense, dataset, attack, on_clean_model=False
            )
            on_clean = evaluate_input_level_defense(
                context, defense, dataset, attack, on_clean_model=True
            )
            rows.append(
                {
                    "defense": defense,
                    "attack": attack,
                    "auroc_backdoored": on_backdoored["auroc"],
                    "f1_backdoored": on_backdoored["f1"],
                    "auroc_clean_model": on_clean["auroc"],
                    "f1_clean_model": on_clean["f1"],
                }
            )
    return {"rows": rows, "table": format_table(rows, title="Table 1 (reproduced)")}
