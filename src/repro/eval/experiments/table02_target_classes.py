"""Table 2 — class-subspace inconsistency worsens with more target classes.

Several independent BadNets backdoors (each with its own target class) are
injected into the same training set; the prompted model's target-task accuracy
is measured as the number of distinct target classes grows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.attacks import build_attack
from repro.config import ExperimentProfile
from repro.eval.harness import get_context
from repro.eval.tables import format_table
from repro.models.registry import build_classifier
from repro.prompting import train_prompt_whitebox
from repro.utils.rng import derive_seed


def run(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    datasets: Sequence[str] = ("cifar10", "gtsrb"),
    target_class_counts: Sequence[int] = (1, 2, 3),
    target_dataset: str = "stl10",
    poison_rate_per_class: float = 0.12,
) -> dict:
    context = get_context(profile, seed)
    dt_train, dt_test = context.datasets(target_dataset)
    rows = []
    for dataset in datasets:
        train, _ = context.datasets(dataset)
        for count in target_class_counts:
            poisoned = train.copy()
            for target in range(count):
                attack = build_attack(
                    "badnets", target_class=target, seed=derive_seed(seed, "t2", dataset, target)
                )
                poisoned = attack.poison(
                    poisoned, poison_rate=poison_rate_per_class,
                    rng=derive_seed(seed, "t2-poison", dataset, target),
                ).dataset
            model_seed = derive_seed(seed, "t2-model", dataset, count)
            classifier = build_classifier(
                "resnet18", train.num_classes, context.profile.image_size, rng=model_seed
            )
            classifier.fit(poisoned, context.profile.classifier, rng=model_seed + 1)
            prompted = train_prompt_whitebox(
                classifier, dt_train, context.profile.prompt, rng=model_seed + 2
            )
            rows.append(
                {
                    "dataset": dataset,
                    "num_target_classes": count,
                    "prompted_accuracy": prompted.evaluate(dt_test),
                }
            )
    return {"rows": rows, "table": format_table(rows, title="Table 2 (reproduced)")}
