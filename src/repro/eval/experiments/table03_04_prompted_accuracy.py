"""Tables 3 and 4 — prompted-model accuracy vs. trigger size and poison rate.

Backdoored models (Blend and Adap-Blend) are trained with varying trigger
region sizes and poison rates; each is then visually prompted onto STL-10 and
its prompted accuracy reported.  The paper's trend: larger triggers and higher
poison rates distort the feature space more, so prompted accuracy drops.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.attacks import attack_defaults, build_attack
from repro.config import ExperimentProfile
from repro.eval.harness import get_context
from repro.eval.tables import format_table
from repro.models.registry import build_classifier
from repro.prompting import train_prompt_whitebox
from repro.utils.rng import derive_seed


def _prompted_accuracy_for(
    context,
    dataset: str,
    attack_name: str,
    target_dataset: str,
    seed_salt,
    poison_rate: float,
    region_size: Optional[int],
) -> float:
    train, _ = context.datasets(dataset)
    dt_train, dt_test = context.datasets(target_dataset)
    seed = derive_seed(context.seed, "t34", dataset, attack_name, seed_salt)
    kwargs = {}
    if region_size is not None:
        kwargs["region_size"] = region_size
    attack = build_attack(attack_name, target_class=0, seed=seed, **kwargs)
    defaults = attack_defaults(attack_name)
    poisoning = attack.poison(
        train, poison_rate=poison_rate, cover_rate=defaults.cover_rate, rng=seed + 1
    )
    classifier = build_classifier(
        "resnet18", train.num_classes, context.profile.image_size, rng=seed + 2
    )
    classifier.fit(poisoning.dataset, context.profile.classifier, rng=seed + 3)
    prompted = train_prompt_whitebox(
        classifier, dt_train, context.profile.prompt, rng=seed + 4
    )
    return prompted.evaluate(dt_test)


def run_trigger_size(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    datasets: Sequence[str] = ("cifar10", "gtsrb"),
    attacks: Sequence[str] = ("blend", "adaptive_blend"),
    trigger_sizes: Sequence[int] = (4, 8, 16),
    target_dataset: str = "stl10",
) -> dict:
    """Table 3: prompted accuracy for different trigger (blend-region) sizes."""
    context = get_context(profile, seed)
    rows = []
    for dataset in datasets:
        for size in trigger_sizes:
            row = {"dataset": dataset, "trigger_size": size}
            for attack in attacks:
                region = min(size, context.profile.image_size)
                row[attack] = _prompted_accuracy_for(
                    context, dataset, attack, target_dataset,
                    seed_salt=("size", size), poison_rate=attack_defaults(attack).poison_rate,
                    region_size=region,
                )
            rows.append(row)
    return {"rows": rows, "table": format_table(rows, title="Table 3 (reproduced)")}


def run_poison_rate(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    datasets: Sequence[str] = ("cifar10", "gtsrb"),
    attacks: Sequence[str] = ("blend", "adaptive_blend"),
    poison_rates: Sequence[float] = (0.05, 0.10, 0.20),
    target_dataset: str = "stl10",
) -> dict:
    """Table 4: prompted accuracy for different poison rates."""
    context = get_context(profile, seed)
    rows = []
    for dataset in datasets:
        for rate in poison_rates:
            row = {"dataset": dataset, "poison_rate": rate}
            for attack in attacks:
                row[attack] = _prompted_accuracy_for(
                    context, dataset, attack, target_dataset,
                    seed_salt=("rate", rate), poison_rate=rate, region_size=None,
                )
            rows.append(row)
    return {"rows": rows, "table": format_table(rows, title="Table 4 (reproduced)")}
