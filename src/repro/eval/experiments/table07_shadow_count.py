"""Table 7 — detection AUROC vs. the number of shadow models."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.config import ExperimentProfile
from repro.eval.harness import bprom_detection_auroc, get_context
from repro.eval.tables import format_table


def run(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attack: str = "blend",
    shadow_counts: Sequence[Tuple[int, int]] = ((1, 1), (2, 2), (3, 3)),
) -> dict:
    """Each entry of ``shadow_counts`` is (clean shadows, backdoored shadows)."""
    context = get_context(profile, seed)
    rows = []
    for num_clean, num_backdoor in shadow_counts:
        metrics = bprom_detection_auroc(
            context,
            dataset,
            attack,
            num_clean_shadows=num_clean,
            num_backdoor_shadows=num_backdoor,
        )
        rows.append(
            {
                "shadow_models": f"{num_clean + num_backdoor} ({num_clean}+{num_backdoor})",
                "auroc": metrics["auroc"],
                "f1": metrics["f1"],
            }
        )
    return {"rows": rows, "table": format_table(rows, title="Table 7 (reproduced)")}
