"""Tables 8 and 9 — ASR and detection AUROC vs. trigger size and poison rate.

The paper's message: attacks get stronger (higher ASR) with bigger triggers
and higher poison rates, yet BPROM's AUROC stays stable.
"""

from __future__ import annotations

from typing import Optional, Sequence


from repro.config import ExperimentProfile
from repro.eval.harness import bprom_detection_auroc, get_context
from repro.eval.tables import format_table


def run_trigger_size(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attacks: Sequence[str] = ("blend", "adaptive_blend"),
    trigger_sizes: Sequence[int] = (4, 8, 16),
) -> dict:
    """Table 8: ASR and AUROC for different blend-region sizes."""
    context = get_context(profile, seed)
    rows = []
    for size in trigger_sizes:
        row = {"dataset": dataset, "trigger_size": size}
        for attack in attacks:
            region = min(size, context.profile.image_size)
            metrics = bprom_detection_auroc(
                context, dataset, attack,
                attack_kwargs={"region_size": region},
            )
            row[f"{attack}_asr"] = metrics["mean_asr"]
            row[f"{attack}_auroc"] = metrics["auroc"]
        rows.append(row)
    return {"rows": rows, "table": format_table(rows, title="Table 8 (reproduced)")}


def run_poison_rate(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attacks: Sequence[str] = ("blend", "adaptive_blend"),
    poison_rates: Sequence[float] = (0.05, 0.10, 0.20),
) -> dict:
    """Table 9: ASR and AUROC for different poison rates."""
    context = get_context(profile, seed)
    rows = []
    for rate in poison_rates:
        row = {"dataset": dataset, "poison_rate": rate}
        for attack in attacks:
            metrics = bprom_detection_auroc(
                context, dataset, attack, poison_rate=rate,
            )
            row[f"{attack}_asr"] = metrics["mean_asr"]
            row[f"{attack}_auroc"] = metrics["auroc"]
        rows.append(row)
    return {"rows": rows, "table": format_table(rows, title="Table 9 (reproduced)")}
