"""Table 10 — shadow/suspicious architecture mismatch (ResNet shadows, MobileNet suspects)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import ExperimentProfile
from repro.eval.harness import bprom_detection_auroc, get_context
from repro.eval.tables import format_table


def run(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attacks: Sequence[str] = ("wanet", "adaptive_blend", "adaptive_patch"),
    shadow_architecture: str = "resnet18",
    suspicious_architecture: str = "mobilenetv2",
) -> dict:
    context = get_context(profile, seed)
    rows = []
    for attack in attacks:
        metrics = bprom_detection_auroc(
            context,
            dataset,
            attack,
            architecture=shadow_architecture,
            suspicious_architecture=suspicious_architecture,
        )
        rows.append({"attack": attack, "auroc": metrics["auroc"], "f1": metrics["f1"]})
    return {"rows": rows, "table": format_table(rows, title="Table 10 (reproduced)")}
