"""Table 11 — adaptive attack via very low poison rates (BadNets on CIFAR-10)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import ExperimentProfile
from repro.eval.harness import bprom_detection_auroc, get_context
from repro.eval.tables import format_table


def run(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attack: str = "badnets",
    poison_rates: Sequence[float] = (0.02, 0.05, 0.10, 0.20),
) -> dict:
    """The paper sweeps 0.2%-10%; the scaled-down datasets bottom out at ~2%
    (one poisoned sample), so the sweep starts there."""
    context = get_context(profile, seed)
    rows = []
    for rate in poison_rates:
        metrics = bprom_detection_auroc(context, dataset, attack, poison_rate=rate)
        rows.append(
            {
                "poison_rate": rate,
                "asr": metrics["mean_asr"],
                "auroc": metrics["auroc"],
                "f1": metrics["f1"],
            }
        )
    return {"rows": rows, "table": format_table(rows, title="Table 11 (reproduced)")}
