"""Table 12 — clean-label adaptive attacks (SIG and Label-Consistent)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import ExperimentProfile
from repro.eval.harness import bprom_detection_auroc, get_context
from repro.eval.tables import format_table


def run(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    datasets: Sequence[str] = ("cifar10", "gtsrb"),
    attacks: Sequence[str] = ("sig", "label_consistent"),
) -> dict:
    context = get_context(profile, seed)
    rows = []
    for dataset in datasets:
        row = {"dataset": dataset}
        for attack in attacks:
            metrics = bprom_detection_auroc(context, dataset, attack)
            row[f"{attack}_auroc"] = metrics["auroc"]
            row[f"{attack}_f1"] = metrics["f1"]
        rows.append(row)
    return {"rows": rows, "table": format_table(rows, title="Table 12 (reproduced)")}
