"""Tables 14/15 — clean accuracy and attack success rate of the infected models."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import ExperimentProfile
from repro.eval.harness import get_context
from repro.eval.tables import format_table


def run(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    datasets: Sequence[str] = ("cifar10", "gtsrb"),
    architectures: Sequence[str] = ("resnet18", "mobilenetv2"),
    attacks: Sequence[str] = ("badnets", "blend", "wanet", "adaptive_blend"),
) -> dict:
    context = get_context(profile, seed)
    rows = []
    for architecture in architectures:
        for dataset in datasets:
            clean_entry = context.suspicious_model(dataset, None, 0, architecture)
            row = {
                "architecture": architecture,
                "dataset": dataset,
                "clean_model_accuracy": clean_entry.clean_accuracy,
            }
            for attack in attacks:
                entry = context.suspicious_model(dataset, attack, 0, architecture)
                row[f"{attack}_acc"] = entry.clean_accuracy
                row[f"{attack}_asr"] = entry.attack_success_rate
            rows.append(row)
    return {"rows": rows, "table": format_table(rows, title="Tables 14/15 (reproduced)")}
