"""Table 22 — feature-based backdoors: Refool, BPP and Poison Ink."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import ExperimentProfile
from repro.eval.harness import bprom_detection_auroc, get_context
from repro.eval.tables import format_table


def run(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attacks: Sequence[str] = ("refool", "bpp", "poison_ink"),
) -> dict:
    context = get_context(profile, seed)
    rows = []
    for attack in attacks:
        metrics = bprom_detection_auroc(context, dataset, attack)
        rows.append(
            {"attack": attack, "dataset": dataset, "f1": metrics["f1"], "auroc": metrics["auroc"]}
        )
    return {"rows": rows, "table": format_table(rows, title="Table 22 (reproduced)")}
