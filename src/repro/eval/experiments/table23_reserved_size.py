"""Table 23 — impact of the reserved clean dataset size ``D_S`` (1% / 5% / 10%)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import ExperimentProfile
from repro.eval.harness import bprom_detection_auroc, get_context
from repro.eval.tables import format_table


def run(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    dataset: str = "cifar10",
    attack: str = "badnets",
    fractions: Sequence[float] = (0.01, 0.05, 0.10),
) -> dict:
    context = get_context(profile, seed)
    rows = []
    for fraction in fractions:
        metrics = bprom_detection_auroc(
            context, dataset, attack, reserved_fraction=fraction
        )
        rows.append(
            {
                "reserved_fraction": fraction,
                "auroc": metrics["auroc"],
                "f1": metrics["f1"],
            }
        )
    return {"rows": rows, "table": format_table(rows, title="Table 23 (reproduced)")}
