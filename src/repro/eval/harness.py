"""Shared experiment machinery: artifact-backed caches and per-defense evaluation.

Every experiment in :mod:`repro.eval.experiments` goes through an
:class:`ExperimentContext`, which lazily builds the expensive artefacts
(datasets, trained suspicious models, shadow pools, fitted BPROM detectors,
prompted suspicious models).  Caching is two-tier:

* an in-memory memo (keyed on every parameter that affects the artefact)
  preserves object identity within a process, so experiments that share a
  configuration — e.g. the main table and the F1 table — reuse the same
  trained models instead of retraining them;
* when the context's :class:`~repro.config.RuntimeConfig` names a cache
  directory, the persistent :class:`~repro.runtime.store.ArtifactStore`
  backs the memo, so trained models, prompts and fitted detectors survive a
  process restart — a warm store makes a repeated ``detector(...)`` call
  skip all training.

The embarrassingly-parallel builds (shadow pools, suspicious-model zoos)
additionally fan out over the context's
:class:`~repro.runtime.executor.ParallelExecutor` when ``workers > 1``.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.attacks.base import BackdoorAttack
from repro.attacks.registry import attack_defaults, build_attack, canonical_attack_name
from repro.config import ExperimentProfile, FAST, RuntimeConfig, profile_to_dict
from repro.core.detector import BpromDetector
from repro.core.shadow import ShadowModel, ShadowModelFactory
from repro.datasets.base import ImageDataset
from repro.datasets.registry import build_distribution, load_dataset
from repro.defenses.base import (
    DatasetLevelDefense,
    InputLevelDefense,
    ModelLevelDefense,
    triggered_and_clean_split,
)
from repro.defenses.model_level import MNTDDefense
from repro.defenses.registry import build_defense
from repro.ml.metrics import auroc, best_f1_from_scores
from repro.models.classifier import ImageClassifier
from repro.models.registry import build_classifier
from repro.prompting.prompted import PromptedClassifier
from repro.runtime import serialization as ser
from repro.runtime.executor import ParallelExecutor
from repro.runtime.store import MISS, ArtifactStore, state_fingerprint
from repro.utils.rng import derive_seed, new_rng


class SuspiciousModel:
    """One entry of the suspicious-model zoo."""

    def __init__(
        self,
        classifier: ImageClassifier,
        is_backdoored: bool,
        attack: Optional[BackdoorAttack] = None,
        attack_name: Optional[str] = None,
        poisoning=None,
        clean_accuracy: float = float("nan"),
        attack_success_rate: float = float("nan"),
    ) -> None:
        self.classifier = classifier
        self.is_backdoored = is_backdoored
        self.attack = attack
        self.attack_name = attack_name
        self.poisoning = poisoning
        self.clean_accuracy = clean_accuracy
        self.attack_success_rate = attack_success_rate


def _build_suspicious_entry(context: "ExperimentContext", key: Tuple) -> SuspiciousModel:
    """Module-level builder so executors can fan suspicious pools out."""
    return context._suspicious_entry(key)


class ExperimentContext:
    """Caches datasets, models and detectors for one (profile, seed) pair."""

    def __init__(
        self,
        profile: Optional[ExperimentProfile] = None,
        seed: int = 0,
        runtime: Optional[RuntimeConfig] = None,
    ) -> None:
        self.profile = profile or FAST
        self.seed = int(seed)
        self.runtime = runtime
        self.store = ArtifactStore.from_config(runtime)
        self.executor = ParallelExecutor.from_config(runtime)
        self._datasets: Dict[Tuple, Tuple[ImageDataset, ImageDataset]] = {}
        self._reserved: Dict[Tuple, ImageDataset] = {}
        self._suspicious: Dict[Tuple, SuspiciousModel] = {}
        self._detectors: Dict[Tuple, BpromDetector] = {}
        self._shadow_pools: Dict[Tuple, List[ShadowModel]] = {}
        self._prompted_suspicious: Dict[Tuple, PromptedClassifier] = {}
        self._mntd: Dict[Tuple, MNTDDefense] = {}

    def _store_key(self, **payload) -> dict:
        """Artifact-store key payload: profile + seed + artefact parameters."""
        return {"profile": profile_to_dict(self.profile), "seed": self.seed, **payload}

    # -- datasets ----------------------------------------------------------------
    def datasets(self, name: str) -> Tuple[ImageDataset, ImageDataset]:
        key = (name,)
        if key not in self._datasets:
            self._datasets[key] = load_dataset(name, self.profile, seed=self.seed)
        return self._datasets[key]

    def reserved_clean(self, name: str, fraction: Optional[float] = None) -> ImageDataset:
        """The defender's reserved clean dataset ``D_S``.

        ``fraction`` follows the paper's 1% / 5% / 10% convention; the sample
        counts are scaled so that 10% corresponds to the profile's test split
        (see EXPERIMENTS.md for the exact mapping).
        """
        fraction = fraction if fraction is not None else self.profile.reserved_fraction
        key = (name, round(float(fraction), 4))
        if key not in self._reserved:
            distribution = build_distribution(name, self.profile)
            per_class = max(4, int(round(self.profile.test_per_class * fraction / 0.10)))
            rng = new_rng(derive_seed(self.seed, "reserved", name, key[1]))
            self._reserved[key] = distribution.sample(per_class, rng=rng, name_suffix="-reserved")
        return self._reserved[key]

    # -- suspicious models ----------------------------------------------------------
    def _suspicious_entry(self, key: Tuple) -> SuspiciousModel:
        """Build (or fetch from the artifact store) one suspicious model.

        Datasets, attacks and poisoning are cheap and deterministic given the
        seed, so a store hit re-derives them and only skips the expensive
        ``classifier.fit`` by loading the trained weights.
        """
        (
            dataset_name,
            attack_name,
            index,
            architecture,
            poison_rate,
            cover_rate,
            kwargs_items,
            target_class,
        ) = key
        attack_kwargs = dict(kwargs_items)
        train, test = self.datasets(dataset_name)
        seed = derive_seed(self.seed, "suspicious", *key)
        name = f"{architecture}/{dataset_name}/{attack_name or 'clean'}/{index}"
        store_key = self._store_key(
            kind="suspicious",
            dataset=dataset_name,
            attack=attack_name,
            index=index,
            architecture=architecture,
            poison_rate=poison_rate,
            cover_rate=cover_rate,
            attack_kwargs=sorted(attack_kwargs.items()),
            target_class=target_class,
        )
        loaded = self.store.try_load(
            "suspicious",
            store_key,
            lambda artifact: (ser.load_classifier(artifact), artifact.load_json("metrics")),
        )
        if loaded is MISS:
            loaded = None

        def make_classifier() -> ImageClassifier:
            return build_classifier(
                architecture,
                train.num_classes,
                image_size=self.profile.image_size,
                rng=seed,
                name=name,
            )

        if attack_name is None:
            if loaded is not None:
                classifier, metrics = loaded
                return SuspiciousModel(classifier, False, clean_accuracy=metrics["clean_accuracy"])
            classifier = make_classifier()
            classifier.fit(train, self.profile.classifier, rng=seed + 1)
            entry = SuspiciousModel(classifier, False, clean_accuracy=classifier.evaluate(test))
            if self.store.enabled:
                with self.store.open_write("suspicious", store_key) as artifact:
                    ser.save_classifier(artifact, classifier)
                    artifact.save_json("metrics", {"clean_accuracy": entry.clean_accuracy})
            return entry

        canonical = canonical_attack_name(attack_name)
        attack = build_attack(
            canonical, target_class=target_class, seed=seed + 2, **attack_kwargs
        )
        defaults = attack_defaults(canonical)
        poisoning = attack.poison(
            train,
            poison_rate=poison_rate if poison_rate is not None else defaults.poison_rate,
            cover_rate=cover_rate if cover_rate is not None else defaults.cover_rate,
            rng=seed + 3,
        )
        if loaded is not None:
            classifier, metrics = loaded
            return SuspiciousModel(
                classifier,
                True,
                attack=attack,
                attack_name=canonical,
                poisoning=poisoning,
                clean_accuracy=metrics["clean_accuracy"],
                attack_success_rate=metrics["attack_success_rate"],
            )
        classifier = make_classifier()
        classifier.fit(poisoning.dataset, self.profile.classifier, rng=seed + 4)
        triggered = attack.triggered_test_set(test)
        asr = classifier.evaluate_attack_success(
            triggered.images, attack.target_class, test.labels
        )
        entry = SuspiciousModel(
            classifier,
            True,
            attack=attack,
            attack_name=canonical,
            poisoning=poisoning,
            clean_accuracy=classifier.evaluate(test),
            attack_success_rate=asr,
        )
        if self.store.enabled:
            with self.store.open_write("suspicious", store_key) as artifact:
                ser.save_classifier(artifact, classifier)
                artifact.save_json(
                    "metrics",
                    {
                        "clean_accuracy": entry.clean_accuracy,
                        "attack_success_rate": entry.attack_success_rate,
                    },
                )
        return entry

    def suspicious_model(
        self,
        dataset_name: str,
        attack_name: Optional[str],
        index: int,
        architecture: str = "resnet18",
        poison_rate: Optional[float] = None,
        cover_rate: Optional[float] = None,
        attack_kwargs: Optional[dict] = None,
        target_class: int = 0,
    ) -> SuspiciousModel:
        """Train (or fetch from cache) one suspicious model."""
        attack_kwargs = attack_kwargs or {}
        key = (
            dataset_name,
            attack_name,
            index,
            architecture,
            poison_rate,
            cover_rate,
            tuple(sorted(attack_kwargs.items())),
            target_class,
        )
        if key in self._suspicious:
            return self._suspicious[key]
        entry = self._suspicious_entry(key)
        self._suspicious[key] = entry
        return entry

    def suspicious_pool(
        self,
        dataset_name: str,
        attack_name: Optional[str],
        count: int,
        architecture: str = "resnet18",
        poison_rate: Optional[float] = None,
        cover_rate: Optional[float] = None,
        attack_kwargs: Optional[dict] = None,
        target_class: int = 0,
    ) -> List[SuspiciousModel]:
        """A batch of suspicious models; missing entries are built concurrently."""
        attack_kwargs = attack_kwargs or {}
        keys = [
            (
                dataset_name,
                attack_name,
                index,
                architecture,
                poison_rate,
                cover_rate,
                tuple(sorted(attack_kwargs.items())),
                target_class,
            )
            for index in range(count)
        ]
        missing = [key for key in keys if key not in self._suspicious]
        if missing:
            # datasets are shared state: materialise them before fanning out
            self.datasets(dataset_name)
            built = self.executor.map(partial(_build_suspicious_entry, self), missing)
            for key, entry in zip(missing, built):
                self._suspicious[key] = entry
        return [self._suspicious[key] for key in keys]

    # -- shadow pools and detectors --------------------------------------------------
    def shadow_pool(
        self,
        dataset_name: str,
        architecture: str = "resnet18",
        shadow_attack: str = "badnets",
        reserved_fraction: Optional[float] = None,
        num_clean: Optional[int] = None,
        num_backdoor: Optional[int] = None,
    ) -> List[ShadowModel]:
        key = (dataset_name, architecture, shadow_attack, reserved_fraction, num_clean, num_backdoor)
        if key not in self._shadow_pools:
            reserved = self.reserved_clean(dataset_name, reserved_fraction)
            factory = ShadowModelFactory(
                profile=self.profile,
                architecture=architecture,
                shadow_attack=shadow_attack,
                seed=derive_seed(self.seed, "shadow-pool", *key[:3]),
            )
            store_key = self._store_key(
                kind="shadow-pool",
                dataset=dataset_name,
                architecture=architecture,
                shadow_attack=shadow_attack,
                reserved_fraction=reserved_fraction,
                num_clean=num_clean,
                num_backdoor=num_backdoor,
            )
            self._shadow_pools[key] = self.store.fetch(
                "shadow-pool",
                store_key,
                build=lambda: factory.build_pool(
                    reserved,
                    num_clean=num_clean,
                    num_backdoor=num_backdoor,
                    executor=self.executor,
                ),
                save=ser.save_shadow_pool,
                load=ser.load_shadow_pool,
            )
        return self._shadow_pools[key]

    def detector(
        self,
        source_dataset: str,
        target_dataset: str = "stl10",
        architecture: str = "resnet18",
        shadow_attack: str = "badnets",
        reserved_fraction: Optional[float] = None,
        num_clean_shadows: Optional[int] = None,
        num_backdoor_shadows: Optional[int] = None,
    ) -> BpromDetector:
        """A fitted BPROM detector (cached in memory and in the artifact store)."""
        key = (
            source_dataset,
            target_dataset,
            architecture,
            shadow_attack,
            reserved_fraction,
            num_clean_shadows,
            num_backdoor_shadows,
        )
        if key in self._detectors:
            return self._detectors[key]
        store_key = self._store_key(
            kind="detector",
            source_dataset=source_dataset,
            target_dataset=target_dataset,
            architecture=architecture,
            shadow_attack=shadow_attack,
            reserved_fraction=reserved_fraction,
            num_clean_shadows=num_clean_shadows,
            num_backdoor_shadows=num_backdoor_shadows,
        )

        def build() -> BpromDetector:
            reserved = self.reserved_clean(source_dataset, reserved_fraction)
            target_train, target_test = self.datasets(target_dataset)
            shadows = self.shadow_pool(
                source_dataset,
                architecture,
                shadow_attack,
                reserved_fraction,
                num_clean_shadows,
                num_backdoor_shadows,
            )
            detector = BpromDetector(
                profile=self.profile,
                architecture=architecture,
                shadow_attack=shadow_attack,
                seed=derive_seed(self.seed, "detector", *key),
                runtime=self.runtime,
            )
            detector.fit(reserved, target_train, target_test, shadow_models=shadows)
            return detector

        def load(artifact) -> BpromDetector:
            # reattach the (store-backed) shadow pool so experiments reading
            # detector.shadow_models / prompted_shadows — e.g. the figure 5
            # projection — behave identically on warm and cold caches
            shadows = self.shadow_pool(
                source_dataset,
                architecture,
                shadow_attack,
                reserved_fraction,
                num_clean_shadows,
                num_backdoor_shadows,
            )
            return BpromDetector.load(
                artifact.directory, runtime=self.runtime, shadow_models=shadows
            )

        detector = self.store.fetch(
            "detector",
            store_key,
            build=build,
            save=lambda artifact, det: det.save(artifact.directory),
            load=load,
        )
        self._detectors[key] = detector
        return detector

    def detector_cache_key(
        self,
        source_dataset: str,
        target_dataset: str,
        architecture: str,
        shadow_attack: str,
        reserved_fraction: Optional[float],
        num_clean_shadows: Optional[int],
        num_backdoor_shadows: Optional[int],
    ) -> str:
        """Stable identity of a detector configuration (for prompted-model caches).

        Includes every parameter that affects the fitted detector — notably
        ``shadow_attack``, so prompted-suspicious cache entries cannot collide
        across detectors trained with different shadow attacks.
        """
        return "/".join(
            str(part)
            for part in (
                source_dataset,
                target_dataset,
                architecture,
                shadow_attack,
                reserved_fraction,
                num_clean_shadows,
                num_backdoor_shadows,
            )
        )

    def prompted_suspicious(
        self,
        detector: BpromDetector,
        entry: SuspiciousModel,
        detector_key: str,
    ) -> PromptedClassifier:
        """Black-box prompted view of one suspicious model (cached).

        Keyed on the classifier's weight fingerprint, not just its name:
        sweep experiments reuse names across poison rates / attack kwargs,
        and a name-only key would serve a prompt trained against a different
        model.
        """
        fingerprint = state_fingerprint(entry.classifier.state_dict())
        key = (detector_key, entry.classifier.name, fingerprint)
        if key not in self._prompted_suspicious:
            store_key = self._store_key(
                kind="prompted-suspicious",
                detector=detector_key,
                model=entry.classifier.name,
                model_state=fingerprint,
            )
            self._prompted_suspicious[key] = self.store.fetch(
                "prompted-suspicious",
                store_key,
                build=lambda: detector.prompt_suspicious(entry.classifier),
                save=ser.save_prompted,
                load=lambda artifact: ser.load_prompted(artifact, entry.classifier),
            )
        return self._prompted_suspicious[key]

    def mntd(self, dataset_name: str, architecture: str = "resnet18") -> MNTDDefense:
        key = (dataset_name, architecture)
        if key not in self._mntd:
            defense = MNTDDefense(
                profile=self.profile,
                architecture=architecture,
                seed=derive_seed(self.seed, "mntd", dataset_name, architecture),
            )
            defense.fit(
                self.reserved_clean(dataset_name),
                shadow_models=self.shadow_pool(dataset_name, architecture),
            )
            self._mntd[key] = defense
        return self._mntd[key]


_CONTEXTS: Dict[Tuple[str, int], ExperimentContext] = {}


def get_context(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    runtime: Optional[RuntimeConfig] = None,
) -> ExperimentContext:
    """Process-wide cached context so benchmarks share trained models.

    ``runtime`` only applies when the context is first created; pass
    ``RuntimeConfig.from_env()`` (or set ``REPRO_WORKERS`` / ``REPRO_CACHE_DIR``)
    to parallelise and persist the benchmark runs.
    """
    profile = profile or FAST
    key = (profile.name, int(seed))
    if key not in _CONTEXTS:
        _CONTEXTS[key] = ExperimentContext(profile, seed, runtime=runtime)
    return _CONTEXTS[key]


# ---------------------------------------------------------------------------
# evaluation entry points used by the experiment modules
# ---------------------------------------------------------------------------

def build_suspicious_pool(
    context: ExperimentContext,
    dataset_name: str,
    attack_name: str,
    architecture: str = "resnet18",
    num_clean: Optional[int] = None,
    num_backdoor: Optional[int] = None,
    **kwargs,
) -> Tuple[List[SuspiciousModel], List[int]]:
    """Clean + attack-specific backdoored suspicious models with 0/1 labels."""
    num_clean = num_clean if num_clean is not None else context.profile.clean_suspicious_models
    num_backdoor = (
        num_backdoor if num_backdoor is not None else context.profile.backdoor_suspicious_models
    )
    pool = context.suspicious_pool(dataset_name, None, num_clean, architecture)
    pool += context.suspicious_pool(dataset_name, attack_name, num_backdoor, architecture, **kwargs)
    labels = [0] * num_clean + [1] * num_backdoor
    return pool, labels


def bprom_detection_auroc(
    context: ExperimentContext,
    dataset_name: str,
    attack_name: str,
    target_dataset: str = "stl10",
    architecture: str = "resnet18",
    suspicious_architecture: Optional[str] = None,
    shadow_attack: str = "badnets",
    reserved_fraction: Optional[float] = None,
    num_clean_shadows: Optional[int] = None,
    num_backdoor_shadows: Optional[int] = None,
    **pool_kwargs,
) -> Dict[str, float]:
    """AUROC / F1 of BPROM distinguishing clean from ``attack_name``-backdoored models."""
    detector = context.detector(
        dataset_name,
        target_dataset,
        architecture,
        shadow_attack=shadow_attack,
        reserved_fraction=reserved_fraction,
        num_clean_shadows=num_clean_shadows,
        num_backdoor_shadows=num_backdoor_shadows,
    )
    detector_key = context.detector_cache_key(
        dataset_name,
        target_dataset,
        architecture,
        shadow_attack,
        reserved_fraction,
        num_clean_shadows,
        num_backdoor_shadows,
    )
    pool, labels = build_suspicious_pool(
        context,
        dataset_name,
        attack_name,
        architecture=suspicious_architecture or architecture,
        **pool_kwargs,
    )
    scores = []
    prompted_accuracies = []
    for entry in pool:
        prompted = context.prompted_suspicious(detector, entry, detector_key)
        scores.append(detector.meta_classifier.backdoor_score(prompted))
        prompted_accuracies.append(prompted.evaluate(detector.meta_classifier.query_pool))
    scores = np.asarray(scores)
    labels_arr = np.asarray(labels)
    backdoored = labels_arr == 1
    return {
        "auroc": auroc(scores, labels_arr),
        "f1": best_f1_from_scores(scores, labels_arr),
        "mean_clean_score": float(scores[~backdoored].mean()),
        "mean_backdoor_score": float(scores[backdoored].mean()),
        "mean_clean_prompted_accuracy": float(np.mean(np.asarray(prompted_accuracies)[~backdoored])),
        "mean_backdoor_prompted_accuracy": float(np.mean(np.asarray(prompted_accuracies)[backdoored])),
        "mean_asr": float(np.nanmean([entry.attack_success_rate for entry in pool if entry.is_backdoored])),
    }


def evaluate_input_level_defense(
    context: ExperimentContext,
    defense_name: str,
    dataset_name: str,
    attack_name: str,
    architecture: str = "resnet18",
    on_clean_model: bool = False,
    max_samples: int = 48,
) -> Dict[str, float]:
    """AUROC / F1 of an input-level defense separating triggered from benign inputs."""
    _, test = context.datasets(dataset_name)
    auxiliary = context.reserved_clean(dataset_name)
    defense = build_defense(defense_name, auxiliary_data=auxiliary, rng=context.seed)
    if not isinstance(defense, InputLevelDefense):
        raise TypeError(f"{defense_name!r} is not an input-level defense")
    backdoored = context.suspicious_model(dataset_name, attack_name, 0, architecture)
    model_entry = (
        context.suspicious_model(dataset_name, None, 0, architecture)
        if on_clean_model
        else backdoored
    )
    clean_images, triggered_images = triggered_and_clean_split(
        backdoored.attack, test, max_samples=max_samples, rng=context.seed
    )
    evaluation = defense.evaluate(model_entry.classifier, clean_images, triggered_images)
    return {"auroc": evaluation.auroc, "f1": evaluation.f1}


def evaluate_dataset_level_defense(
    context: ExperimentContext,
    defense_name: str,
    dataset_name: str,
    attack_name: str,
    architecture: str = "resnet18",
) -> Dict[str, float]:
    """AUROC / F1 of a dataset-level defense recovering the poisoned training samples."""
    defense = build_defense(defense_name, rng=context.seed)
    if not isinstance(defense, DatasetLevelDefense):
        raise TypeError(f"{defense_name!r} is not a dataset-level defense")
    entry = context.suspicious_model(dataset_name, attack_name, 0, architecture)
    evaluation = defense.evaluate(entry.classifier, entry.poisoning)
    return {"auroc": evaluation.auroc, "f1": evaluation.f1}


def evaluate_model_level_defense(
    context: ExperimentContext,
    defense_name: str,
    dataset_name: str,
    attack_name: str,
    architecture: str = "resnet18",
    **pool_kwargs,
) -> Dict[str, float]:
    """AUROC / F1 of a model-level baseline (MM-BD, MNTD) over a suspicious pool."""
    pool, labels = build_suspicious_pool(
        context, dataset_name, attack_name, architecture=architecture, **pool_kwargs
    )
    clean_data = context.reserved_clean(dataset_name)
    if defense_name.lower() == "mntd":
        defense: ModelLevelDefense = context.mntd(dataset_name, architecture)
    else:
        defense = build_defense(defense_name, rng=context.seed)
    evaluation = defense.evaluate_models(
        [entry.classifier for entry in pool], labels, clean_data, rng=context.seed
    )
    return {"auroc": evaluation.auroc, "f1": evaluation.f1}
