"""Numbers reported in the paper, used for paper-vs-measured comparisons.

Only the headline values needed by EXPERIMENTS.md and the benchmark reports
are transcribed here; consult the paper for the full tables.  All values are
AUROC unless stated otherwise.
"""

from __future__ import annotations

from typing import Dict

#: Table 1 — input-level detectors on backdoored vs clean models (AUROC)
TABLE1_INPUT_LEVEL: Dict[str, Dict[str, float]] = {
    "teco": {"badnets_backdoored": 0.8113, "badnets_clean": 0.4509,
             "blend_backdoored": 0.7259, "blend_clean": 0.3954,
             "wanet_backdoored": 0.9345, "wanet_clean": 0.4406},
    "scale_up": {"badnets_backdoored": 0.7877, "badnets_clean": 0.5103,
                 "blend_backdoored": 0.7694, "blend_clean": 0.4643,
                 "wanet_backdoored": 0.7772, "wanet_clean": 0.4246},
}

#: Table 2 — prompted-model accuracy vs. number of target classes
TABLE2_TARGET_CLASSES: Dict[str, Dict[int, float]] = {
    "cifar10": {1: 0.3286, 2: 0.2427, 3: 0.2338},
    "gtsrb": {1: 0.2711, 2: 0.1988, 3: 0.1986},
}

#: Table 3 — prompted accuracy vs. trigger size (Blend on CIFAR-10 / GTSRB)
TABLE3_TRIGGER_SIZE: Dict[str, Dict[int, float]] = {
    "cifar10_blend": {4: 0.3830, 8: 0.3517, 16: 0.3172},
    "gtsrb_blend": {4: 0.1783, 8: 0.1641, 16: 0.1571},
}

#: Table 4 — prompted accuracy vs. poison rate (Blend on CIFAR-10 / GTSRB)
TABLE4_POISON_RATE: Dict[str, Dict[float, float]] = {
    "cifar10_blend": {0.05: 0.5297, 0.10: 0.4772, 0.20: 0.3985},
    "gtsrb_blend": {0.05: 0.2488, 0.10: 0.2328, 0.20: 0.2222},
}

#: Table 5 — average AUROC per defense (CIFAR-10 row / GTSRB row)
TABLE5_AVERAGE_AUROC: Dict[str, Dict[str, float]] = {
    "strip": {"cifar10": 0.694, "gtsrb": 0.733},
    "activation_clustering": {"cifar10": 0.863, "gtsrb": 0.524},
    "frequency": {"cifar10": 0.963, "gtsrb": 0.950},
    "sentinet": {"cifar10": 0.716, "gtsrb": 0.776},
    "confusion_training": {"cifar10": 0.840, "gtsrb": 0.844},
    "spectral_signatures": {"cifar10": 0.747, "gtsrb": 0.692},
    "scan": {"cifar10": 0.822, "gtsrb": 0.829},
    "spectre": {"cifar10": 0.679, "gtsrb": 0.640},
    "mmbd": {"cifar10": 0.838, "gtsrb": 0.667},
    "ted": {"cifar10": 0.543, "gtsrb": 0.718},
    "bprom": {"cifar10": 1.000, "gtsrb": 0.983},
}

#: Table 6 — Tiny-ImageNet average AUROC (ResNet18)
TABLE6_TINY_IMAGENET_AVG: Dict[str, float] = {
    "strip": 0.732,
    "activation_clustering": 0.489,
    "spectral_signatures": 0.495,
    "scan": 0.786,
    "confusion_training": 0.760,
    "scale_up": 0.729,
    "cognitive_distillation": 0.754,
    "mmbd": 0.715,
    "bprom": 0.979,
}

#: Table 7 — AUROC vs. number of shadow models (CIFAR-10, Blend)
TABLE7_SHADOW_COUNT: Dict[int, float] = {2: 0.667, 10: 0.874, 20: 1.000, 40: 1.000}

#: Table 8 — ASR / AUROC vs trigger size (CIFAR-10, Blend)
TABLE8_TRIGGER_SIZE: Dict[int, Dict[str, float]] = {
    4: {"asr": 0.269, "auroc": 1.000},
    8: {"asr": 0.974, "auroc": 1.000},
    16: {"asr": 0.994, "auroc": 1.000},
}

#: Table 9 — ASR / AUROC vs poison rate (CIFAR-10, Blend)
TABLE9_POISON_RATE: Dict[float, Dict[str, float]] = {
    0.05: {"asr": 0.996, "auroc": 0.607},
    0.10: {"asr": 0.990, "auroc": 0.933},
    0.20: {"asr": 0.998, "auroc": 1.000},
}

#: Table 10 — cross-architecture detection (MobileNetV2 suspicious, ResNet18 shadows)
TABLE10_CROSS_ARCHITECTURE: Dict[str, float] = {
    "wanet": 1.000,
    "adaptive_blend": 1.000,
    "adaptive_patch": 1.000,
}

#: Table 11 — AUROC at very low BadNets poison rates (CIFAR-10)
TABLE11_LOW_POISON: Dict[float, float] = {
    0.002: 1.0, 0.005: 1.0, 0.01: 1.0, 0.02: 1.0, 0.05: 1.0, 0.10: 1.0,
}

#: Table 12 — clean-label adaptive attacks (AUROC)
TABLE12_CLEAN_LABEL: Dict[str, Dict[str, float]] = {
    "cifar10": {"sig": 1.00, "label_consistent": 0.95},
    "gtsrb": {"sig": 0.83, "label_consistent": 0.78},
}

#: Tables 14/15 — clean accuracy / ASR of infected models (representative values)
TABLE14_RESNET_CIFAR10 = {"accuracy": 0.936, "asr": 1.000}
TABLE15_MOBILENET_CIFAR10 = {"accuracy": 0.905, "asr": 1.000}

#: Table 23 — AUROC for different reserved dataset sizes (all 1.0 in the paper)
TABLE23_RESERVED_SIZE: Dict[float, float] = {0.01: 1.0, 0.05: 1.0, 0.10: 1.0}

#: Table 26 — ImageNet average AUROC
TABLE26_IMAGENET_AVG: Dict[str, float] = {
    "cognitive_distillation": 0.7467,
    "scale_up": 0.5944,
    "strip": 0.2936,
    "bprom": 0.9570,
}

#: BPROM training time in hours (paper, ResNet18 / MobileNetV2 by shadow count)
TRAINING_TIME_HOURS = {
    "resnet18": {10: 2.3, 20: 4.8, 40: 9.5},
    "mobilenetv2": {10: 1.2, 20: 2.4, 40: 5.2},
}
