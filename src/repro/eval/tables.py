"""Plain-text table formatting for experiment results and paper comparisons."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_format_value(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)


def merge_rows(*row_groups: Iterable[Dict[str, object]]) -> List[Dict[str, object]]:
    """Concatenate several iterables of rows into one list."""
    merged: List[Dict[str, object]] = []
    for group in row_groups:
        merged.extend(group)
    return merged


def compare_with_paper(
    measured: Mapping[str, float], paper: Mapping[str, float], label: str = ""
) -> List[Dict[str, object]]:
    """Produce rows pairing measured values with the paper's reported values."""
    rows = []
    for key in measured:
        rows.append(
            {
                "setting": f"{label}{key}" if label else key,
                "measured": measured[key],
                "paper": paper.get(key, float("nan")),
            }
        )
    return rows
