"""Classic machine-learning components implemented from scratch on numpy.

These replace the scikit-learn / CMA-ES dependencies of the original paper:
the random-forest meta-classifier, the clustering and robust statistics used by
the baseline defenses, and the gradient-free optimisers used for black-box
visual prompting.
"""

from repro.ml.cma_es import CMAES, RandomSearch, SPSA
from repro.ml.forest import RandomForestClassifier
from repro.ml.kmeans import KMeans
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    auroc,
    confusion_counts,
    f1_score,
    precision_recall,
    roc_curve,
)
from repro.ml.pca import PCA
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "LogisticRegression",
    "KMeans",
    "PCA",
    "CMAES",
    "SPSA",
    "RandomSearch",
    "auroc",
    "f1_score",
    "precision_recall",
    "roc_curve",
    "confusion_counts",
]
