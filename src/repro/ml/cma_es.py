"""Gradient-free optimisers for black-box visual prompting.

The paper learns the visual prompt of the *suspicious* model with a
gradient-free method (it names CMA-ES) because the defender only has query
access.  This module provides three interchangeable minimisers:

* :class:`CMAES` — a compact covariance-matrix-adaptation evolution strategy
  (diagonal + rank-one update variant, adequate for the small prompt
  dimensionalities used here).
* :class:`SPSA` — simultaneous-perturbation stochastic approximation.
* :class:`RandomSearch` — Gaussian random search baseline for ablations.

All three expose ``minimize(objective, x0) -> OptimizationResult`` where
``objective`` maps a parameter vector to a scalar loss.  They additionally
support a *batch-objective protocol* for query-efficient black-box access:
``minimize(None, x0, batch_objective=fn)`` hands the whole ``(lambda, dim)``
candidate matrix of each generation to one callback returning ``(lambda,)``
losses — the RNG stream, selection and update math are exactly those of the
sequential path, so results are equivalent; only the number of callback
invocations (one per generation instead of one per candidate) changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.utils.rng import SeedLike, new_rng

Objective = Callable[[np.ndarray], float]
#: maps a (lambda, dim) candidate matrix to a (lambda,) loss vector
BatchObjective = Callable[[np.ndarray], np.ndarray]


def resolve_batch_objective(
    objective: Optional[Objective],
    batch_objective: Optional[BatchObjective],
) -> BatchObjective:
    """The evaluation callback an optimiser actually runs: the batched one if
    given, otherwise the scalar objective looped row by row (the sequential
    path).  Exactly one of the two must be provided."""
    if batch_objective is not None:
        return batch_objective
    if objective is None:
        raise ValueError("provide either objective or batch_objective")

    def sequential(candidates: np.ndarray) -> np.ndarray:
        return np.array([float(objective(candidate)) for candidate in candidates])

    return sequential


def _evaluate(batch: BatchObjective, candidates: np.ndarray) -> np.ndarray:
    """Run the batch callback and validate its ``(lambda,)`` return shape."""
    values = np.asarray(batch(candidates), dtype=np.float64).ravel()
    if values.shape[0] != candidates.shape[0]:
        raise ValueError(
            f"batch objective returned {values.shape[0]} losses for "
            f"{candidates.shape[0]} candidates"
        )
    return values


@dataclass
class OptimizationResult:
    """Outcome of a gradient-free optimisation run."""

    best_x: np.ndarray
    best_value: float
    history: List[float] = field(default_factory=list)
    evaluations: int = 0


class CMAES:
    """A compact (mu/mu_w, lambda) CMA-ES with diagonal covariance adaptation.

    This follows the standard CMA-ES recipe (weighted recombination,
    cumulative step-size adaptation) but adapts only the diagonal of the
    covariance matrix plus a rank-one term, which keeps the per-iteration cost
    linear in the dimension — important because the visual prompt can have a
    few hundred parameters.
    """

    def __init__(
        self,
        iterations: int = 50,
        population: int | None = None,
        sigma: float = 0.3,
        rng: SeedLike = None,
    ) -> None:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.iterations = int(iterations)
        self.population = population
        self.initial_sigma = float(sigma)
        self._rng = new_rng(rng)

    def minimize(
        self,
        objective: Optional[Objective],
        x0: np.ndarray,
        batch_objective: Optional[BatchObjective] = None,
    ) -> OptimizationResult:
        evaluate = resolve_batch_objective(objective, batch_objective)
        x0 = np.asarray(x0, dtype=np.float64).ravel()
        dim = x0.size
        lam = self.population or min(4 + int(3 * np.log(dim + 1)), 16)
        lam = max(int(lam), 4)
        mu = lam // 2
        weights = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
        weights = weights / weights.sum()
        mu_eff = 1.0 / np.sum(weights**2)

        mean = x0.copy()
        sigma = self.initial_sigma
        diag_cov = np.ones(dim)
        path_sigma = np.zeros(dim)
        path_cov = np.zeros(dim)
        c_sigma = (mu_eff + 2) / (dim + mu_eff + 5)
        d_sigma = 1 + 2 * max(0.0, np.sqrt((mu_eff - 1) / (dim + 1)) - 1) + c_sigma
        c_cov = (4 + mu_eff / dim) / (dim + 4 + 2 * mu_eff / dim)
        c_1 = 2 / ((dim + 1.3) ** 2 + mu_eff)
        c_mu = min(1 - c_1, 2 * (mu_eff - 2 + 1 / mu_eff) / ((dim + 2) ** 2 + mu_eff))
        chi_n = np.sqrt(dim) * (1 - 1 / (4 * dim) + 1 / (21 * dim**2))

        best_x = x0.copy()
        best_value = float(_evaluate(evaluate, x0[None])[0])
        history = [best_value]
        evaluations = 1

        for _ in range(self.iterations):
            std = np.sqrt(np.maximum(diag_cov, 1e-12))
            noise = self._rng.normal(size=(lam, dim))
            candidates = mean + sigma * noise * std
            values = _evaluate(evaluate, candidates)
            evaluations += lam
            order = np.argsort(values)
            if values[order[0]] < best_value:
                best_value = float(values[order[0]])
                best_x = candidates[order[0]].copy()
            history.append(best_value)

            selected = candidates[order[:mu]]
            selected_noise = noise[order[:mu]]
            old_mean = mean
            mean = weights @ selected
            # step-size path (in the isotropic coordinate system)
            z_mean = weights @ selected_noise
            path_sigma = (1 - c_sigma) * path_sigma + np.sqrt(
                c_sigma * (2 - c_sigma) * mu_eff
            ) * z_mean
            sigma = sigma * np.exp(
                (c_sigma / d_sigma) * (np.linalg.norm(path_sigma) / chi_n - 1)
            )
            sigma = float(np.clip(sigma, 1e-8, 1e3))
            # covariance path and diagonal update
            y_mean = (mean - old_mean) / max(sigma, 1e-12)
            path_cov = (1 - c_cov) * path_cov + np.sqrt(
                c_cov * (2 - c_cov) * mu_eff
            ) * y_mean / np.maximum(std, 1e-12)
            rank_mu = np.sum(weights[:, None] * (selected_noise**2), axis=0)
            diag_cov = (
                (1 - c_1 - c_mu) * diag_cov
                + c_1 * (path_cov**2) * diag_cov
                + c_mu * rank_mu * diag_cov
            )
            diag_cov = np.clip(diag_cov, 1e-8, 1e8)

        return OptimizationResult(best_x, best_value, history, evaluations)


class SPSA:
    """Simultaneous-perturbation stochastic approximation minimiser."""

    def __init__(
        self,
        iterations: int = 100,
        learning_rate: float = 0.1,
        perturbation: float = 0.05,
        rng: SeedLike = None,
    ) -> None:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.iterations = int(iterations)
        self.learning_rate = float(learning_rate)
        self.perturbation = float(perturbation)
        self._rng = new_rng(rng)

    def minimize(
        self,
        objective: Optional[Objective],
        x0: np.ndarray,
        batch_objective: Optional[BatchObjective] = None,
    ) -> OptimizationResult:
        evaluate = resolve_batch_objective(objective, batch_objective)
        x = np.asarray(x0, dtype=np.float64).ravel().copy()
        best_x = x.copy()
        best_value = float(_evaluate(evaluate, x[None])[0])
        history = [best_value]
        evaluations = 1
        for k in range(1, self.iterations + 1):
            a_k = self.learning_rate / (k**0.602)
            c_k = self.perturbation / (k**0.101)
            delta = self._rng.choice([-1.0, 1.0], size=x.size)
            # the +/- pair is one two-row batch: a single query per iteration
            pair = _evaluate(evaluate, np.stack([x + c_k * delta, x - c_k * delta]))
            plus, minus = float(pair[0]), float(pair[1])
            evaluations += 2
            gradient = (plus - minus) / (2 * c_k) * delta
            x = x - a_k * gradient
            value = min(plus, minus)
            if value < best_value:
                best_value = value
                best_x = x.copy()
            history.append(best_value)
        final = float(_evaluate(evaluate, x[None])[0])
        evaluations += 1
        if final < best_value:
            best_value, best_x = final, x.copy()
        return OptimizationResult(best_x, best_value, history, evaluations)


class RandomSearch:
    """Gaussian random search around the best point so far (ablation baseline)."""

    def __init__(
        self, iterations: int = 100, sigma: float = 0.3, rng: SeedLike = None
    ) -> None:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.iterations = int(iterations)
        self.sigma = float(sigma)
        self._rng = new_rng(rng)

    def minimize(
        self,
        objective: Optional[Objective],
        x0: np.ndarray,
        batch_objective: Optional[BatchObjective] = None,
    ) -> OptimizationResult:
        evaluate = resolve_batch_objective(objective, batch_objective)
        best_x = np.asarray(x0, dtype=np.float64).ravel().copy()
        best_value = float(_evaluate(evaluate, best_x[None])[0])
        history = [best_value]
        evaluations = 1
        for _ in range(self.iterations):
            candidate = best_x + self._rng.normal(0.0, self.sigma, size=best_x.size)
            value = float(_evaluate(evaluate, candidate[None])[0])
            evaluations += 1
            if value < best_value:
                best_value = value
                best_x = candidate
            history.append(best_value)
        return OptimizationResult(best_x, best_value, history, evaluations)


def build_blackbox_optimizer(
    name: str, iterations: int, population: int | None = None, rng: SeedLike = None
):
    """Factory used by the prompting stage (``"cma-es" | "spsa" | "random"``)."""
    key = name.lower().replace("_", "-")
    if key in ("cma-es", "cmaes", "cma"):
        return CMAES(iterations=iterations, population=population, rng=rng)
    if key == "spsa":
        return SPSA(iterations=iterations, rng=rng)
    if key in ("random", "random-search"):
        return RandomSearch(iterations=iterations, rng=rng)
    raise ValueError(f"unknown black-box optimizer {name!r}")
