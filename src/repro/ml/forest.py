"""Random forest classifier — the paper's meta-classifier for BPROM."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import SeedLike, new_rng


class RandomForestClassifier:
    """Bagged ensemble of :class:`DecisionTreeClassifier` with feature subsampling.

    The paper trains a random forest with 10,000 trees on the concatenated
    confidence vectors of the prompted shadow models; the tree count here is a
    constructor argument so the benchmark profiles can scale it down.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        max_features: Optional[int | str] = "sqrt",
        min_samples_split: int = 2,
        bootstrap: bool = True,
        rng: SeedLike = None,
    ) -> None:
        if n_estimators <= 0:
            raise ValueError(f"n_estimators must be positive, got {n_estimators}")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_split = int(min_samples_split)
        self.bootstrap = bool(bootstrap)
        self._rng = new_rng(rng)
        self.trees_: List[DecisionTreeClassifier] = []
        self.num_classes_: int = 0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForestClassifier":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels disagree on sample count")
        self.num_classes_ = int(labels.max()) + 1
        self.trees_ = []
        n = features.shape[0]
        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=self.max_features,
                rng=self._rng,
            )
            if self.bootstrap:
                indices = self._rng.integers(0, n, size=n)
            else:
                indices = np.arange(n)
            tree.fit(features[indices], labels[indices])
            # a bootstrap sample may omit a class entirely; remember the global count
            tree.num_classes_ = max(tree.num_classes_, self.num_classes_)
            self.trees_.append(tree)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        votes = np.zeros((features.shape[0], self.num_classes_), dtype=np.float64)
        for tree in self.trees_:
            proba = tree.predict_proba(features)
            if proba.shape[1] < self.num_classes_:
                padded = np.zeros((proba.shape[0], self.num_classes_))
                padded[:, : proba.shape[1]] = proba
                proba = padded
            votes += proba
        return votes / len(self.trees_)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean accuracy on the given data."""
        labels = np.asarray(labels, dtype=np.int64)
        return float(np.mean(self.predict(features) == labels))

    # -- persistence ----------------------------------------------------------
    def get_state(self) -> dict:
        """Flat array dictionary describing the fitted ensemble (npz-friendly)."""
        if not self.trees_:
            raise RuntimeError("forest has not been fitted")
        state: dict = {
            "num_classes": np.asarray([self.num_classes_], dtype=np.int64),
            "n_estimators": np.asarray([len(self.trees_)], dtype=np.int64),
        }
        for index, tree in enumerate(self.trees_):
            for key, value in tree.to_arrays().items():
                state[f"tree{index}.{key}"] = value
        return state

    @classmethod
    def from_state(cls, state: dict) -> "RandomForestClassifier":
        """Rebuild a fitted forest from :meth:`get_state` output."""
        count = int(np.asarray(state["n_estimators"]).ravel()[0])
        forest = cls(n_estimators=count)
        forest.num_classes_ = int(np.asarray(state["num_classes"]).ravel()[0])
        forest.trees_ = [
            DecisionTreeClassifier.from_arrays(
                {
                    key.split(".", 1)[1]: value
                    for key, value in state.items()
                    if key.startswith(f"tree{index}.")
                }
            )
            for index in range(count)
        ]
        return forest
