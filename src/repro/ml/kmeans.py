"""K-means clustering (used by the Activation Clustering defense)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation."""

    def __init__(
        self,
        n_clusters: int = 2,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        rng: SeedLike = None,
    ) -> None:
        if n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        self.n_clusters = int(n_clusters)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self._rng = new_rng(rng)
        self.centroids_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = float("inf")

    def _init_centroids(self, data: np.ndarray) -> np.ndarray:
        n = data.shape[0]
        centroids = [data[self._rng.integers(0, n)]]
        for _ in range(1, self.n_clusters):
            distances = np.min(
                np.stack([np.sum((data - c) ** 2, axis=1) for c in centroids]), axis=0
            )
            total = distances.sum()
            if total <= 0:
                centroids.append(data[self._rng.integers(0, n)])
                continue
            probabilities = distances / total
            centroids.append(data[self._rng.choice(n, p=probabilities)])
        return np.stack(centroids)

    def fit(self, data: np.ndarray) -> "KMeans":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if data.shape[0] < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} samples, got {data.shape[0]}"
            )
        centroids = self._init_centroids(data)
        for _ in range(self.max_iterations):
            distances = np.stack(
                [np.sum((data - c) ** 2, axis=1) for c in centroids], axis=1
            )
            labels = np.argmin(distances, axis=1)
            new_centroids = centroids.copy()
            for cluster in range(self.n_clusters):
                members = data[labels == cluster]
                if members.shape[0]:
                    new_centroids[cluster] = members.mean(axis=0)
            shift = float(np.max(np.abs(new_centroids - centroids)))
            centroids = new_centroids
            if shift < self.tolerance:
                break
        distances = np.stack([np.sum((data - c) ** 2, axis=1) for c in centroids], axis=1)
        self.labels_ = np.argmin(distances, axis=1)
        self.inertia_ = float(np.sum(np.min(distances, axis=1)))
        self.centroids_ = centroids
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        if self.centroids_ is None:
            raise RuntimeError("KMeans has not been fitted")
        data = np.asarray(data, dtype=np.float64)
        distances = np.stack(
            [np.sum((data - c) ** 2, axis=1) for c in self.centroids_], axis=1
        )
        return np.argmin(distances, axis=1)

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).labels_
