"""Binary logistic regression (used as an ablation meta-classifier and by defenses)."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import sigmoid
from repro.utils.rng import SeedLike, new_rng


class LogisticRegression:
    """L2-regularised binary logistic regression trained with full-batch gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        iterations: int = 500,
        l2: float = 1e-3,
        rng: SeedLike = None,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.learning_rate = float(learning_rate)
        self.iterations = int(iterations)
        self.l2 = float(l2)
        self._rng = new_rng(rng)
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64).ravel()
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if not np.all(np.isin(labels, (0.0, 1.0))):
            raise ValueError("labels must be binary")
        # standardise for conditioning
        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0) + 1e-8
        x = (features - self._mean) / self._std
        n, d = x.shape
        self.weights_ = self._rng.normal(0.0, 0.01, size=d)
        self.bias_ = 0.0
        for _ in range(self.iterations):
            logits = x @ self.weights_ + self.bias_
            probs = sigmoid(logits)
            error = probs - labels
            grad_w = x.T @ error / n + self.l2 * self.weights_
            grad_b = float(error.mean())
            self.weights_ -= self.learning_rate * grad_w
            self.bias_ -= self.learning_rate * grad_b
        return self

    def _check_fitted(self) -> None:
        if self.weights_ is None:
            raise RuntimeError("model has not been fitted")

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row."""
        self._check_fitted()
        features = np.asarray(features, dtype=np.float64)
        x = (features - self._mean) / self._std
        return sigmoid(x @ self.weights_ + self.bias_)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels, dtype=np.int64).ravel()
        return float(np.mean(self.predict(features) == labels))

    # -- persistence ----------------------------------------------------------
    def get_state(self) -> dict:
        """Array dictionary describing the fitted model (npz-friendly)."""
        self._check_fitted()
        return {
            "weights": self.weights_,
            "bias": np.asarray([self.bias_], dtype=np.float64),
            "mean": self._mean,
            "std": self._std,
        }

    @classmethod
    def from_state(cls, state: dict) -> "LogisticRegression":
        """Rebuild a fitted model from :meth:`get_state` output."""
        model = cls()
        model.weights_ = np.asarray(state["weights"], dtype=np.float64)
        model.bias_ = float(np.asarray(state["bias"]).ravel()[0])
        model._mean = np.asarray(state["mean"], dtype=np.float64)
        model._std = np.asarray(state["std"], dtype=np.float64)
        return model
