"""Detection metrics: AUROC, F1, precision/recall and ROC curves.

The paper reports AUROC and F1 for every defense; these implementations follow
the standard definitions (AUROC via the rank statistic, F1 at a 0.5 score
threshold unless stated otherwise).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _validate(scores: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64).ravel()
    labels = np.asarray(labels).ravel().astype(np.int64)
    if scores.shape[0] != labels.shape[0]:
        raise ValueError(
            f"scores ({scores.shape[0]}) and labels ({labels.shape[0]}) disagree on size"
        )
    if scores.size == 0:
        raise ValueError("cannot compute metrics on empty inputs")
    if not np.all(np.isin(labels, (0, 1))):
        raise ValueError("labels must be binary (0 = negative, 1 = positive)")
    return scores, labels


def auroc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Ties receive half credit.  Returns 0.5 when either class is absent (the
    convention used when a defense is evaluated on a degenerate split).
    """
    scores, labels = _validate(scores, labels)
    positives = scores[labels == 1]
    negatives = scores[labels == 0]
    if positives.size == 0 or negatives.size == 0:
        return 0.5
    # rank-based computation handles ties exactly
    order = np.argsort(np.concatenate([positives, negatives]), kind="mergesort")
    ranks = np.empty(order.size, dtype=np.float64)
    sorted_scores = np.concatenate([positives, negatives])[order]
    ranks[order] = np.arange(1, order.size + 1)
    # average ranks over ties
    unique, inverse, counts = np.unique(sorted_scores, return_inverse=True, return_counts=True)
    cumulative = np.cumsum(counts)
    average_rank = cumulative - (counts - 1) / 2.0
    tied_ranks = average_rank[inverse]
    ranks[order] = tied_ranks
    rank_sum_positive = float(np.sum(ranks[: positives.size]))
    u_statistic = rank_sum_positive - positives.size * (positives.size + 1) / 2.0
    return float(u_statistic / (positives.size * negatives.size))


def roc_curve(scores: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(false_positive_rates, true_positive_rates, thresholds)``.

    With single-class labels the ROC is undefined (one of the rates has a
    zero denominator); rather than silently clamping the denominator, this
    returns the chance diagonal ``(0, 0) -> (1, 1)``, whose area is 0.5 —
    the same degenerate-split convention :func:`auroc` documents.
    """
    scores, labels = _validate(scores, labels)
    total_pos = int(labels.sum())
    total_neg = int(labels.size) - total_pos
    if total_pos == 0 or total_neg == 0:
        thresholds = np.array([np.inf, float(scores.min())])
        return np.array([0.0, 1.0]), np.array([0.0, 1.0]), thresholds
    order = np.argsort(-scores, kind="mergesort")
    scores_sorted = scores[order]
    labels_sorted = labels[order]
    distinct = np.flatnonzero(np.diff(scores_sorted)) if scores_sorted.size > 1 else np.array([], dtype=int)
    threshold_idx = np.concatenate([distinct, [scores_sorted.size - 1]])
    tps = np.cumsum(labels_sorted)[threshold_idx]
    fps = (threshold_idx + 1) - tps
    tpr = np.concatenate([[0.0], tps / total_pos])
    fpr = np.concatenate([[0.0], fps / total_neg])
    thresholds = np.concatenate([[np.inf], scores_sorted[threshold_idx]])
    return fpr, tpr, thresholds


def confusion_counts(
    predictions: np.ndarray, labels: np.ndarray
) -> Tuple[int, int, int, int]:
    """Return ``(true_positive, false_positive, true_negative, false_negative)``."""
    predictions = np.asarray(predictions).astype(np.int64).ravel()
    labels = np.asarray(labels).astype(np.int64).ravel()
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    tp = int(np.sum((predictions == 1) & (labels == 1)))
    fp = int(np.sum((predictions == 1) & (labels == 0)))
    tn = int(np.sum((predictions == 0) & (labels == 0)))
    fn = int(np.sum((predictions == 0) & (labels == 1)))
    return tp, fp, tn, fn


def precision_recall(predictions: np.ndarray, labels: np.ndarray) -> Tuple[float, float]:
    """Precision and recall of binary predictions."""
    tp, fp, _, fn = confusion_counts(predictions, labels)
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    return float(precision), float(recall)


def f1_score(predictions: np.ndarray, labels: np.ndarray) -> float:
    """F1 score of binary predictions (0.0 when precision + recall is zero)."""
    precision, recall = precision_recall(predictions, labels)
    if precision + recall == 0.0:
        return 0.0
    return float(2.0 * precision * recall / (precision + recall))


def f1_from_scores(scores: np.ndarray, labels: np.ndarray, threshold: float = 0.5) -> float:
    """F1 score obtained by thresholding continuous scores at ``threshold``."""
    scores, labels = _validate(scores, labels)
    return f1_score((scores >= threshold).astype(np.int64), labels)


def best_f1_from_scores(scores: np.ndarray, labels: np.ndarray) -> float:
    """F1 at the best threshold — used for defenses that tune their own cut-off."""
    scores, labels = _validate(scores, labels)
    candidates = np.unique(scores)
    best = 0.0
    for threshold in candidates:
        best = max(best, f1_score((scores >= threshold).astype(np.int64), labels))
    return float(best)
