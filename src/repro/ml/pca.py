"""Principal component analysis (used by SPECTRE, the subspace visualisations
of Figures 3 and 5, and several defenses)."""

from __future__ import annotations

import numpy as np


class PCA:
    """PCA via singular value decomposition of the centred data matrix."""

    def __init__(self, n_components: int = 2) -> None:
        if n_components <= 0:
            raise ValueError("n_components must be positive")
        self.n_components = int(n_components)
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "PCA":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if data.shape[0] < 2:
            raise ValueError("PCA requires at least two samples")
        k = min(self.n_components, data.shape[1], data.shape[0])
        self.mean_ = data.mean(axis=0)
        centred = data - self.mean_
        _, singular_values, vt = np.linalg.svd(centred, full_matrices=False)
        variances = (singular_values**2) / max(data.shape[0] - 1, 1)
        self.components_ = vt[:k]
        self.explained_variance_ = variances[:k]
        total = variances.sum()
        self.explained_variance_ratio_ = (
            variances[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA has not been fitted")
        data = np.asarray(data, dtype=np.float64)
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA has not been fitted")
        return np.asarray(projected, dtype=np.float64) @ self.components_ + self.mean_
