"""Statistical helpers shared by the robust-statistics defenses (SS, SPECTRE, SCAn)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def top_singular_vector(data: np.ndarray) -> np.ndarray:
    """Top right-singular vector of the centred data matrix (spectral signature direction)."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] < 2:
        raise ValueError("need a 2-D matrix with at least two rows")
    centred = data - data.mean(axis=0)
    _, _, vt = np.linalg.svd(centred, full_matrices=False)
    return vt[0]


def spectral_scores(data: np.ndarray) -> np.ndarray:
    """Squared projection of each centred row onto the top singular direction."""
    data = np.asarray(data, dtype=np.float64)
    centred = data - data.mean(axis=0)
    direction = top_singular_vector(data)
    return (centred @ direction) ** 2


def whiten(data: np.ndarray, eps: float = 1e-6) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ZCA-style whitening; returns ``(whitened, mean, whitening_matrix)``."""
    data = np.asarray(data, dtype=np.float64)
    mean = data.mean(axis=0)
    centred = data - mean
    covariance = centred.T @ centred / max(data.shape[0] - 1, 1)
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    eigenvalues = np.maximum(eigenvalues, eps)
    whitening = eigenvectors @ np.diag(1.0 / np.sqrt(eigenvalues)) @ eigenvectors.T
    return centred @ whitening, mean, whitening


def median_absolute_deviation(values: np.ndarray) -> float:
    """MAD scaled to be a consistent estimator of the standard deviation."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("cannot compute MAD of an empty array")
    median = np.median(values)
    return float(1.4826 * np.median(np.abs(values - median)))


def mahalanobis_scores(data: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Squared Mahalanobis distance of each row from the sample mean."""
    data = np.asarray(data, dtype=np.float64)
    mean = data.mean(axis=0)
    centred = data - mean
    covariance = centred.T @ centred / max(data.shape[0] - 1, 1)
    covariance += eps * np.eye(covariance.shape[0])
    inverse = np.linalg.inv(covariance)
    return np.einsum("ij,jk,ik->i", centred, inverse, centred)


def gram_matrix_features(features: np.ndarray, orders=(1, 2)) -> np.ndarray:
    """Per-sample Gram-matrix statistics (used by Beatrix-style detectors).

    For each sample feature vector ``f`` the order-``p`` Gram feature is the
    vector of signed ``p``-th powers aggregated by their mean and standard
    deviation, which summarises higher-order channel correlations cheaply.
    """
    features = np.asarray(features, dtype=np.float64)
    stats = []
    for order in orders:
        powered = np.sign(features) * np.abs(features) ** order
        stats.append(powered.mean(axis=1))
        stats.append(powered.std(axis=1))
    return np.stack(stats, axis=1)
