"""CART-style decision tree classifier (Gini impurity, axis-aligned splits)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, new_rng


@dataclass
class _Node:
    """A tree node; leaves carry a class-probability vector."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    probabilities: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.probabilities is not None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions**2))


class DecisionTreeClassifier:
    """A small CART classifier supporting random feature subsampling per split.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (``None`` grows until pure or ``min_samples_split``).
    min_samples_split:
        Minimum number of samples required to attempt a split.
    max_features:
        Number of candidate features examined per split (``None`` = all,
        ``"sqrt"`` = square root of the feature count — the random-forest default).
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        max_features: Optional[int | str] = None,
        rng: SeedLike = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.max_features = max_features
        self._rng = new_rng(rng)
        self._root: Optional[_Node] = None
        self.num_classes_: int = 0

    # -- fitting -------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels disagree on sample count")
        if features.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self.num_classes_ = int(labels.max()) + 1
        self._root = self._grow(features, labels, depth=0)
        return self

    def _feature_candidates(self, num_features: int) -> np.ndarray:
        if self.max_features is None:
            return np.arange(num_features)
        if self.max_features == "sqrt":
            k = max(1, int(np.sqrt(num_features)))
        else:
            k = max(1, min(int(self.max_features), num_features))
        return self._rng.choice(num_features, size=k, replace=False)

    def _leaf(self, labels: np.ndarray) -> _Node:
        counts = np.bincount(labels, minlength=self.num_classes_).astype(np.float64)
        return _Node(probabilities=counts / counts.sum())

    def _grow(self, features: np.ndarray, labels: np.ndarray, depth: int) -> _Node:
        if (
            labels.shape[0] < self.min_samples_split
            or np.unique(labels).size == 1
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return self._leaf(labels)
        best = self._best_split(features, labels)
        if best is None:
            return self._leaf(labels)
        feature, threshold = best
        mask = features[:, feature] <= threshold
        if not mask.any() or mask.all():
            return self._leaf(labels)
        node = _Node(feature=feature, threshold=threshold)
        node.left = self._grow(features[mask], labels[mask], depth + 1)
        node.right = self._grow(features[~mask], labels[~mask], depth + 1)
        return node

    def _best_split(self, features: np.ndarray, labels: np.ndarray):
        parent_counts = np.bincount(labels, minlength=self.num_classes_)
        parent_gini = _gini(parent_counts)
        best_gain = 1e-12
        best_split = None
        n = labels.shape[0]
        for feature in self._feature_candidates(features.shape[1]):
            column = features[:, feature]
            order = np.argsort(column, kind="mergesort")
            sorted_values = column[order]
            sorted_labels = labels[order]
            # cumulative class counts for all possible cut positions
            one_hot = np.zeros((n, self.num_classes_), dtype=np.float64)
            one_hot[np.arange(n), sorted_labels] = 1.0
            left_counts = np.cumsum(one_hot, axis=0)
            total_counts = left_counts[-1]
            # only consider cuts between distinct feature values
            distinct = np.flatnonzero(np.diff(sorted_values) > 1e-12)
            if distinct.size == 0:
                continue
            left = left_counts[distinct]
            right = total_counts - left
            left_n = distinct + 1
            right_n = n - left_n
            left_gini = 1.0 - np.sum((left / left_n[:, None]) ** 2, axis=1)
            right_gini = 1.0 - np.sum((right / right_n[:, None]) ** 2, axis=1)
            weighted = (left_n * left_gini + right_n * right_gini) / n
            gains = parent_gini - weighted
            best_idx = int(np.argmax(gains))
            if gains[best_idx] > best_gain:
                best_gain = float(gains[best_idx])
                cut = distinct[best_idx]
                threshold = 0.5 * (sorted_values[cut] + sorted_values[cut + 1])
                best_split = (int(feature), float(threshold))
        return best_split

    # -- prediction -----------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        output = np.empty((features.shape[0], self.num_classes_), dtype=np.float64)
        for i, row in enumerate(features):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            output[i] = node.probabilities
        return output

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    # -- persistence ----------------------------------------------------------
    def to_arrays(self) -> dict:
        """Flatten the fitted tree into parallel arrays (preorder indexing).

        ``feature`` is ``-1`` for leaves; ``proba`` rows hold the leaf class
        probabilities (zeros for internal nodes) at the width the tree was
        fitted with, so reloading reproduces predictions bit-for-bit.
        """
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        feature: list = []
        threshold: list = []
        left: list = []
        right: list = []
        proba_rows: list = []

        def visit(node: _Node) -> int:
            index = len(feature)
            feature.append(-1 if node.is_leaf else node.feature)
            threshold.append(node.threshold)
            left.append(-1)
            right.append(-1)
            proba_rows.append(node.probabilities)
            if not node.is_leaf:
                left[index] = visit(node.left)
                right[index] = visit(node.right)
            return index

        visit(self._root)
        width = max((row.shape[0] for row in proba_rows if row is not None), default=1)
        proba = np.zeros((len(proba_rows), width), dtype=np.float64)
        for i, row in enumerate(proba_rows):
            if row is not None:
                proba[i, : row.shape[0]] = row
        return {
            "feature": np.asarray(feature, dtype=np.int64),
            "threshold": np.asarray(threshold, dtype=np.float64),
            "left": np.asarray(left, dtype=np.int64),
            "right": np.asarray(right, dtype=np.int64),
            "proba": proba,
            "num_classes": np.asarray([self.num_classes_], dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays: dict) -> "DecisionTreeClassifier":
        """Rebuild a fitted tree from :meth:`to_arrays` output."""
        feature = np.asarray(arrays["feature"], dtype=np.int64)
        threshold = np.asarray(arrays["threshold"], dtype=np.float64)
        left = np.asarray(arrays["left"], dtype=np.int64)
        right = np.asarray(arrays["right"], dtype=np.int64)
        proba = np.asarray(arrays["proba"], dtype=np.float64)

        def build(index: int) -> _Node:
            if feature[index] < 0:
                return _Node(probabilities=proba[index].copy())
            node = _Node(feature=int(feature[index]), threshold=float(threshold[index]))
            node.left = build(int(left[index]))
            node.right = build(int(right[index]))
            return node

        tree = cls()
        tree.num_classes_ = int(np.asarray(arrays["num_classes"]).ravel()[0])
        tree._root = build(0)
        return tree

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def _depth(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        return _depth(self._root)
