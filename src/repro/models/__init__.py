"""Model zoo: scaled-down counterparts of the paper's architectures.

The paper evaluates ResNet18, MobileNetV2, MobileViT and Swin Transformer.
This package provides small CPU-trainable members of the same architectural
families:

* :class:`TinyResNet` (registry names ``"resnet18"``, ``"resnet"``) — residual CNN.
* :class:`TinyMobileNet` (``"mobilenetv2"``, ``"mobilenet"``) — inverted-residual,
  depthwise-separable CNN.
* :class:`TinyViT` (``"mobilevit"``, ``"swin"``, ``"vit"``) — patch-embedding
  transformer.
* :class:`MLPNet` (``"mlp"``) — baseline multi-layer perceptron.

Every model exposes ``forward`` / ``backward`` / ``features`` and is wrapped by
:class:`ImageClassifier`, which adds the training loop, batched prediction and
evaluation utilities used by attacks, defenses and BPROM itself.
"""

from repro.models.blocks import InvertedResidualBlock, ResidualBlock, TransformerBlock
from repro.models.classifier import ImageClassifier
from repro.models.mlp import MLPNet
from repro.models.mobilenet import TinyMobileNet
from repro.models.registry import available_architectures, build_classifier, build_model
from repro.models.resnet import TinyResNet
from repro.models.vit import TinyViT

__all__ = [
    "TinyResNet",
    "TinyMobileNet",
    "TinyViT",
    "MLPNet",
    "ResidualBlock",
    "InvertedResidualBlock",
    "TransformerBlock",
    "ImageClassifier",
    "build_model",
    "build_classifier",
    "available_architectures",
]
