"""Composite building blocks: residual, inverted-residual and transformer blocks."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import stacked
from repro.nn.module import Module
from repro.utils.rng import SeedLike, spawn_rngs


class ResidualBlock(Module):
    """Basic ResNet block: two 3x3 conv/BN pairs with an identity or 1x1 shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rngs = spawn_rngs(rng, 3)
        self.conv1 = nn.Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rngs[0]
        )
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.relu1 = nn.ReLU()
        self.conv2 = nn.Conv2d(
            out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rngs[1]
        )
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.relu2 = nn.ReLU()
        self.has_projection = stride != 1 or in_channels != out_channels
        if self.has_projection:
            self.proj_conv = nn.Conv2d(
                in_channels, out_channels, 1, stride=stride, bias=False, rng=rngs[2]
            )
            self.proj_bn = nn.BatchNorm2d(out_channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        shortcut = self.proj_bn(self.proj_conv(x)) if self.has_projection else x
        return self.relu2(out + shortcut)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_sum = self.relu2.backward(grad_output)
        # main branch
        grad = self.bn2.backward(grad_sum)
        grad = self.conv2.backward(grad)
        grad = self.relu1.backward(grad)
        grad = self.bn1.backward(grad)
        grad_input = self.conv1.backward(grad)
        # shortcut branch
        if self.has_projection:
            grad_short = self.proj_bn.backward(grad_sum)
            grad_input = grad_input + self.proj_conv.backward(grad_short)
        else:
            grad_input = grad_input + grad_sum
        return grad_input


class InvertedResidualBlock(Module):
    """MobileNetV2-style block: 1x1 expand, 3x3 depthwise, 1x1 linear projection."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        expansion: int = 2,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rngs = spawn_rngs(rng, 3)
        hidden = in_channels * expansion
        self.expand = nn.Conv2d(in_channels, hidden, 1, bias=False, rng=rngs[0])
        self.expand_bn = nn.BatchNorm2d(hidden)
        self.expand_relu = nn.ReLU()
        self.depthwise = nn.Conv2d(
            hidden, hidden, 3, stride=stride, padding=1, groups=hidden, bias=False,
            rng=rngs[1],
        )
        self.depthwise_bn = nn.BatchNorm2d(hidden)
        self.depthwise_relu = nn.ReLU()
        self.project = nn.Conv2d(hidden, out_channels, 1, bias=False, rng=rngs[2])
        self.project_bn = nn.BatchNorm2d(out_channels)
        self.use_residual = stride == 1 and in_channels == out_channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.expand_relu(self.expand_bn(self.expand(x)))
        out = self.depthwise_relu(self.depthwise_bn(self.depthwise(out)))
        out = self.project_bn(self.project(out))
        if self.use_residual:
            return out + x
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.project_bn.backward(grad_output)
        grad = self.project.backward(grad)
        grad = self.depthwise_relu.backward(grad)
        grad = self.depthwise_bn.backward(grad)
        grad = self.depthwise.backward(grad)
        grad = self.expand_relu.backward(grad)
        grad = self.expand_bn.backward(grad)
        grad_input = self.expand.backward(grad)
        if self.use_residual:
            grad_input = grad_input + grad_output
        return grad_input


class _TokenMLP(Module):
    """Two-layer MLP applied per token inside a transformer block."""

    def __init__(self, dim: int, hidden_dim: int, rng: SeedLike = None) -> None:
        super().__init__()
        rngs = spawn_rngs(rng, 2)
        self.fc1 = nn.Linear(dim, hidden_dim, rng=rngs[0])
        self.act = nn.GELU()
        self.fc2 = nn.Linear(hidden_dim, dim, rng=rngs[1])

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc2(self.act(self.fc1(x)))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad_output)))


class TransformerBlock(Module):
    """Pre-norm transformer encoder block (LayerNorm -> MHSA -> MLP, with residuals)."""

    def __init__(
        self, dim: int, num_heads: int, mlp_ratio: float = 2.0, rng: SeedLike = None
    ) -> None:
        super().__init__()
        rngs = spawn_rngs(rng, 2)
        self.norm1 = nn.LayerNorm(dim)
        self.attention = nn.MultiHeadSelfAttention(dim, num_heads, rng=rngs[0])
        self.norm2 = nn.LayerNorm(dim)
        self.mlp = _TokenMLP(dim, int(dim * mlp_ratio), rng=rngs[1])

    def forward(self, x: np.ndarray) -> np.ndarray:
        attn_out = self.attention(self.norm1(x))
        x = x + attn_out
        mlp_out = self.mlp(self.norm2(x))
        return x + mlp_out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_mlp = self.norm2.backward(self.mlp.backward(grad_output))
        grad_mid = grad_output + grad_mlp
        grad_attn = self.norm1.backward(self.attention.backward(grad_mid))
        return grad_mid + grad_attn


class TokenMean(Module):
    """Average token embeddings (N, T, D) -> (N, D)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._num_tokens = x.shape[1]
        return x.mean(axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output[:, None, :] / self._num_tokens
        return np.broadcast_to(
            grad, (grad_output.shape[0], self._num_tokens, grad_output.shape[1])
        ).copy()


# TokenMean reduces a fixed (token) axis, so the stacked training engine needs
# a model-axis-aware counterpart rather than the structural composite lift
stacked.register_leaf(TokenMean, lambda modules: stacked.StackedTokenMean())
