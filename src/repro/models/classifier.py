"""ImageClassifier: training loop, batched inference and evaluation utilities.

This wrapper is the unit every other subsystem manipulates: attacks train
backdoored classifiers, BPROM trains shadow classifiers and prompts suspicious
classifiers, and the defenses query classifiers for probabilities or features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro import nn
from repro.config import TrainingConfig
from repro.datasets.base import ImageDataset
from repro.datasets.transforms import random_horizontal_flip
from repro.nn.functional import accuracy, softmax
from repro.nn.module import Module
from repro.utils.rng import SeedLike, new_rng


@dataclass
class TrainingHistory:
    """Per-epoch loss/accuracy curves recorded by :meth:`ImageClassifier.fit`."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    val_accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_train_accuracy(self) -> float:
        return self.train_accuracies[-1] if self.train_accuracies else float("nan")


class ImageClassifier:
    """A trainable image classifier built from one of the zoo models.

    Parameters
    ----------
    model:
        A module exposing ``forward``, ``backward`` and ``features``.
    num_classes:
        Number of output classes (must match the model head).
    name:
        Identifier used in experiment reports (e.g. ``"resnet18/cifar10"``).
    """

    def __init__(
        self,
        model: Module,
        num_classes: int,
        name: str = "classifier",
        architecture: Optional[str] = None,
        image_size: Optional[int] = None,
        in_channels: int = 3,
    ) -> None:
        self.model = model
        self.num_classes = int(num_classes)
        self.name = name
        #: build spec (set by the registry) — lets the artifact store rebuild
        #: the wrapped model from its saved state dict
        self.architecture = architecture
        self.image_size = image_size
        self.in_channels = int(in_channels)
        self.history = TrainingHistory()

    # -- precision ------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        """Parameter dtype of the wrapped model (the precision tier it runs in)."""
        params = self.model.parameters()
        return params[0].data.dtype if params else np.dtype(np.float64)

    def astype(self, dtype) -> "ImageClassifier":
        """Cast the wrapped model into a precision tier (see ``Module.astype``)."""
        self.model.astype(dtype)
        return self

    def _as_input(self, images: np.ndarray) -> np.ndarray:
        """Match inputs to the model's precision tier.

        float64 models see their inputs untouched (the historical behaviour,
        preserving bit-identity); float32 models cast so the whole pass runs
        in float32 instead of silently upcasting at the first matmul.
        """
        if self.dtype == np.float32:
            return np.asarray(images, dtype=np.float32)
        return images

    # -- state ----------------------------------------------------------------
    def state_dict(self) -> dict:
        """Parameter/buffer arrays of the wrapped model (see :class:`Module`)."""
        return self.model.state_dict()

    def load_state_dict(self, state: dict) -> "ImageClassifier":
        self.model.load_state_dict(state)
        return self

    # -- training -----------------------------------------------------------
    def _make_optimizer(self, config: TrainingConfig) -> nn.optim.Optimizer:
        params = self.model.parameters()
        if config.optimizer.lower() == "sgd":
            return nn.SGD(
                params,
                lr=config.learning_rate,
                momentum=0.9,
                weight_decay=config.weight_decay,
            )
        if config.optimizer.lower() == "adam":
            return nn.Adam(
                params, lr=config.learning_rate, weight_decay=config.weight_decay
            )
        raise ValueError(f"unknown optimizer {config.optimizer!r}")

    def fit(
        self,
        train_dataset: ImageDataset,
        config: Optional[TrainingConfig] = None,
        rng: SeedLike = None,
        val_dataset: Optional[ImageDataset] = None,
        augment: bool = False,
        epoch_callback: Optional[Callable[[int, float], None]] = None,
    ) -> TrainingHistory:
        """Train the wrapped model on ``train_dataset``; returns the loss history."""
        config = config or TrainingConfig()
        rng = new_rng(rng)
        optimizer = self._make_optimizer(config)
        criterion = nn.CrossEntropyLoss(label_smoothing=config.label_smoothing)
        self.model.train()
        history = TrainingHistory()
        for epoch in range(config.epochs):
            epoch_losses = []
            epoch_accs = []
            for images, labels in train_dataset.batches(
                config.batch_size, shuffle=True, rng=rng
            ):
                if augment:
                    images = random_horizontal_flip(images, rng=rng)
                logits = self.model(self._as_input(images))
                loss = criterion(logits, labels)
                optimizer.zero_grad()
                self.model.backward(criterion.backward())
                optimizer.step()
                epoch_losses.append(loss)
                epoch_accs.append(accuracy(logits, labels))
            history.losses.append(float(np.mean(epoch_losses)))
            history.train_accuracies.append(float(np.mean(epoch_accs)))
            if val_dataset is not None:
                history.val_accuracies.append(self.evaluate(val_dataset))
                self.model.train()
            if epoch_callback is not None:
                epoch_callback(epoch, history.losses[-1])
        self.model.eval()
        self.history = history
        return history

    # -- inference ------------------------------------------------------------
    def predict_logits(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Raw logits for an NCHW batch (model switched to eval mode)."""
        self.model.eval()
        images = self._as_input(images)
        outputs = []
        for start in range(0, images.shape[0], batch_size):
            outputs.append(self.model(images[start : start + batch_size]))
        if not outputs:
            return np.empty((0, self.num_classes), dtype=self.dtype)
        return np.concatenate(outputs, axis=0)

    def predict_proba(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Softmax confidence vectors — the only view a black-box defender gets."""
        return softmax(self.predict_logits(images, batch_size), axis=1)

    def predict(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Hard label predictions."""
        return np.argmax(self.predict_logits(images, batch_size), axis=1)

    def features(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Penultimate-layer features (white-box defenses and visualisation only)."""
        self.model.eval()
        images = self._as_input(images)
        outputs = []
        for start in range(0, images.shape[0], batch_size):
            outputs.append(self.model.features(images[start : start + batch_size]))
        return np.concatenate(outputs, axis=0)

    # -- evaluation -------------------------------------------------------------
    def evaluate(self, dataset: ImageDataset, batch_size: int = 256) -> float:
        """Top-1 accuracy on a dataset."""
        if len(dataset) == 0:
            return 0.0
        logits = self.predict_logits(dataset.images, batch_size)
        return accuracy(logits, dataset.labels)

    def evaluate_attack_success(
        self,
        triggered_images: np.ndarray,
        target_class: int,
        original_labels: Optional[np.ndarray] = None,
    ) -> float:
        """Attack success rate: fraction of triggered inputs classified as the target.

        When ``original_labels`` is provided, samples already belonging to the
        target class are excluded (the standard ASR convention).
        """
        if triggered_images.shape[0] == 0:
            return 0.0
        predictions = self.predict(triggered_images)
        if original_labels is not None:
            keep = np.asarray(original_labels) != target_class
            if not np.any(keep):
                return 0.0
            predictions = predictions[keep]
        return float(np.mean(predictions == target_class))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ImageClassifier(name={self.name!r}, classes={self.num_classes})"
