"""A plain multi-layer perceptron baseline (used in tests and as a sanity model)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import nn
from repro.nn.module import Module, Sequential
from repro.utils.rng import SeedLike, spawn_rngs


class MLPNet(Module):
    """Flatten + stacked Linear/ReLU layers + linear head."""

    def __init__(
        self,
        num_classes: int,
        input_dim: int,
        hidden_dims: Sequence[int] = (64, 32),
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        self.num_classes = int(num_classes)
        self.input_dim = int(input_dim)
        rngs = spawn_rngs(rng, len(hidden_dims) + 1)
        layers = [nn.Flatten()]
        previous = input_dim
        for rng_i, hidden in zip(rngs[:-1], hidden_dims):
            layers.append(nn.Linear(previous, hidden, rng=rng_i))
            layers.append(nn.ReLU())
            previous = hidden
        self.backbone = Sequential(*layers)
        self.feature_dim = previous
        self.head = nn.Linear(previous, num_classes, rng=rngs[-1])

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head(self.backbone(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.backbone.backward(self.head.backward(grad_output))

    def features(self, x: np.ndarray) -> np.ndarray:
        """Penultimate hidden activations, shape (N, feature_dim)."""
        return self.backbone(x)
