"""TinyMobileNet — the reproduction's counterpart of MobileNetV2."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro import nn
from repro.models.blocks import InvertedResidualBlock
from repro.nn.module import Module, Sequential
from repro.utils.rng import SeedLike, spawn_rngs


class TinyMobileNet(Module):
    """A small depthwise-separable CNN with MobileNetV2-style inverted residuals."""

    def __init__(
        self,
        num_classes: int,
        in_channels: int = 3,
        block_settings: Sequence[Tuple[int, int, int]] = ((8, 1, 1), (16, 2, 2), (16, 1, 2)),
        stem_channels: int = 8,
        rng: SeedLike = None,
    ) -> None:
        """``block_settings`` is a sequence of ``(out_channels, stride, expansion)``."""
        super().__init__()
        self.num_classes = int(num_classes)
        self.in_channels = int(in_channels)
        rngs = spawn_rngs(rng, 2 + len(block_settings))
        rng_iter = iter(rngs)

        stem = Sequential(
            nn.Conv2d(in_channels, stem_channels, 3, padding=1, bias=False, rng=next(rng_iter)),
            nn.BatchNorm2d(stem_channels),
            nn.ReLU(),
        )
        blocks = Sequential()
        channels = stem_channels
        for out_channels, stride, expansion in block_settings:
            blocks.append(
                InvertedResidualBlock(
                    channels, out_channels, stride=stride, expansion=expansion,
                    rng=next(rng_iter),
                )
            )
            channels = out_channels
        self.backbone = Sequential(stem, blocks, nn.GlobalAvgPool2d())
        self.feature_dim = channels
        self.head = nn.Linear(channels, num_classes, rng=next(rng_iter))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head(self.backbone(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.backbone.backward(self.head.backward(grad_output))

    def features(self, x: np.ndarray) -> np.ndarray:
        """Penultimate (pre-head) feature vectors, shape (N, feature_dim)."""
        return self.backbone(x)
