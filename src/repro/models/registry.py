"""Architecture registry mapping the paper's model names onto the scaled-down zoo."""

from __future__ import annotations

from typing import Tuple

from repro.models.classifier import ImageClassifier
from repro.models.mlp import MLPNet
from repro.models.mobilenet import TinyMobileNet
from repro.models.resnet import TinyResNet
from repro.models.vit import TinyViT
from repro.nn.module import Module
from repro.utils.rng import SeedLike

_RESNET_ALIASES = ("resnet18", "resnet", "tinyresnet")
_MOBILENET_ALIASES = ("mobilenetv2", "mobilenet", "tinymobilenet")
_VIT_ALIASES = ("mobilevit", "swin", "swim", "vit", "tinyvit")
_MLP_ALIASES = ("mlp",)


def available_architectures() -> Tuple[str, ...]:
    """Canonical architecture names accepted by :func:`build_model`."""
    return ("resnet18", "mobilenetv2", "mobilevit", "swin", "mlp")


def architecture_family(architecture: str) -> str:
    """Coarse family of an architecture name: "cnn", "transformer" or "mlp".

    Used by policy code that picks an execution strategy per family (e.g. the
    stacked shadow-training engine defaults to stacking transformer pools,
    whose many small token-space ops are Python-overhead-bound, and to the
    sequential loop for cache-bound CNN/MLP pools).
    """
    arch = architecture.lower()
    if arch in _RESNET_ALIASES or arch in _MOBILENET_ALIASES:
        return "cnn"
    if arch in _VIT_ALIASES:
        return "transformer"
    if arch in _MLP_ALIASES:
        return "mlp"
    raise ValueError(
        f"unknown architecture {architecture!r}; available: {available_architectures()}"
    )


def build_model(
    architecture: str,
    num_classes: int,
    image_size: int = 16,
    in_channels: int = 3,
    rng: SeedLike = None,
) -> Module:
    """Construct a model of the requested family (paper names are aliases)."""
    arch = architecture.lower()
    if arch in _RESNET_ALIASES:
        return TinyResNet(num_classes, in_channels=in_channels, rng=rng)
    if arch in _MOBILENET_ALIASES:
        return TinyMobileNet(num_classes, in_channels=in_channels, rng=rng)
    if arch in _VIT_ALIASES:
        patch = 4 if image_size % 4 == 0 else 2
        return TinyViT(
            num_classes,
            image_size=image_size,
            patch_size=patch,
            in_channels=in_channels,
            rng=rng,
        )
    if arch in _MLP_ALIASES:
        return MLPNet(num_classes, input_dim=in_channels * image_size * image_size, rng=rng)
    raise ValueError(
        f"unknown architecture {architecture!r}; available: {available_architectures()}"
    )


def build_classifier(
    architecture: str,
    num_classes: int,
    image_size: int = 16,
    in_channels: int = 3,
    rng: SeedLike = None,
    name: str | None = None,
) -> ImageClassifier:
    """Build a model and wrap it in an :class:`ImageClassifier`."""
    model = build_model(architecture, num_classes, image_size, in_channels, rng)
    return ImageClassifier(
        model,
        num_classes,
        name=name or architecture,
        architecture=architecture.lower(),
        image_size=image_size,
        in_channels=in_channels,
    )
