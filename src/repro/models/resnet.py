"""TinyResNet — the reproduction's counterpart of ResNet18."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import nn
from repro.models.blocks import ResidualBlock
from repro.nn.module import Module, Sequential
from repro.utils.rng import SeedLike, spawn_rngs


class TinyResNet(Module):
    """A small residual CNN (stem + residual stages + global pooling + linear head).

    Default widths yield roughly 10k parameters, which trains to high accuracy
    on the synthetic datasets in a handful of epochs on one CPU core while
    keeping the residual structure of ResNet18.
    """

    def __init__(
        self,
        num_classes: int,
        in_channels: int = 3,
        widths: Sequence[int] = (8, 16),
        blocks_per_stage: int = 1,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        self.num_classes = int(num_classes)
        self.in_channels = int(in_channels)
        self.widths = tuple(int(w) for w in widths)
        rngs = spawn_rngs(rng, 2 + len(self.widths) * blocks_per_stage)
        rng_iter = iter(rngs)

        stem = Sequential(
            nn.Conv2d(in_channels, self.widths[0], 3, padding=1, bias=False, rng=next(rng_iter)),
            nn.BatchNorm2d(self.widths[0]),
            nn.ReLU(),
        )
        stages = Sequential()
        channels = self.widths[0]
        for stage_index, width in enumerate(self.widths):
            for block_index in range(blocks_per_stage):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                stages.append(
                    ResidualBlock(channels, width, stride=stride, rng=next(rng_iter))
                )
                channels = width
        self.backbone = Sequential(stem, stages, nn.GlobalAvgPool2d())
        self.feature_dim = channels
        self.head = nn.Linear(channels, num_classes, rng=next(rng_iter))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head(self.backbone(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.backbone.backward(self.head.backward(grad_output))

    def features(self, x: np.ndarray) -> np.ndarray:
        """Penultimate (pre-head) feature vectors, shape (N, feature_dim)."""
        return self.backbone(x)
