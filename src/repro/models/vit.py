"""TinyViT — patch-embedding transformer, stand-in for MobileViT / Swin."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.blocks import TokenMean, TransformerBlock
from repro.nn import stacked
from repro.nn.module import Module, Sequential
from repro.nn.parameter import Parameter
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


class _AddPositionalEmbedding(Module):
    """Learned additive positional embedding over (N, T, D) tokens."""

    def __init__(self, num_tokens: int, dim: int, rng: SeedLike = None) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.embedding = Parameter(
            rng.normal(0.0, 0.02, size=(1, num_tokens, dim)), name="pos_embedding"
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._batch = x.shape[0]
        return x + self.embedding.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self.embedding.accumulate_grad(grad_output.sum(axis=0, keepdims=True))
        return grad_output


# the positional embedding holds a direct parameter, so the stacked training
# engine lifts it through a registered counterpart: the (1, T, D) embeddings
# stack to (K, 1, T, D) and broadcast over the batch axis unchanged
stacked.register_leaf(
    _AddPositionalEmbedding,
    lambda modules: stacked.StackedAdditiveEmbedding(
        np.stack([m.embedding.data for m in modules]), "embedding"
    ),
)


class TinyViT(Module):
    """A small vision transformer: patch embedding, positional embedding,
    pre-norm transformer blocks, token-mean pooling and a linear head."""

    def __init__(
        self,
        num_classes: int,
        image_size: int = 16,
        patch_size: int = 4,
        in_channels: int = 3,
        embed_dim: int = 16,
        depth: int = 2,
        num_heads: int = 2,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        self.num_classes = int(num_classes)
        self.image_size = int(image_size)
        rngs = spawn_rngs(rng, 3 + depth)
        rng_iter = iter(rngs)

        patch = nn.PatchEmbedding(image_size, patch_size, in_channels, embed_dim, rng=next(rng_iter))
        layers = [patch, _AddPositionalEmbedding(patch.num_patches, embed_dim, rng=next(rng_iter))]
        for _ in range(depth):
            layers.append(TransformerBlock(embed_dim, num_heads, rng=next(rng_iter)))
        layers.append(nn.LayerNorm(embed_dim))
        layers.append(TokenMean())
        self.backbone = Sequential(*layers)
        self.feature_dim = embed_dim
        self.head = nn.Linear(embed_dim, num_classes, rng=next(rng_iter))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head(self.backbone(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.backbone.backward(self.head.backward(grad_output))

    def features(self, x: np.ndarray) -> np.ndarray:
        """Penultimate (pre-head) token-mean feature vectors, shape (N, embed_dim)."""
        return self.backbone(x)
