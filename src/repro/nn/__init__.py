"""A small, self-contained neural-network framework on top of numpy.

The framework follows an explicit forward/backward layer design (no tape-based
autograd): every :class:`~repro.nn.module.Module` caches what it needs during
``forward`` and produces input gradients plus parameter gradients during
``backward``.  This keeps the implementation transparent, easy to test with
numerical gradient checks, and fast enough on a single CPU core for the small
architectures used throughout the reproduction.

Public surface
--------------
* :class:`Parameter`, :class:`Module`, :class:`Sequential`
* Layers: :class:`Linear`, :class:`Conv2d`, :class:`BatchNorm1d`,
  :class:`BatchNorm2d`, :class:`LayerNorm`, :class:`Dropout`, :class:`Flatten`,
  :class:`MaxPool2d`, :class:`AvgPool2d`, :class:`GlobalAvgPool2d`,
  :class:`MultiHeadSelfAttention`, :class:`PatchEmbedding`
* Activations: :class:`ReLU`, :class:`LeakyReLU`, :class:`GELU`,
  :class:`Sigmoid`, :class:`Tanh`, :class:`Identity`
* Losses: :class:`CrossEntropyLoss`, :class:`MSELoss`
* Optimisers: :class:`SGD`, :class:`Adam`, :class:`StepLR`, :class:`CosineLR`
* Stacked-model engine (:mod:`repro.nn.stacked`): :func:`stack_modules` /
  :func:`unstack_modules`, :func:`fit_stacked`, :func:`predict_proba_many`
  and the ``Stacked*`` layer/optimiser/loss counterparts
"""

from repro.nn.parameter import Parameter
from repro.nn.module import Module, Sequential
from repro.nn.activations import GELU, Identity, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers import Dropout, Flatten, Linear
from repro.nn.conv import Conv2d
from repro.nn.norm import BatchNorm1d, BatchNorm2d, LayerNorm
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.attention import MultiHeadSelfAttention, PatchEmbedding
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam, CosineLR, StepLR
from repro.nn import functional
from repro.nn import init
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.nn import stacked
from repro.nn.stacked import (
    StackedAdam,
    StackedBatchNorm1d,
    StackedBatchNorm2d,
    StackedConv2d,
    StackedCrossEntropyLoss,
    StackedLayerNorm,
    StackedLinear,
    StackedSGD,
    UnstackableModelError,
    fit_stacked,
    predict_logits_many,
    predict_proba_many,
    stack_modules,
    unstack_modules,
)

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "Dropout",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "MultiHeadSelfAttention",
    "PatchEmbedding",
    "ReLU",
    "LeakyReLU",
    "GELU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
    "functional",
    "init",
    "save_state_dict",
    "load_state_dict",
    "stacked",
    "StackedAdam",
    "StackedBatchNorm1d",
    "StackedBatchNorm2d",
    "StackedConv2d",
    "StackedCrossEntropyLoss",
    "StackedLayerNorm",
    "StackedLinear",
    "StackedSGD",
    "UnstackableModelError",
    "fit_stacked",
    "predict_logits_many",
    "predict_proba_many",
    "stack_modules",
    "unstack_modules",
]
