"""Element-wise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    # Python float, not np.float64 scalar: a 0-d float64 would promote
    # float32 activations to float64 under NumPy 2 promotion rules
    _C = float(np.sqrt(2.0 / np.pi))

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._inner = self._C * (x + 0.044715 * x**3)
        self._tanh = np.tanh(self._inner)
        return 0.5 * x * (1.0 + self._tanh)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._x
        sech2 = 1.0 - self._tanh**2
        d_inner = self._C * (1.0 + 3 * 0.044715 * x**2)
        grad = 0.5 * (1.0 + self._tanh) + 0.5 * x * sech2 * d_inner
        return grad_output * grad


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        # follow the forward dtype (float32 batches stay float32); integer
        # inputs still promote to float64 so the division below is exact
        dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
        out = np.empty_like(x, dtype=dtype)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        expx = np.exp(x[~pos])
        out[~pos] = expx / (1.0 + expx)
        self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._out * (1.0 - self._out)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._out**2)


class Identity(Module):
    """No-op layer, useful as an optional-stage placeholder."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output
