"""Patch embedding and multi-head self-attention for the transformer-style models.

These layers back the ``TinyViT`` architecture (the reproduction's stand-in for
MobileViT / Swin Transformer in the paper's architecture-agnosticism study).
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.utils.rng import SeedLike, spawn_rngs


class PatchEmbedding(Module):
    """Split an NCHW image into non-overlapping patches and project them to tokens.

    Output shape is ``(N, num_patches, embed_dim)``.
    """

    def __init__(
        self,
        image_size: int,
        patch_size: int,
        in_channels: int,
        embed_dim: int,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if image_size % patch_size != 0:
            raise ValueError(
                f"image_size ({image_size}) must be divisible by patch_size ({patch_size})"
            )
        self.image_size = int(image_size)
        self.patch_size = int(patch_size)
        self.in_channels = int(in_channels)
        self.embed_dim = int(embed_dim)
        self.grid = image_size // patch_size
        self.num_patches = self.grid * self.grid
        self.patch_dim = in_channels * patch_size * patch_size
        self.proj = Linear(self.patch_dim, embed_dim, rng=rng)

    def _patchify(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.patch_size
        g = self.grid
        x = x.reshape(n, c, g, p, g, p)
        # (N, gH, gW, C, p, p) -> (N, tokens, patch_dim)
        x = x.transpose(0, 2, 4, 1, 3, 5).reshape(n, g * g, c * p * p)
        return x

    def _unpatchify_grad(self, grad: np.ndarray, n: int) -> np.ndarray:
        p = self.patch_size
        g = self.grid
        c = self.in_channels
        grad = grad.reshape(n, g, g, c, p, p).transpose(0, 3, 1, 4, 2, 5)
        return grad.reshape(n, c, g * p, g * p)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[2] != self.image_size or x.shape[3] != self.image_size:
            raise ValueError(
                f"expected {self.image_size}x{self.image_size} input, got "
                f"{x.shape[2]}x{x.shape[3]}"
            )
        self._n = x.shape[0]
        tokens = self._patchify(x)
        return self.proj(tokens)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_tokens = self.proj.backward(grad_output)
        return self._unpatchify_grad(grad_tokens, self._n)


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product multi-head self-attention over (N, T, D) tokens."""

    def __init__(self, embed_dim: int, num_heads: int, rng: SeedLike = None) -> None:
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError(
                f"embed_dim ({embed_dim}) must be divisible by num_heads ({num_heads})"
            )
        self.embed_dim = int(embed_dim)
        self.num_heads = int(num_heads)
        self.head_dim = embed_dim // num_heads
        rngs = spawn_rngs(rng, 4)
        self.q_proj = Linear(embed_dim, embed_dim, rng=rngs[0])
        self.k_proj = Linear(embed_dim, embed_dim, rng=rngs[1])
        self.v_proj = Linear(embed_dim, embed_dim, rng=rngs[2])
        self.out_proj = Linear(embed_dim, embed_dim, rng=rngs[3])

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        n, t, _ = x.shape
        return x.reshape(n, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        n, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(n, t, h * d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))
        # Python float, not np.float64 scalar: a 0-d float64 would promote
        # float32 activations to float64 under NumPy 2 promotion rules
        scale = 1.0 / float(np.sqrt(self.head_dim))
        scores = np.matmul(q, k.transpose(0, 1, 3, 2)) * scale
        attn = softmax(scores, axis=-1)
        context = np.matmul(attn, v)
        self._q, self._k, self._v, self._attn, self._scale = q, k, v, attn, scale
        merged = self._merge_heads(context)
        return self.out_proj(merged)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_merged = self.out_proj.backward(grad_output)
        n, t, _ = grad_merged.shape
        grad_context = self._split_heads(grad_merged)
        grad_attn = np.matmul(grad_context, self._v.transpose(0, 1, 3, 2))
        grad_v = np.matmul(self._attn.transpose(0, 1, 3, 2), grad_context)
        # softmax backward along the key axis
        sum_term = np.sum(grad_attn * self._attn, axis=-1, keepdims=True)
        grad_scores = self._attn * (grad_attn - sum_term)
        grad_q = np.matmul(grad_scores, self._k) * self._scale
        grad_k = np.matmul(grad_scores.transpose(0, 1, 3, 2), self._q) * self._scale
        grad_x = self.q_proj.backward(self._merge_heads(grad_q))
        grad_x = grad_x + self.k_proj.backward(self._merge_heads(grad_k))
        grad_x = grad_x + self.v_proj.backward(self._merge_heads(grad_v))
        return grad_x
