"""2-D convolution implemented with im2col, supporting grouped/depthwise kernels."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.functional import col2im, im2col
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import SeedLike, new_rng


class Conv2d(Module):
    """2-D convolution over NCHW batches.

    ``groups > 1`` splits channels into groups convolved independently;
    ``groups == in_channels == out_channels`` is a depthwise convolution, which
    the MobileNet-style architecture uses.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"in_channels ({in_channels}) and out_channels ({out_channels}) "
                f"must both be divisible by groups ({groups})"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.groups = int(groups)
        rng = new_rng(rng)
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels // groups, kernel_size, kernel_size),
                fan_in=fan_in,
                rng=rng,
            ),
            name="weight",
        )
        self.use_bias = bool(bias)
        if self.use_bias:
            self.bias = Parameter(init.zeros((out_channels,)), name="bias")

    # -- helpers -----------------------------------------------------------
    def _forward_group(self, x: np.ndarray, weight: np.ndarray):
        cols, out_h, out_w = im2col(x, self.kernel_size, self.stride, self.padding)
        w_mat = weight.reshape(weight.shape[0], -1)
        out = cols @ w_mat.T
        return out, cols, out_h, out_w

    def forward(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        self._input_shape = x.shape
        cin_g = self.in_channels // self.groups
        cout_g = self.out_channels // self.groups
        self._cols = []
        outputs = []
        for g in range(self.groups):
            xg = x[:, g * cin_g : (g + 1) * cin_g]
            wg = self.weight.data[g * cout_g : (g + 1) * cout_g]
            out, cols, out_h, out_w = self._forward_group(xg, wg)
            self._cols.append(cols)
            outputs.append(out)
        self._out_hw = (out_h, out_w)
        # each `out` is (N*out_h*out_w, cout_g); stack along channel axis
        merged = np.concatenate(outputs, axis=1)
        merged = merged.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if self.use_bias:
            merged = merged + self.bias.data[None, :, None, None]
        return merged

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, _, out_h, out_w = grad_output.shape
        cin_g = self.in_channels // self.groups
        cout_g = self.out_channels // self.groups
        if self.use_bias:
            self.bias.accumulate_grad(grad_output.sum(axis=(0, 2, 3)))
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, self.out_channels)
        grad_input = np.empty(self._input_shape, dtype=np.float64)
        grad_weight = np.empty_like(self.weight.data)
        group_input_shape = (n, cin_g, self._input_shape[2], self._input_shape[3])
        for g in range(self.groups):
            gout = grad_flat[:, g * cout_g : (g + 1) * cout_g]
            cols = self._cols[g]
            wg = self.weight.data[g * cout_g : (g + 1) * cout_g].reshape(cout_g, -1)
            grad_weight[g * cout_g : (g + 1) * cout_g] = (gout.T @ cols).reshape(
                cout_g, cin_g, self.kernel_size, self.kernel_size
            )
            grad_cols = gout @ wg
            grad_input[:, g * cin_g : (g + 1) * cin_g] = col2im(
                grad_cols, group_input_shape, self.kernel_size, self.stride, self.padding
            )
        self.weight.accumulate_grad(grad_weight)
        return grad_input
