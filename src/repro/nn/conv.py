"""2-D convolution with selectable engines: implicit GEMM, pointwise, im2col.

The layer keeps three interchangeable execution paths for ``groups == 1``:

* **pointwise** — ``kernel_size == 1 && padding == 0``: the convolution *is* a
  channel-mixing matmul, so forward/backward run directly on the (strided)
  input without any unfold at all.
* **implicit GEMM** — contract ``einsum('nchwyx,ocyx->nohw')`` directly over
  the zero-copy :func:`~repro.nn.functional.conv_windows` placement view,
  never materialising the ``(N*L, C*k*k)`` column copy that makes explicit
  im2col memory-bound; grad-input uses the fused cache-blocked
  :func:`~repro.nn.functional.matmul_col2im`.
* **im2col** — the explicit unfold-GEMM path (also the grouped/depthwise
  fallback), issuing exactly the GEMM shapes the layer has always issued.

Engine selection is **precision-gated**.  Re-tiling or re-orienting a GEMM
changes BLAS kernel choice and hence accumulation rounding on this platform,
so the alternative engines are *not* bitwise-interchangeable with im2col —
they agree only to accumulation-rounding tolerance (~1e-15 relative per
element in float64).  The float64 reference tier carries a bit-identity
contract (stacked/sequential parity, warm artifact caches keyed on weight
fingerprints), so under ``auto`` it always runs im2col; its backward still
benefits from the cache-blocked :func:`~repro.nn.functional.col2im`, whose
scatter-add blocking provably preserves per-element accumulation order.  The
float32 training tier's contract is tolerance-bounded detector equivalence,
not byte parity, so under ``auto`` it picks pointwise / implicit by the size
heuristic (implicit once the would-be column buffer exceeds
``_IMPLICIT_MIN_COLS_BYTES``; dispatch-bound small shapes stay on im2col).
``REPRO_CONV_ENGINE`` (``auto`` | ``im2col`` | ``implicit``) overrides the
heuristic in any dtype for benchmarking and the engine-parity tests.
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn import init
from repro.nn.functional import col2im, conv_windows, im2col, matmul_col2im
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import SeedLike, new_rng

#: accepted values for the REPRO_CONV_ENGINE override
CONV_ENGINES = ("auto", "im2col", "implicit")

#: minimum size of the would-be im2col column buffer before the implicit
#: engine takes over under "auto": below this the whole problem fits in cache
#: and the explicit unfold's single BLAS GEMM has the lowest dispatch
#: overhead; above it the k^2-sized column copy is pure memory traffic that
#: the implicit contraction avoids
_IMPLICIT_MIN_COLS_BYTES = 1 << 18


def conv_engine_override() -> str:
    """The process-wide conv engine override from ``REPRO_CONV_ENGINE``."""
    engine = (os.environ.get("REPRO_CONV_ENGINE") or "auto").lower()
    if engine not in CONV_ENGINES:
        raise ValueError(
            f"REPRO_CONV_ENGINE must be one of {CONV_ENGINES}, got {engine!r}"
        )
    return engine


class Conv2d(Module):
    """2-D convolution over NCHW batches.

    ``groups > 1`` splits channels into groups convolved independently;
    ``groups == in_channels == out_channels`` is a depthwise convolution, which
    the MobileNet-style architecture uses.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"in_channels ({in_channels}) and out_channels ({out_channels}) "
                f"must both be divisible by groups ({groups})"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.groups = int(groups)
        rng = new_rng(rng)
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels // groups, kernel_size, kernel_size),
                fan_in=fan_in,
                rng=rng,
            ),
            name="weight",
        )
        self.use_bias = bool(bias)
        if self.use_bias:
            self.bias = Parameter(init.zeros((out_channels,)), name="bias")

    # -- engine selection --------------------------------------------------
    def _select_engine(self, x: np.ndarray) -> str:
        """Pick the execution path for this input (see module docstring)."""
        if self.groups != 1:
            return "im2col"
        engine = conv_engine_override()
        low_precision = x.dtype == np.float32
        if (
            self.kernel_size == 1
            and self.padding == 0
            and (low_precision or engine == "implicit")
        ):
            return "pointwise"
        if engine != "auto":
            return engine
        if not low_precision:
            # float64 reference tier: bit-identity contract — keep the exact
            # historical GEMM shapes
            return "im2col"
        n, c, h, w = x.shape
        out_h = (h + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (w + 2 * self.padding - self.kernel_size) // self.stride + 1
        cols_bytes = (
            n * out_h * out_w * c * self.kernel_size * self.kernel_size * x.itemsize
        )
        return "implicit" if cols_bytes >= _IMPLICIT_MIN_COLS_BYTES else "im2col"

    # -- helpers -----------------------------------------------------------
    def _unfold_group(self, x: np.ndarray, group: int):
        cin_g = self.in_channels // self.groups
        xg = x if self.groups == 1 else x[:, group * cin_g : (group + 1) * cin_g]
        return im2col(xg, self.kernel_size, self.stride, self.padding)

    def _strided_input(self, x: np.ndarray) -> np.ndarray:
        """The input pixels a pointwise (k=1, p=0) conv actually reads."""
        if self.stride == 1:
            return x
        return x[:, :, :: self.stride, :: self.stride]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        self._dtype = x.dtype
        engine = self._select_engine(x)
        self._engine = engine
        if engine == "pointwise":
            return self._forward_pointwise(x)
        if engine == "implicit":
            return self._forward_implicit(x)
        return self._forward_im2col(x)

    def _forward_pointwise(self, x: np.ndarray) -> np.ndarray:
        # a 1x1 convolution is channel mixing: (C_out, C_in) @ (N, C_in, L)
        # without any unfold copy.  The sequential and stacked layers issue
        # identically-shaped per-image cores, so the twins stay consistent
        # with each other even though this orientation rounds differently
        # than the im2col GEMM.
        n = x.shape[0]
        xs = self._strided_input(x)
        out_h, out_w = xs.shape[2], xs.shape[3]
        x3 = xs.reshape(n, self.in_channels, out_h * out_w)
        # the strided view is cheap to retain; backward reuses it in both
        # train and eval mode (white-box prompting backprops in eval)
        self._pw_x3 = x3
        self._out_hw = (out_h, out_w)
        w2 = self.weight.data.reshape(self.out_channels, self.in_channels)
        merged = np.matmul(w2, x3).reshape(n, self.out_channels, out_h, out_w)
        if self.use_bias:
            merged = merged + self.bias.data[None, :, None, None]
        return merged

    def _forward_implicit(self, x: np.ndarray) -> np.ndarray:
        windows, out_h, out_w = conv_windows(
            x, self.kernel_size, self.stride, self.padding
        )
        # the placement view costs at most one input-sized padded copy (vs the
        # k^2-sized column buffer), so it is retained unconditionally — eval
        # backwards (white-box prompting) reuse it without a re-unfold
        self._windows = windows
        self._out_hw = (out_h, out_w)
        merged = np.einsum(
            "nchwyx,ocyx->nohw", windows, self.weight.data, optimize=True
        )
        if self.use_bias:
            merged = merged + self.bias.data[None, :, None, None]
        return merged

    def _forward_im2col(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        cout_g = self.out_channels // self.groups
        # im2col buffers are kernel^2 x larger than the input.  Pure inference
        # must not retain that training-sized scratch, but white-box prompt
        # training backpropagates through the frozen model *in eval mode* and
        # would pay a second unfold per step without it — so eval forwards
        # cache the buffers only while backward passes are actually consuming
        # them (one lazy re-unfold re-arms the cache, one backward-free
        # forward drops it)
        keep_cols = self.training or getattr(self, "_eval_backward_used", False)
        self._eval_backward_used = False
        cols_cache = [] if keep_cols else None
        if self.groups == 1:
            # fast path: no per-group list/concatenate round-trip
            cols, out_h, out_w = self._unfold_group(x, 0)
            if cols_cache is not None:
                cols_cache.append(cols)
            w_mat = self.weight.data.reshape(self.out_channels, -1)
            merged = cols @ w_mat.T
        else:
            outputs = []
            for g in range(self.groups):
                cols, out_h, out_w = self._unfold_group(x, g)
                if cols_cache is not None:
                    cols_cache.append(cols)
                wg = self.weight.data[g * cout_g : (g + 1) * cout_g]
                outputs.append(cols @ wg.reshape(cout_g, -1).T)
            # each output is (N*out_h*out_w, cout_g); stack along channel axis
            merged = np.concatenate(outputs, axis=1)
        self._out_hw = (out_h, out_w)
        self._cols = cols_cache
        # the input reference backs the lazy re-unfold; moot when the cols are
        # already cached, so retain at most one of the two
        self._eval_input = None if keep_cols else x
        merged = merged.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if self.use_bias:
            merged = merged + self.bias.data[None, :, None, None]
        return merged

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.use_bias:
            self.bias.accumulate_grad(grad_output.sum(axis=(0, 2, 3)))
        engine = getattr(self, "_engine", None)
        if engine is None:
            raise RuntimeError("Conv2d.backward called before forward")
        if engine == "pointwise":
            return self._backward_pointwise(grad_output)
        if engine == "implicit":
            return self._backward_implicit(grad_output)
        return self._backward_im2col(grad_output)

    def _backward_pointwise(self, grad_output: np.ndarray) -> np.ndarray:
        n, _, out_h, out_w = grad_output.shape
        hw = out_h * out_w
        x3 = self._pw_x3
        # grad_weight core: (C_out, N*L) @ (N*L, C_in) — the same GEMM the
        # im2col path issues on its column matrix
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(n * hw, self.out_channels)
        x_cols = x3.transpose(0, 2, 1).reshape(n * hw, self.in_channels)
        self.weight.accumulate_grad(
            (grad_flat.T @ x_cols).reshape(self.weight.data.shape)
        )
        w2 = self.weight.data.reshape(self.out_channels, self.in_channels)
        grad3 = np.matmul(
            w2.T, grad_output.reshape(n, self.out_channels, hw)
        )
        if self.stride == 1:
            grad_input = grad3.reshape(self._input_shape)
        else:
            # k=1 means every input pixel feeds at most one output pixel:
            # scatter without accumulation, skipped pixels stay zero
            grad_input = np.zeros(self._input_shape, dtype=grad3.dtype)
            grad_input[:, :, :: self.stride, :: self.stride] = grad3.reshape(
                n, self.in_channels, out_h, out_w
            )
        return np.asarray(grad_input, dtype=self._dtype)

    def _backward_implicit(self, grad_output: np.ndarray) -> np.ndarray:
        n, _, out_h, out_w = grad_output.shape
        self.weight.accumulate_grad(
            np.einsum("nohw,nchwyx->ocyx", grad_output, self._windows, optimize=True)
        )
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(
            n * out_h * out_w, self.out_channels
        )
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        grad_input = matmul_col2im(
            grad_flat, w_mat, self._input_shape, self.kernel_size, self.stride, self.padding
        )
        return np.asarray(grad_input, dtype=self._dtype)

    def _backward_im2col(self, grad_output: np.ndarray) -> np.ndarray:
        n, _, out_h, out_w = grad_output.shape
        cin_g = self.in_channels // self.groups
        cout_g = self.out_channels // self.groups
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, self.out_channels)
        if not self.training:
            self._eval_backward_used = True
        cols_cache = self._cols
        if cols_cache is None:
            # eval-mode backward (white-box prompting runs the frozen model in
            # eval); the im2col buffers were dropped after forward, re-unfold
            if self._eval_input is None:
                raise RuntimeError("Conv2d.backward called before forward")
            cols_cache = [
                self._unfold_group(self._eval_input, g)[0] for g in range(self.groups)
            ]
        if self.groups == 1:
            cols = cols_cache[0]
            w_mat = self.weight.data.reshape(self.out_channels, -1)
            self.weight.accumulate_grad(
                (grad_flat.T @ cols).reshape(self.weight.data.shape)
            )
            # the historical full GEMM, then the cache-blocked fold (which is
            # add-order-preserving, hence bitwise equal to the unblocked one)
            grad_input = col2im(
                grad_flat @ w_mat, self._input_shape, self.kernel_size, self.stride, self.padding
            )
            return np.asarray(grad_input, dtype=self._dtype)
        grad_input = np.empty(self._input_shape, dtype=self._dtype)
        grad_weight = np.empty_like(self.weight.data)
        group_input_shape = (n, cin_g, self._input_shape[2], self._input_shape[3])
        for g in range(self.groups):
            gout = grad_flat[:, g * cout_g : (g + 1) * cout_g]
            cols = cols_cache[g]
            wg = self.weight.data[g * cout_g : (g + 1) * cout_g].reshape(cout_g, -1)
            grad_weight[g * cout_g : (g + 1) * cout_g] = (gout.T @ cols).reshape(
                cout_g, cin_g, self.kernel_size, self.kernel_size
            )
            grad_cols = gout @ wg
            grad_input[:, g * cin_g : (g + 1) * cin_g] = col2im(
                grad_cols, group_input_shape, self.kernel_size, self.stride, self.padding
            )
        self.weight.accumulate_grad(grad_weight)
        return grad_input
