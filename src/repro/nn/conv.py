"""2-D convolution implemented with im2col, supporting grouped/depthwise kernels."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.functional import col2im, im2col
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import SeedLike, new_rng


class Conv2d(Module):
    """2-D convolution over NCHW batches.

    ``groups > 1`` splits channels into groups convolved independently;
    ``groups == in_channels == out_channels`` is a depthwise convolution, which
    the MobileNet-style architecture uses.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"in_channels ({in_channels}) and out_channels ({out_channels}) "
                f"must both be divisible by groups ({groups})"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.groups = int(groups)
        rng = new_rng(rng)
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels // groups, kernel_size, kernel_size),
                fan_in=fan_in,
                rng=rng,
            ),
            name="weight",
        )
        self.use_bias = bool(bias)
        if self.use_bias:
            self.bias = Parameter(init.zeros((out_channels,)), name="bias")

    # -- helpers -----------------------------------------------------------
    def _unfold_group(self, x: np.ndarray, group: int):
        cin_g = self.in_channels // self.groups
        xg = x if self.groups == 1 else x[:, group * cin_g : (group + 1) * cin_g]
        return im2col(xg, self.kernel_size, self.stride, self.padding)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        self._input_shape = x.shape
        self._dtype = x.dtype
        cout_g = self.out_channels // self.groups
        # im2col buffers are kernel^2 x larger than the input.  Pure inference
        # must not retain that training-sized scratch, but white-box prompt
        # training backpropagates through the frozen model *in eval mode* and
        # would pay a second unfold per step without it — so eval forwards
        # cache the buffers only while backward passes are actually consuming
        # them (one lazy re-unfold re-arms the cache, one backward-free
        # forward drops it)
        keep_cols = self.training or getattr(self, "_eval_backward_used", False)
        self._eval_backward_used = False
        cols_cache = [] if keep_cols else None
        if self.groups == 1:
            # fast path: no per-group list/concatenate round-trip
            cols, out_h, out_w = self._unfold_group(x, 0)
            if cols_cache is not None:
                cols_cache.append(cols)
            w_mat = self.weight.data.reshape(self.out_channels, -1)
            merged = cols @ w_mat.T
        else:
            outputs = []
            for g in range(self.groups):
                cols, out_h, out_w = self._unfold_group(x, g)
                if cols_cache is not None:
                    cols_cache.append(cols)
                wg = self.weight.data[g * cout_g : (g + 1) * cout_g]
                outputs.append(cols @ wg.reshape(cout_g, -1).T)
            # each output is (N*out_h*out_w, cout_g); stack along channel axis
            merged = np.concatenate(outputs, axis=1)
        self._out_hw = (out_h, out_w)
        self._cols = cols_cache
        # the input reference backs the lazy re-unfold; moot when the cols are
        # already cached, so retain at most one of the two
        self._eval_input = None if keep_cols else x
        merged = merged.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if self.use_bias:
            merged = merged + self.bias.data[None, :, None, None]
        return merged

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, _, out_h, out_w = grad_output.shape
        cin_g = self.in_channels // self.groups
        cout_g = self.out_channels // self.groups
        if self.use_bias:
            self.bias.accumulate_grad(grad_output.sum(axis=(0, 2, 3)))
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, self.out_channels)
        if not self.training:
            self._eval_backward_used = True
        cols_cache = self._cols
        if cols_cache is None:
            # eval-mode backward (white-box prompting runs the frozen model in
            # eval); the im2col buffers were dropped after forward, re-unfold
            if self._eval_input is None:
                raise RuntimeError("Conv2d.backward called before forward")
            cols_cache = [
                self._unfold_group(self._eval_input, g)[0] for g in range(self.groups)
            ]
        if self.groups == 1:
            cols = cols_cache[0]
            w_mat = self.weight.data.reshape(self.out_channels, -1)
            self.weight.accumulate_grad(
                (grad_flat.T @ cols).reshape(self.weight.data.shape)
            )
            # like the grouped path: scatter-add at full precision, then follow
            # the forward dtype
            grad_input = col2im(
                grad_flat @ w_mat, self._input_shape, self.kernel_size, self.stride, self.padding
            )
            return np.asarray(grad_input, dtype=self._dtype)
        grad_input = np.empty(self._input_shape, dtype=self._dtype)
        grad_weight = np.empty_like(self.weight.data)
        group_input_shape = (n, cin_g, self._input_shape[2], self._input_shape[3])
        for g in range(self.groups):
            gout = grad_flat[:, g * cout_g : (g + 1) * cout_g]
            cols = cols_cache[g]
            wg = self.weight.data[g * cout_g : (g + 1) * cout_g].reshape(cout_g, -1)
            grad_weight[g * cout_g : (g + 1) * cout_g] = (gout.T @ cols).reshape(
                cout_g, cin_g, self.kernel_size, self.kernel_size
            )
            grad_cols = gout @ wg
            grad_input[:, g * cin_g : (g + 1) * cin_g] = col2im(
                grad_cols, group_input_shape, self.kernel_size, self.stride, self.padding
            )
        self.weight.accumulate_grad(grad_weight)
        return grad_input
