"""Stateless numerical routines shared by layers, losses and defenses."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def as_float(x: np.ndarray) -> np.ndarray:
    """Coerce to a floating dtype, preserving float32 (the low-precision tier).

    Non-float inputs (int arrays, lists) promote to float64 exactly as the old
    hard cast did, so every pre-existing caller sees unchanged results.  This
    is the sanctioned coercion point for forward-path entries: everything else
    in ``repro/nn`` must follow the dtype this hands it.
    """
    x = np.asarray(x)
    if x.dtype == np.float32:
        return x
    return np.asarray(x, dtype=np.float64)  # repro-lint: disable=P103 -- the reference-tier coercion point itself: non-float32 input promotes to float64 by contract


#: backwards-compatible private alias (pre-dates the public spelling)
_as_float = as_float


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis`` (dtype-preserving for floats)."""
    logits = as_float(logits)
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis`` (dtype-preserving for floats)."""
    logits = as_float(logits)
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float64) -> np.ndarray:
    """Integer labels -> one-hot matrix of shape (N, num_classes)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range [0, {num_classes}): [{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function (dtype-preserving for floats)."""
    x = as_float(x)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy given logits or probabilities of shape (N, K).

    Accepts any dtype numpy can ``argmax`` over; an empty batch (``N == 0``,
    any dtype — e.g. the ``(0, K)`` output of ``predict_logits`` on no
    images) returns ``0.0`` rather than propagating a NaN mean.
    """
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (N, K), got shape {logits.shape}")
    if logits.shape[0] != labels.shape[0]:
        raise ValueError("logits and labels disagree on batch size")
    if logits.shape[0] == 0:
        return 0.0
    preds = np.argmax(logits, axis=1)
    return float(np.mean(preds == labels))


# ---------------------------------------------------------------------------
# im2col / col2im — the workhorse behind Conv2d and the pooling layers.
#
# Shape/dtype contract (shared by the explicit im2col GEMM path and the
# implicit-GEMM engine in repro.nn.conv, which must stay interchangeable):
#
# * im2col(x: (N, C, H, W)) -> cols: (N*out_h*out_w, C*kernel*kernel), with
#   rows ordered image-major then row-major over the output grid, and columns
#   ordered channel-major then (ky, kx) row-major over the kernel window.
#   conv_windows exposes the same placement tensor as a strided
#   (N, C, out_h, out_w, k, k) view without the column copy.
# * col2im(cols) is the exact adjoint: scatter-add over the same ordering,
#   back to (N, C, H, W).
# * Both preserve the input dtype (float32 stays float32; the accumulator in
#   col2im is the cols dtype).  col2im's cache blocking is bitwise-safe (it
#   never reorders any per-element accumulation), but anything that re-tiles
#   or re-orients a *GEMM* — matmul_col2im's fused fold, the implicit/
#   pointwise conv engines — changes BLAS kernel selection and rounds
#   differently on some shapes; those paths agree with the explicit form only
#   to accumulation-rounding tolerance and are reserved for the float32 tier
#   (see repro.nn.conv).
# ---------------------------------------------------------------------------

#: byte budget per col2im scatter-add tile; sized so one tile's working set
#: (cols slice + padded slice) stays within a typical per-core L2.  Folding
#: the whole (N, C·k·k, L) buffer in one pass streams it k^2 times through
#: DRAM; per-image blocks keep the scatter-add resident.
_COL2IM_BLOCK_BYTES = 1 << 19


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def conv_windows(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Strided kernel-placement view over an NCHW batch (no data copied).

    Returns ``(windows, out_h, out_w)`` where ``windows`` is a zero-copy
    ``(N, C, out_h, out_w, kernel, kernel)`` view (over a padded copy when
    ``padding > 0``) whose ``[n, c, i, j]`` block is the receptive field of
    output pixel ``(i, j)``.  ``im2col`` is exactly
    ``windows.transpose(0, 2, 3, 1, 4, 5).reshape(N*out_h*out_w, C*k*k)``;
    the implicit-GEMM conv engine contracts over this view directly instead
    of materialising that k^2-times-larger column copy.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    return windows[:, :, ::stride, ::stride], out_h, out_w


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold an NCHW batch into a column matrix.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kernel * kernel)`` — see the module-level
    contract above for the exact row/column ordering.

    Built on :func:`conv_windows`: the unfold itself is a zero-copy view (no
    per-offset Python loop), and the only copy is the final reshape into
    column layout.  The input dtype is preserved, so float32 megabatches stay
    float32 end to end.
    """
    n, c = x.shape[:2]
    windows, out_h, out_w = conv_windows(x, kernel, stride, padding)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kernel * kernel)
    return cols, out_h, out_w


def _fold_block(padded, cols6, kernel: int, stride: int, out_h: int, out_w: int) -> None:
    """Scatter-add one image block of placement gradients into ``padded``.

    ``cols6`` is ``(B, C, k, k, out_h, out_w)``; per (ky, kx) offset the
    strided slice assignment is the adjoint of the ``conv_windows`` view.
    """
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols6[:, :, ky, kx, :, :]


def _col2im_block_images(per_image_bytes: int) -> int:
    """How many images one col2im scatter-add tile should cover."""
    return max(1, _COL2IM_BLOCK_BYTES // max(per_image_bytes, 1))


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a column matrix back into an NCHW gradient (adjoint of :func:`im2col`).

    The k^2-offset scatter-add is cache-blocked over images: per-image folds
    are independent, so tiling the batch axis keeps each tile's cols slice
    and output slice L2-resident instead of streaming the whole k^2-sized
    buffer through DRAM once per kernel offset.  Per-element accumulation
    order over (ky, kx) is unchanged, so the result is bitwise identical to
    the unblocked fold.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    cols6 = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    block = _col2im_block_images(out_h * out_w * c * kernel * kernel * cols.itemsize)
    for start in range(0, n, block):
        _fold_block(
            padded[start : start + block],
            cols6[start : start + block],
            kernel,
            stride,
            out_h,
            out_w,
        )
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def matmul_col2im(
    grad_flat: np.ndarray,
    w_mat: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fused ``col2im(grad_flat @ w_mat)`` without the full column buffer.

    ``grad_flat`` is ``(N*out_h*out_w, C_out)`` (image-major rows, like
    im2col) and ``w_mat`` is ``(C_out, C*k*k)``; the result is the conv
    grad-input of shape ``input_shape``.  Each image tile runs its slice of
    the GEMM and immediately folds the product while it is cache-hot, so the
    ``(N*out_h*out_w, C*k*k)`` intermediate never exists in full.  Row
    blocking re-tiles the GEMM, which can change BLAS kernel selection and
    hence rounding, so the result matches the unfused two-step form only to
    accumulation tolerance — this fused path therefore backs the implicit
    conv engine (float32 tier), never the float64 reference path.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    hw = out_h * out_w
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=grad_flat.dtype)
    block = _col2im_block_images(hw * c * kernel * kernel * grad_flat.itemsize)
    for start in range(0, n, block):
        stop = min(start + block, n)
        grad_cols = grad_flat[start * hw : stop * hw] @ w_mat
        cols6 = grad_cols.reshape(
            stop - start, out_h, out_w, c, kernel, kernel
        ).transpose(0, 3, 4, 5, 1, 2)
        _fold_block(padded[start:stop], cols6, kernel, stride, out_h, out_w)
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``."""
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    # norm of per-array norms == global norm, computed in two vectorised calls
    # instead of a Python generator of per-array floats
    total = float(np.linalg.norm([np.linalg.norm(g.ravel()) for g in grads]))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total
