"""Stateless numerical routines shared by layers, losses and defenses."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels -> one-hot matrix of shape (N, num_classes)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range [0, {num_classes}): [{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def sigmoid(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy given logits or probabilities of shape (N, K)."""
    labels = np.asarray(labels)
    if logits.shape[0] != labels.shape[0]:
        raise ValueError("logits and labels disagree on batch size")
    if logits.shape[0] == 0:
        return 0.0
    preds = np.argmax(logits, axis=1)
    return float(np.mean(preds == labels))


# ---------------------------------------------------------------------------
# im2col / col2im — the workhorse behind Conv2d and the pooling layers.
# ---------------------------------------------------------------------------

def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold an NCHW batch into a column matrix.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kernel * kernel)``.

    Built on :func:`numpy.lib.stride_tricks.sliding_window_view`: the unfold
    itself is a zero-copy view (no per-offset Python loop), and the only copy
    is the final reshape into column layout.  The input dtype is preserved, so
    float32 megabatches stay float32 end to end.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    # (n, c, H', W', k, k) view over every kernel placement, strided down to
    # the convolution's output grid — still a view, no data copied yet
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kernel * kernel)
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a column matrix back into an NCHW gradient (adjoint of :func:`im2col`)."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``."""
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    # norm of per-array norms == global norm, computed in two vectorised calls
    # instead of a Python generator of per-array floats
    total = float(np.linalg.norm([np.linalg.norm(g.ravel()) for g in grads]))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total
