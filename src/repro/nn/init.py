"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def kaiming_normal(shape, fan_in: int, rng: SeedLike = None) -> np.ndarray:
    """He-normal initialisation suited to ReLU networks."""
    rng = new_rng(rng)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """Glorot-uniform initialisation suited to tanh/linear/attention layers."""
    rng = new_rng(rng)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
