"""Dense and utility layers."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import SeedLike, new_rng


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``.

    Accepts input of shape ``(N, in_features)`` or ``(N, T, in_features)``;
    the trailing dimension is transformed and the leading ones are preserved.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = new_rng(rng)
        self.weight = Parameter(
            init.kaiming_normal((out_features, in_features), fan_in=in_features, rng=rng),
            name="weight",
        )
        self.use_bias = bool(bias)
        if self.use_bias:
            self.bias = Parameter(init.zeros((out_features,)), name="bias")

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        x2 = x.reshape(-1, self.in_features)
        self._x2 = x2
        out = x2 @ self.weight.data.T
        if self.use_bias:
            out = out + self.bias.data
        return out.reshape(*self._input_shape[:-1], self.out_features)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad2 = grad_output.reshape(-1, self.out_features)
        self.weight.accumulate_grad(grad2.T @ self._x2)
        if self.use_bias:
            self.bias.accumulate_grad(grad2.sum(axis=0))
        grad_input = grad2 @ self.weight.data
        return grad_input.reshape(self._input_shape)


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)


class Dropout(Module):
    """Inverted dropout (identity in eval mode)."""

    def __init__(self, p: float = 0.5, rng: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = new_rng(rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
