"""Loss functions with explicit gradients."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import as_float, log_softmax, one_hot, softmax


class CrossEntropyLoss:
    """Softmax cross-entropy over integer labels, with optional label smoothing.

    ``forward`` returns the mean loss; ``backward`` returns the gradient of the
    mean loss with respect to the logits.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels, dtype=np.int64)
        num_classes = logits.shape[1]
        # targets follow the logits dtype so the returned gradient feeds the
        # float32 tier's backward pass without an implicit float64 upcast
        target_dtype = np.float32 if logits.dtype == np.float32 else np.float64
        targets = one_hot(labels, num_classes, dtype=target_dtype)
        if self.label_smoothing > 0:
            targets = (
                targets * (1.0 - self.label_smoothing) + self.label_smoothing / num_classes
            )
        self._targets = targets
        self._probs = softmax(logits, axis=1)
        log_probs = log_softmax(logits, axis=1)
        return float(-np.sum(targets * log_probs) / logits.shape[0])

    def backward(self) -> np.ndarray:
        n = self._probs.shape[0]
        return (self._probs - self._targets) / n

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error between predictions and targets."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        # dtype-preserving coercion: a float32-tier caller gets float32
        # gradients back instead of a silent float64 upcast
        predictions = as_float(predictions)
        targets = as_float(targets)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        return 2.0 * self._diff / self._diff.size

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)
