"""Module base class and Sequential container."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.parameter import Parameter, as_param_dtype


class Module:
    """Base class for layers and models.

    Subclasses implement :meth:`forward` and :meth:`backward`.  ``forward``
    may cache intermediate values on ``self`` for use in ``backward``;
    ``backward`` receives the gradient of the loss with respect to the module
    output and must return the gradient with respect to the module input,
    accumulating parameter gradients along the way.
    """

    def __init__(self) -> None:
        self.training: bool = True
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}

    # -- registration -----------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
            if not value.name:
                value.name = name
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal --------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its submodules (depth-first)."""
        params = list(self._parameters.values())
        for child in self._modules.values():
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- modes ------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def freeze(self) -> "Module":
        """Mark every parameter as non-trainable (e.g. a frozen source model)."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- state ------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Parameter values plus any registered buffers, keyed by dotted path."""
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own_params) | set(own_buffers)) - set(state)
        if missing:
            raise KeyError(f"state dict is missing keys: {sorted(missing)}")
        for name, param in own_params.items():
            param.copy_(state[name])
        for name, _ in own_buffers.items():
            self._set_buffer_by_path(name, as_param_dtype(state[name]))

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Non-trainable state (e.g. BatchNorm running statistics)."""
        for name, buf in getattr(self, "_buffers", {}).items():
            yield (f"{prefix}{name}", buf)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        if "_buffers" not in self.__dict__:
            object.__setattr__(self, "_buffers", {})
        self._buffers[name] = as_param_dtype(value)

    def get_buffer(self, name: str) -> np.ndarray:
        return self._buffers[name]

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        self._buffers[name] = as_param_dtype(value)

    def _set_buffer_by_path(self, path: str, value: np.ndarray) -> None:
        parts = path.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._modules[part]
        module.set_buffer(parts[-1], value)

    def astype(self, dtype) -> "Module":
        """Cast every parameter and buffer to ``dtype`` (``float32``/``float64``).

        This is how a model enters the low-precision training tier: build (and
        initialise) in ``float64`` so RNG streams are unchanged, then cast.
        Optimisers allocate their scratch with ``zeros_like``/``empty_like``,
        so construct them *after* the cast.
        """
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"unsupported parameter dtype {dtype}")
        for module in self.modules():
            for param in module._parameters.values():
                param.data = param.data.astype(dtype, copy=False)
                if param.grad is not None:
                    param.grad = param.grad.astype(dtype, copy=False)
            for name, buf in getattr(module, "_buffers", {}).items():
                module._buffers[name] = buf.astype(dtype, copy=False)
        return self

    # -- computation ------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Chain of modules applied in order; backward runs in reverse order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            self.add_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = f"layer{len(self._order)}"
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def layers(self) -> List[Module]:
        return [self._modules[name] for name in self._order]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for name in reversed(self._order):
            grad_output = self._modules[name].backward(grad_output)
        return grad_output

    def forward_until(self, x: np.ndarray, stop_index: int) -> np.ndarray:
        """Run the first ``stop_index`` layers only (used for feature extraction)."""
        for name in self._order[:stop_index]:
            x = self._modules[name](x)
        return x
