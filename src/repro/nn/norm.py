"""Normalisation layers: BatchNorm (1d/2d) and LayerNorm."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class _BatchNormBase(Module):
    """Shared implementation for BatchNorm1d / BatchNorm2d.

    Subclasses define how to collapse the input into a (rows, features)
    matrix and how to expand it back.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(init.ones((num_features,)), name="gamma")
        self.beta = Parameter(init.zeros((num_features,)), name="beta")
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))

    # subclasses implement these two
    def _to_2d(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _from_2d(self, x2: np.ndarray, shape) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        x2 = self._to_2d(x)
        if self.training:
            mean = x2.mean(axis=0)
            var = x2.var(axis=0)
            n = x2.shape[0]
            unbiased = var * n / max(n - 1, 1)
            self.set_buffer(
                "running_mean",
                (1 - self.momentum) * self.get_buffer("running_mean") + self.momentum * mean,
            )
            self.set_buffer(
                "running_var",
                (1 - self.momentum) * self.get_buffer("running_var") + self.momentum * unbiased,
            )
        else:
            mean = self.get_buffer("running_mean")
            var = self.get_buffer("running_var")
        self._std_inv = 1.0 / np.sqrt(var + self.eps)
        self._x_hat = (x2 - mean) * self._std_inv
        out2 = self.gamma.data * self._x_hat + self.beta.data
        return self._from_2d(out2, x.shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        g2 = self._to_2d(grad_output)
        n = g2.shape[0]
        self.gamma.accumulate_grad(np.sum(g2 * self._x_hat, axis=0))
        self.beta.accumulate_grad(np.sum(g2, axis=0))
        if self.training:
            dx_hat = g2 * self.gamma.data
            grad2 = (
                self._std_inv
                / n
                * (
                    n * dx_hat
                    - np.sum(dx_hat, axis=0)
                    - self._x_hat * np.sum(dx_hat * self._x_hat, axis=0)
                )
            )
        else:
            grad2 = g2 * self.gamma.data * self._std_inv
        return self._from_2d(grad2, self._shape)


class BatchNorm1d(_BatchNormBase):
    """Batch normalisation over (N, F) inputs."""

    def _to_2d(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, F) input, got shape {x.shape}")
        return x

    def _from_2d(self, x2: np.ndarray, shape) -> np.ndarray:
        return x2


class BatchNorm2d(_BatchNormBase):
    """Batch normalisation over (N, C, H, W) inputs, normalising per channel."""

    def _to_2d(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W) input, got shape {x.shape}")
        n, c, h, w = x.shape
        return x.transpose(0, 2, 3, 1).reshape(n * h * w, c)

    def _from_2d(self, x2: np.ndarray, shape) -> np.ndarray:
        n, c, h, w = shape
        return x2.reshape(n, h, w, c).transpose(0, 3, 1, 2)


class LayerNorm(Module):
    """Layer normalisation over the trailing feature dimension."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.gamma = Parameter(init.ones((num_features,)), name="gamma")
        self.beta = Parameter(init.zeros((num_features,)), name="beta")

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        self._std_inv = 1.0 / np.sqrt(var + self.eps)
        self._x_hat = (x - mean) * self._std_inv
        return self.gamma.data * self._x_hat + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        axes = tuple(range(grad_output.ndim - 1))
        self.gamma.accumulate_grad(np.sum(grad_output * self._x_hat, axis=axes))
        self.beta.accumulate_grad(np.sum(grad_output, axis=axes))
        d = self.num_features
        dx_hat = grad_output * self.gamma.data
        grad = (
            self._std_inv
            / d
            * (
                d * dx_hat
                - np.sum(dx_hat, axis=-1, keepdims=True)
                - self._x_hat * np.sum(dx_hat * self._x_hat, axis=-1, keepdims=True)
            )
        )
        return grad
