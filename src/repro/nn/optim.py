"""First-order optimisers and learning-rate schedules."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.parameter import Parameter


class Optimizer:
    """Base optimiser operating on a fixed list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = [p for p in parameters]
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity += grad
            update = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam with optional decoupled weight decay (AdamW when ``weight_decay > 0``)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimiser learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        drops = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**drops)


class CosineLR:
    """Cosine-anneal the learning rate from the base value to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        self.optimizer = optimizer
        self.total_epochs = max(int(total_epochs), 1)
        self.min_lr = float(min_lr)
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch = min(self.epoch + 1, self.total_epochs)
        progress = self.epoch / self.total_epochs
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cosine
