"""First-order optimisers and learning-rate schedules.

The update sweeps are *fused*: every optimiser touches each parameter in one
in-place vectorised pass through a pair of persistent per-parameter scratch
buffers, so a step allocates nothing.  On the cache-bound CNN/MLP training
shapes the optimiser sweep is a measurable slice of the epoch (the compute
ops are sub-BLAS-sized), and the old expression-per-line form allocated and
immediately discarded up to seven temporaries per parameter per step.

The fusion is arranged to keep the update math **bit-identical** to the naive
expressions (same operation order and associativity, scalar folding only
where IEEE-754 guarantees commutativity, e.g. ``a*b == b*a``): trained
weights are byte-for-byte the weights the unfused sweep produced, so
artifact-store keys derived from state fingerprints — and every cached shadow
pool — remain valid.  ``tests/test_optim_fused.py`` pins this against
reference implementations of the original expressions.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.parameter import Parameter


class Optimizer:
    """Base optimiser operating on a fixed list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = [p for p in parameters]
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        #: persistent per-parameter scratch backing the fused sweeps; each
        #: slot is allocated on first touch, so update paths that only need
        #: one buffer (plain SGD) or skip a parameter (frozen, no grad)
        #: never pay for the second model-size array
        self._scratch: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._scratch2: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def _buffer(self, slots: List[Optional[np.ndarray]], index: int) -> np.ndarray:
        """The persistent scratch array in ``slots`` for parameter ``index``."""
        buffer = slots[index]
        if buffer is None:
            buffer = slots[index] = np.empty_like(self.parameters[index].data)
        return buffer

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled weight decay.

    Per-parameter update (one fused in-place pass)::

        g = grad + weight_decay * data          # in scratch; g = grad when wd == 0
        velocity = momentum * velocity + g
        update = g + momentum * velocity        # velocity unless nesterov
        data -= lr * update
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for index, (param, velocity) in enumerate(zip(self.parameters, self._velocity)):
            if param.grad is None or not param.requires_grad:
                continue
            scratch = self._buffer(self._scratch, index)
            if self.weight_decay:
                # grad + (weight_decay * data); addition commutes bitwise
                np.multiply(param.data, self.weight_decay, out=scratch)
                scratch += param.grad
                grad: np.ndarray = scratch
            else:
                grad = param.grad
            velocity *= self.momentum
            velocity += grad
            if self.nesterov:
                # grad + (momentum * velocity); scratch may hold grad, so the
                # product lands in the second buffer
                scratch2 = self._buffer(self._scratch2, index)
                np.multiply(velocity, self.momentum, out=scratch2)
                scratch2 += grad
                scratch2 *= self.lr
                param.data -= scratch2
            else:
                np.multiply(velocity, self.lr, out=scratch)
                param.data -= scratch


class Adam(Optimizer):
    """Adam with optional decoupled weight decay (AdamW when ``weight_decay > 0``).

    Per-parameter update (one fused in-place pass)::

        m = beta1 * m + (1 - beta1) * grad
        v = beta2 * v + ((1 - beta2) * grad) * grad
        data -= lr * weight_decay * data                    # when wd > 0
        data -= (lr * (m / bias1)) / (sqrt(v / bias2) + eps)
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for index, (param, m, v) in enumerate(zip(self.parameters, self._m, self._v)):
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            scratch = self._buffer(self._scratch, index)
            scratch2 = self._buffer(self._scratch2, index)
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=scratch)
            m += scratch
            v *= self.beta2
            # ((1 - beta2) * grad) * grad — the naive expression's
            # left-to-right association, kept for bit-identical rounding
            np.multiply(grad, 1.0 - self.beta2, out=scratch)
            scratch *= grad
            v += scratch
            # denominator sqrt(v / bias2) + eps in scratch ...
            np.divide(v, bias2, out=scratch)
            np.sqrt(scratch, out=scratch)
            scratch += self.eps
            # ... numerator lr * (m / bias1) in scratch2 (scalar multiplication
            # commutes bitwise, so folding lr in from the right is exact)
            np.divide(m, bias1, out=scratch2)
            scratch2 *= self.lr
            scratch2 /= scratch
            if self.weight_decay:
                np.multiply(param.data, self.lr * self.weight_decay, out=scratch)
                param.data -= scratch
            param.data -= scratch2


class StepLR:
    """Multiply the optimiser learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        drops = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**drops)


class CosineLR:
    """Cosine-anneal the learning rate from the base value to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        self.optimizer = optimizer
        self.total_epochs = max(int(total_epochs), 1)
        self.min_lr = float(min_lr)
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch = min(self.epoch + 1, self.total_epochs)
        progress = self.epoch / self.total_epochs
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cosine
