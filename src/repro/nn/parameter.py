"""Trainable parameter container."""

from __future__ import annotations

from typing import Optional

import numpy as np


def as_param_dtype(data: np.ndarray) -> np.ndarray:
    """Coerce values to a supported parameter dtype.

    ``float32`` is preserved (the opt-in low-precision training tier —
    see ``RuntimeConfig.precision``); everything else is promoted to
    ``float64``, the reference tier, exactly as before the precision split.
    """
    data = np.asarray(data)
    if data.dtype == np.float32:
        return data
    return np.asarray(data, dtype=np.float64)


class Parameter:
    """A named trainable tensor with an accumulated gradient.

    Attributes
    ----------
    data:
        The parameter values: ``float64`` in the reference tier (numerical-
        gradient friendliness), or ``float32`` when the model was cast to the
        low-precision training tier (``Module.astype``).  The dtype is set at
        construction and every gradient/copy is coerced to it.
    grad:
        The accumulated gradient of the current backward pass, or ``None`` if
        no backward pass has touched this parameter since the last
        ``zero_grad``.
    requires_grad:
        When ``False`` the optimiser skips this parameter (used to freeze a
        source model while training a visual prompt).
    """

    __slots__ = ("data", "grad", "name", "requires_grad")

    def __init__(self, data: np.ndarray, name: str = "", requires_grad: bool = True) -> None:
        self.data = as_param_dtype(data)
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self.requires_grad = requires_grad

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the stored gradient (creating it if absent)."""
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name or '<unnamed>'} shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def copy_(self, values: np.ndarray) -> None:
        """In-place overwrite of the parameter values (shape must match).

        Values are coerced to the parameter's own dtype, so loading a
        ``float64`` state dict into a ``float32``-tier model (and vice versa)
        works without silently changing the model's precision.
        """
        values = np.asarray(values, dtype=self.data.dtype)
        if values.shape != self.data.shape:
            raise ValueError(
                f"cannot copy values of shape {values.shape} into parameter of "
                f"shape {self.data.shape}"
            )
        self.data[...] = values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
