"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling with square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        self._input_shape = x.shape
        self._dtype = x.dtype
        # pool each channel independently by treating channels as batch items
        x_reshaped = x.reshape(n * c, 1, h, w)
        cols, out_h, out_w = im2col(x_reshaped, self.kernel_size, self.stride, padding=0)
        self._cols_shape = cols.shape
        self._argmax = np.argmax(cols, axis=1)
        out = cols[np.arange(cols.shape[0]), self._argmax]
        self._out_hw = (out_h, out_w)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, c, h, w = self._input_shape
        out_h, out_w = self._out_hw
        grad_cols = np.zeros(self._cols_shape, dtype=self._dtype)
        grad_flat = grad_output.reshape(-1)
        grad_cols[np.arange(grad_cols.shape[0]), self._argmax] = grad_flat
        grad_input = col2im(
            grad_cols, (n * c, 1, h, w), self.kernel_size, self.stride, padding=0
        )
        return grad_input.reshape(n, c, h, w)


class AvgPool2d(Module):
    """Average pooling with square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        self._input_shape = x.shape
        self._dtype = x.dtype
        x_reshaped = x.reshape(n * c, 1, h, w)
        cols, out_h, out_w = im2col(x_reshaped, self.kernel_size, self.stride, padding=0)
        self._cols_shape = cols.shape
        self._out_hw = (out_h, out_w)
        out = cols.mean(axis=1, dtype=self._dtype)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, c, h, w = self._input_shape
        window = self.kernel_size * self.kernel_size
        grad_flat = np.asarray(grad_output, dtype=self._dtype).reshape(-1, 1) / window
        grad_cols = np.repeat(grad_flat, window, axis=1)
        grad_input = col2im(
            grad_cols, (n * c, 1, h, w), self.kernel_size, self.stride, padding=0
        )
        return grad_input.reshape(n, c, h, w)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, producing (N, C)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, c, h, w = self._input_shape
        grad = grad_output[:, :, None, None] / (h * w)
        return np.broadcast_to(grad, self._input_shape).copy()
