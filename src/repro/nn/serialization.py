"""Saving and loading model state dictionaries as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.module import Module

PathLike = Union[str, Path]


def save_state_dict(module: Module, path: PathLike) -> Path:
    """Serialize a module's parameters and buffers to a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    # npz keys cannot contain '/' reliably across loaders; dots are fine.
    np.savez_compressed(path, **state)
    return path


def load_npz_state(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a raw state dictionary from disk."""
    with np.load(Path(path)) as archive:
        return {key: archive[key] for key in archive.files}


def load_state_dict(module: Module, path: PathLike) -> Module:
    """Load parameters saved by :func:`save_state_dict` into ``module`` in-place."""
    module.load_state_dict(load_npz_state(path))
    return module
