"""Stacked-model training engine: run K same-architecture models as one computation.

BPROM's offline cost is dominated by training the pool of M clean + backdoored
shadow models.  Each shadow is tiny, so a sequential pool spends most of its
wall-clock on Python dispatch and sub-BLAS-sized GEMMs.  This module lifts K
structurally identical models into *stacked* modules whose parameters carry a
leading model axis ``(K, ...)`` and whose forward/backward operate on
per-model-stacked minibatches ``(K, B, ...)``: element-wise layers fuse K
models into single numpy ops, and matrix products become batched ``np.matmul``
calls whose 2-D cores are the *same* GEMMs the sequential path issues.

Equivalence is the design constraint, not an afterthought: every stacked op is
arranged so that its per-model slice issues the same operations over the same
memory layout (per-slice GEMM cores, model-axis-leading reductions) as the
corresponding sequential layer.  Training K models with :func:`fit_stacked`
therefore reproduces ``ImageClassifier.fit`` run K times with the same
per-model RNG streams — observed bit-identical on the reference platform and
asserted to <= 1e-9 by the tests and the shadow-training benchmark (exact
bitwise equality of batched-BLAS dispatch is not guaranteed across
platforms), which is what lets the shadow-model artifact cache be shared
between stacked and sequential runs.

Layout
------
* ``stack_modules(modules)`` lifts K modules into one stacked module tree.
  Leaf layers are translated through a registry of stacked counterparts
  (:class:`StackedLinear`, :class:`StackedConv2d`, ...); composite modules
  (``Sequential``, residual blocks, whole models) are lifted *structurally* —
  their own forward/backward code is reused unchanged because it only composes
  child calls with broadcast-safe arithmetic.
* ``unstack_modules(stacked, modules)`` writes trained parameters and buffers
  back into the K original modules.
* ``fit_stacked(classifiers, datasets, config, rngs)`` is the model-axis
  counterpart of ``ImageClassifier.fit``.
* ``predict_logits_many`` / ``predict_proba_many`` run one stacked forward for
  a whole pool (shared or per-model inputs) — the serve-side sibling of the
  training engine, used by the meta stage and the MNTD baseline.

Out-of-registry leaf modules raise :class:`UnstackableModelError`; callers
(e.g. ``ShadowModelFactory``) catch it and fall back to the sequential loop.
Model zoos outside :mod:`repro.nn` register their own leaf counterparts with
:func:`register_leaf` (see ``repro.models.blocks`` / ``repro.models.vit``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Type

import numpy as np

from repro.nn.activations import GELU, Identity, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.attention import MultiHeadSelfAttention, PatchEmbedding
from repro.nn.conv import Conv2d, conv_engine_override
from repro.nn.functional import im2col, col2im, log_softmax, softmax
from repro.nn.layers import Dropout, Flatten, Linear
from repro.nn.module import Module
from repro.nn.norm import BatchNorm1d, BatchNorm2d, LayerNorm
from repro.nn.optim import SGD, Adam
from repro.nn.parameter import Parameter
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.utils.rng import SeedLike, new_rng


class UnstackableModelError(TypeError):
    """Raised when a module tree has no stacked counterpart (callers fall back)."""


def _require_uniform(modules: Sequence[Module], attrs: Sequence[str]) -> None:
    first = modules[0]
    for attr in attrs:
        reference = getattr(first, attr)
        for module in modules[1:]:
            if getattr(module, attr) != reference:
                raise UnstackableModelError(
                    f"{type(first).__name__}.{attr} differs across the pool "
                    f"({reference!r} vs {getattr(module, attr)!r})"
                )


# ---------------------------------------------------------------------------
# stacked leaf layers
# ---------------------------------------------------------------------------

class StackedLinear(Module):
    """K :class:`~repro.nn.layers.Linear` layers as one ``(K, out, in)`` weight.

    Input ``(K, B, ..., in)``; each per-model slice issues the same
    ``(rows, in) @ (in, out)`` GEMM as the sequential layer.
    """

    def __init__(
        self,
        pool_size: int,
        in_features: int,
        out_features: int,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.pool_size = int(pool_size)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(weight, name="weight")
        self.use_bias = bias is not None
        if self.use_bias:
            self.bias = Parameter(bias, name="bias")

    @classmethod
    def from_modules(cls, modules: Sequence[Linear]) -> "StackedLinear":
        _require_uniform(modules, ("in_features", "out_features", "use_bias"))
        first = modules[0]
        weight = np.stack([m.weight.data for m in modules])
        bias = np.stack([m.bias.data for m in modules]) if first.use_bias else None
        return cls(len(modules), first.in_features, first.out_features, weight, bias)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        x3 = x.reshape(self.pool_size, -1, self.in_features)
        self._x3 = x3
        out = np.matmul(x3, self.weight.data.transpose(0, 2, 1))
        if self.use_bias:
            out = out + self.bias.data[:, None, :]
        return out.reshape(*self._input_shape[:-1], self.out_features)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad3 = grad_output.reshape(self.pool_size, -1, self.out_features)
        self.weight.accumulate_grad(np.matmul(grad3.transpose(0, 2, 1), self._x3))
        if self.use_bias:
            self.bias.accumulate_grad(grad3.sum(axis=1))
        grad_input = np.matmul(grad3, self.weight.data)
        return grad_input.reshape(self._input_shape)

    def unstack_into(self, modules: Sequence[Linear]) -> None:
        for index, module in enumerate(modules):
            module.weight.copy_(self.weight.data[index])
            if self.use_bias:
                module.bias.copy_(self.bias.data[index])


class StackedConv2d(Module):
    """K :class:`~repro.nn.conv.Conv2d` layers over ``(K, B, C, H, W)`` input.

    The K*B images share one im2col unfold; the per-group projection becomes a
    batched matmul whose per-model 2-D core equals the sequential GEMM.
    """

    def __init__(self, pool_size: int, template: Conv2d, weight, bias) -> None:
        super().__init__()
        self.pool_size = int(pool_size)
        self.in_channels = template.in_channels
        self.out_channels = template.out_channels
        self.kernel_size = template.kernel_size
        self.stride = template.stride
        self.padding = template.padding
        self.groups = template.groups
        self.weight = Parameter(weight, name="weight")
        self.use_bias = bias is not None
        if self.use_bias:
            self.bias = Parameter(bias, name="bias")

    @classmethod
    def from_modules(cls, modules: Sequence[Conv2d]) -> "StackedConv2d":
        _require_uniform(
            modules,
            ("in_channels", "out_channels", "kernel_size", "stride", "padding", "groups", "use_bias"),
        )
        first = modules[0]
        weight = np.stack([m.weight.data for m in modules])
        bias = np.stack([m.bias.data for m in modules]) if first.use_bias else None
        return cls(len(modules), first, weight, bias)

    def _unfold_group(self, x_flat: np.ndarray, group: int):
        cin_g = self.in_channels // self.groups
        xg = x_flat if self.groups == 1 else x_flat[:, group * cin_g : (group + 1) * cin_g]
        return im2col(xg, self.kernel_size, self.stride, self.padding)

    def _select_pointwise(self, x: np.ndarray) -> bool:
        # precision-gated exactly like Conv2d's pointwise engine, and with the
        # same per-model core shapes, so the stacked layer and its sequential
        # twin always round identically for the same input dtype
        return (
            self.kernel_size == 1
            and self.padding == 0
            and self.groups == 1
            and (x.dtype == np.float32 or conv_engine_override() == "implicit")
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        pool, batch = x.shape[0], x.shape[1]
        self._input_shape = x.shape
        self._dtype = x.dtype
        self._pointwise = self._select_pointwise(x)
        if self._pointwise:
            return self._forward_pointwise(x)
        x_flat = x.reshape(pool * batch, *x.shape[2:])
        cout_g = self.out_channels // self.groups
        cols_cache = [] if self.training else None
        outputs = []
        for group in range(self.groups):
            cols, out_h, out_w = self._unfold_group(x_flat, group)
            cols3 = cols.reshape(pool, batch * out_h * out_w, -1)
            if cols_cache is not None:
                cols_cache.append(cols3)
            wg = self.weight.data[:, group * cout_g : (group + 1) * cout_g]
            w_mat = wg.reshape(self.pool_size, cout_g, -1)
            outputs.append(np.matmul(cols3, w_mat.transpose(0, 2, 1)))
        self._out_hw = (out_h, out_w)
        self._cols = cols_cache
        self._eval_input = None if self.training else x_flat
        merged = outputs[0] if self.groups == 1 else np.concatenate(outputs, axis=2)
        merged = merged.reshape(pool, batch, out_h, out_w, self.out_channels)
        merged = merged.transpose(0, 1, 4, 2, 3)
        if self.use_bias:
            merged = merged + self.bias.data[:, None, :, None, None]
        return merged

    def _forward_pointwise(self, x: np.ndarray) -> np.ndarray:
        # per-model 1x1 convs are channel-mixing matmuls; a single batched
        # matmul over the model axis has the same per-model 2-D GEMM core
        # shape as the sequential pointwise path, so the twins round alike
        pool, batch = x.shape[0], x.shape[1]
        xs = x if self.stride == 1 else x[:, :, :, :: self.stride, :: self.stride]
        out_h, out_w = xs.shape[3], xs.shape[4]
        x4 = xs.reshape(pool, batch, self.in_channels, out_h * out_w)
        self._pw_x4 = x4
        self._out_hw = (out_h, out_w)
        w3 = self.weight.data.reshape(pool, self.out_channels, self.in_channels)
        merged = np.matmul(w3[:, None], x4).reshape(
            pool, batch, self.out_channels, out_h, out_w
        )
        if self.use_bias:
            merged = merged + self.bias.data[:, None, :, None, None]
        return merged

    def _backward_pointwise(self, grad_output: np.ndarray) -> np.ndarray:
        pool, batch = self._input_shape[:2]
        out_h, out_w = self._out_hw
        hw = out_h * out_w
        if self.use_bias:
            self.bias.accumulate_grad(grad_output.sum(axis=(1, 3, 4)))
        x4 = self._pw_x4
        g4 = grad_output.reshape(pool, batch, self.out_channels, hw)
        # grad-weight core per model: (C_out, B*L) @ (B*L, C_in), matching the
        # sequential pointwise GEMM row order (image-major then output-pixel)
        g_rows = g4.transpose(0, 2, 1, 3).reshape(pool, self.out_channels, batch * hw)
        x_rows = x4.transpose(0, 1, 3, 2).reshape(pool, batch * hw, self.in_channels)
        self.weight.accumulate_grad(
            np.matmul(g_rows, x_rows).reshape(self.weight.data.shape)
        )
        w3 = self.weight.data.reshape(pool, self.out_channels, self.in_channels)
        grad4 = np.matmul(w3.transpose(0, 2, 1)[:, None], g4)
        if self.stride == 1:
            grad_input = grad4.reshape(self._input_shape)
        else:
            grad_input = np.zeros(self._input_shape, dtype=grad4.dtype)
            grad_input[:, :, :, :: self.stride, :: self.stride] = grad4.reshape(
                pool, batch, self.in_channels, out_h, out_w
            )
        return np.asarray(grad_input, dtype=self._dtype)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if getattr(self, "_pointwise", False):
            return self._backward_pointwise(grad_output)
        pool, batch = self._input_shape[:2]
        out_h, out_w = self._out_hw
        cin_g = self.in_channels // self.groups
        cout_g = self.out_channels // self.groups
        if self.use_bias:
            self.bias.accumulate_grad(grad_output.sum(axis=(1, 3, 4)))
        grad_flat = grad_output.transpose(0, 1, 3, 4, 2).reshape(
            pool, batch * out_h * out_w, self.out_channels
        )
        cols_cache = self._cols
        if cols_cache is None:
            if self._eval_input is None:
                raise RuntimeError("StackedConv2d.backward called before forward")
            cols_cache = [
                self._unfold_group(self._eval_input, group)[0].reshape(
                    pool, batch * out_h * out_w, -1
                )
                for group in range(self.groups)
            ]
        grad_weight = np.empty_like(self.weight.data)
        flat_group_shape = (pool * batch, cin_g, self._input_shape[3], self._input_shape[4])
        grad_input = np.empty(
            (pool * batch, self.in_channels, self._input_shape[3], self._input_shape[4]),
            dtype=self._dtype,
        )
        for group in range(self.groups):
            gout = grad_flat[:, :, group * cout_g : (group + 1) * cout_g]
            cols3 = cols_cache[group]
            wg = self.weight.data[:, group * cout_g : (group + 1) * cout_g]
            w_mat = wg.reshape(self.pool_size, cout_g, -1)
            grad_weight[:, group * cout_g : (group + 1) * cout_g] = np.matmul(
                gout.transpose(0, 2, 1), cols3
            ).reshape(self.pool_size, cout_g, cin_g, self.kernel_size, self.kernel_size)
            grad_cols = np.matmul(gout, w_mat)
            grad_input[:, group * cin_g : (group + 1) * cin_g] = col2im(
                grad_cols.reshape(pool * batch * out_h * out_w, -1),
                flat_group_shape,
                self.kernel_size,
                self.stride,
                self.padding,
            )
        self.weight.accumulate_grad(grad_weight)
        return grad_input.reshape(self._input_shape)

    def unstack_into(self, modules: Sequence[Conv2d]) -> None:
        for index, module in enumerate(modules):
            module.weight.copy_(self.weight.data[index])
            if self.use_bias:
                module.bias.copy_(self.bias.data[index])


class _StackedBatchNormBase(Module):
    """Shared machinery for stacked BatchNorm1d/2d: per-model ``(K, C)`` state."""

    def __init__(self, pool_size: int, template, gamma, beta, running_mean, running_var) -> None:
        super().__init__()
        self.pool_size = int(pool_size)
        self.num_features = template.num_features
        self.momentum = template.momentum
        self.eps = template.eps
        self.gamma = Parameter(gamma, name="gamma")
        self.beta = Parameter(beta, name="beta")
        self.register_buffer("running_mean", running_mean)
        self.register_buffer("running_var", running_var)

    @classmethod
    def from_modules(cls, modules) -> "_StackedBatchNormBase":
        _require_uniform(modules, ("num_features", "momentum", "eps"))
        return cls(
            len(modules),
            modules[0],
            np.stack([m.gamma.data for m in modules]),
            np.stack([m.beta.data for m in modules]),
            np.stack([m.get_buffer("running_mean") for m in modules]),
            np.stack([m.get_buffer("running_var") for m in modules]),
        )

    def _to_3d(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _from_3d(self, x3: np.ndarray, shape) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        x3 = self._to_3d(x)
        if self.training:
            mean = x3.mean(axis=1)
            var = x3.var(axis=1)
            n = x3.shape[1]
            unbiased = var * n / max(n - 1, 1)
            self.set_buffer(
                "running_mean",
                (1 - self.momentum) * self.get_buffer("running_mean") + self.momentum * mean,
            )
            self.set_buffer(
                "running_var",
                (1 - self.momentum) * self.get_buffer("running_var") + self.momentum * unbiased,
            )
        else:
            mean = self.get_buffer("running_mean")
            var = self.get_buffer("running_var")
        self._std_inv = 1.0 / np.sqrt(var + self.eps)
        self._x_hat = (x3 - mean[:, None, :]) * self._std_inv[:, None, :]
        out3 = self.gamma.data[:, None, :] * self._x_hat + self.beta.data[:, None, :]
        return self._from_3d(out3, x.shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        g3 = self._to_3d(grad_output)
        n = g3.shape[1]
        self.gamma.accumulate_grad(np.sum(g3 * self._x_hat, axis=1))
        self.beta.accumulate_grad(np.sum(g3, axis=1))
        if self.training:
            dx_hat = g3 * self.gamma.data[:, None, :]
            grad3 = (
                self._std_inv[:, None, :]
                / n
                * (
                    n * dx_hat
                    - np.sum(dx_hat, axis=1, keepdims=True)
                    - self._x_hat * np.sum(dx_hat * self._x_hat, axis=1, keepdims=True)
                )
            )
        else:
            grad3 = g3 * self.gamma.data[:, None, :] * self._std_inv[:, None, :]
        return self._from_3d(grad3, self._shape)

    def unstack_into(self, modules) -> None:
        for index, module in enumerate(modules):
            module.gamma.copy_(self.gamma.data[index])
            module.beta.copy_(self.beta.data[index])
            module.set_buffer("running_mean", self.get_buffer("running_mean")[index].copy())
            module.set_buffer("running_var", self.get_buffer("running_var")[index].copy())


class StackedBatchNorm1d(_StackedBatchNormBase):
    """K BatchNorm1d layers over ``(K, B, C)`` input."""

    def _to_3d(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(f"StackedBatchNorm1d expects (K, B, C) input, got shape {x.shape}")
        return x

    def _from_3d(self, x3: np.ndarray, shape) -> np.ndarray:
        return x3


class StackedBatchNorm2d(_StackedBatchNormBase):
    """K BatchNorm2d layers over ``(K, B, C, H, W)`` input."""

    def _to_3d(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 5:
            raise ValueError(
                f"StackedBatchNorm2d expects (K, B, C, H, W) input, got shape {x.shape}"
            )
        k, b, c, h, w = x.shape
        return x.transpose(0, 1, 3, 4, 2).reshape(k, b * h * w, c)

    def _from_3d(self, x3: np.ndarray, shape) -> np.ndarray:
        k, b, c, h, w = shape
        return x3.reshape(k, b, h, w, c).transpose(0, 1, 4, 2, 3)


class StackedLayerNorm(Module):
    """K LayerNorm layers; normalisation stays on the trailing feature axis."""

    def __init__(self, pool_size: int, num_features: int, eps: float, gamma, beta) -> None:
        super().__init__()
        self.pool_size = int(pool_size)
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.gamma = Parameter(gamma, name="gamma")
        self.beta = Parameter(beta, name="beta")

    @classmethod
    def from_modules(cls, modules: Sequence[LayerNorm]) -> "StackedLayerNorm":
        _require_uniform(modules, ("num_features", "eps"))
        first = modules[0]
        return cls(
            len(modules),
            first.num_features,
            first.eps,
            np.stack([m.gamma.data for m in modules]),
            np.stack([m.beta.data for m in modules]),
        )

    def _broadcast(self, data: np.ndarray, ndim: int) -> np.ndarray:
        return data.reshape(self.pool_size, *([1] * (ndim - 2)), self.num_features)

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        self._std_inv = 1.0 / np.sqrt(var + self.eps)
        self._x_hat = (x - mean) * self._std_inv
        return self._broadcast(self.gamma.data, x.ndim) * self._x_hat + self._broadcast(
            self.beta.data, x.ndim
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        axes = tuple(range(1, grad_output.ndim - 1))
        self.gamma.accumulate_grad(np.sum(grad_output * self._x_hat, axis=axes))
        self.beta.accumulate_grad(np.sum(grad_output, axis=axes))
        d = self.num_features
        dx_hat = grad_output * self._broadcast(self.gamma.data, grad_output.ndim)
        grad = (
            self._std_inv
            / d
            * (
                d * dx_hat
                - np.sum(dx_hat, axis=-1, keepdims=True)
                - self._x_hat * np.sum(dx_hat * self._x_hat, axis=-1, keepdims=True)
            )
        )
        return grad

    def unstack_into(self, modules: Sequence[LayerNorm]) -> None:
        for index, module in enumerate(modules):
            module.gamma.copy_(self.gamma.data[index])
            module.beta.copy_(self.beta.data[index])


class StackedFlatten(Module):
    """Flatten all non-(model, batch) dimensions."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)

    def unstack_into(self, modules) -> None:
        pass


class StackedGlobalAvgPool2d(Module):
    """Average over spatial positions: ``(K, B, C, H, W) -> (K, B, C)``."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.mean(axis=(3, 4))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        k, b, c, h, w = self._input_shape
        grad = grad_output[:, :, :, None, None] / (h * w)
        return np.broadcast_to(grad, self._input_shape).copy()

    def unstack_into(self, modules) -> None:
        pass


class _StackedSpatialPool(Module):
    """Max/Avg pooling lifted by folding the model axis into the batch axis.

    Pooling has no per-model parameters, so the inner sequential layer runs on
    the ``(K*B, C, H, W)`` fold and produces per-image results identical to
    the sequential path.
    """

    def __init__(self, inner: Module) -> None:
        super().__init__()
        self.inner = inner

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._lead = x.shape[:2]
        out = self.inner.forward(x.reshape(-1, *x.shape[2:]))
        return out.reshape(*self._lead, *out.shape[1:])

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.inner.backward(grad_output.reshape(-1, *grad_output.shape[2:]))
        return grad.reshape(*self._lead, *grad.shape[1:])

    def unstack_into(self, modules) -> None:
        pass


class StackedTokenMean(Module):
    """Average token embeddings: ``(K, B, T, D) -> (K, B, D)``."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._num_tokens = x.shape[2]
        return x.mean(axis=2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        k, b, d = grad_output.shape
        grad = grad_output[:, :, None, :] / self._num_tokens
        return np.broadcast_to(grad, (k, b, self._num_tokens, d)).copy()

    def unstack_into(self, modules) -> None:
        pass


class StackedAdditiveEmbedding(Module):
    """K learned additive embeddings (e.g. positional embeddings).

    The per-model parameter keeps its original shape behind the leading model
    axis, so ``x + embedding`` broadcasts over the batch axis exactly like the
    sequential layer.
    """

    def __init__(self, stacked_data: np.ndarray, param_name: str) -> None:
        super().__init__()
        self._param_name = param_name
        self.embedding = Parameter(stacked_data, name=param_name)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x + self.embedding.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self.embedding.accumulate_grad(grad_output.sum(axis=1, keepdims=True))
        return grad_output

    def unstack_into(self, modules) -> None:
        for index, module in enumerate(modules):
            getattr(module, self._param_name).copy_(self.embedding.data[index])


class StackedPatchEmbedding(Module):
    """K patch embeddings: patchify with a leading model axis + stacked projection."""

    def __init__(self, pool_size: int, template: PatchEmbedding, proj: StackedLinear) -> None:
        super().__init__()
        self.pool_size = int(pool_size)
        self.image_size = template.image_size
        self.patch_size = template.patch_size
        self.in_channels = template.in_channels
        self.embed_dim = template.embed_dim
        self.grid = template.grid
        self.num_patches = template.num_patches
        self.patch_dim = template.patch_dim
        self.proj = proj

    @classmethod
    def from_modules(cls, modules: Sequence[PatchEmbedding]) -> "StackedPatchEmbedding":
        _require_uniform(modules, ("image_size", "patch_size", "in_channels", "embed_dim"))
        proj = StackedLinear.from_modules([m.proj for m in modules])
        return cls(len(modules), modules[0], proj)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[3] != self.image_size or x.shape[4] != self.image_size:
            raise ValueError(
                f"expected {self.image_size}x{self.image_size} input, got "
                f"{x.shape[3]}x{x.shape[4]}"
            )
        k, b = x.shape[:2]
        self._lead = (k, b)
        p, g, c = self.patch_size, self.grid, self.in_channels
        tokens = x.reshape(k, b, c, g, p, g, p)
        tokens = tokens.transpose(0, 1, 3, 5, 2, 4, 6).reshape(k, b, g * g, c * p * p)
        return self.proj(tokens)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_tokens = self.proj.backward(grad_output)
        k, b = self._lead
        p, g, c = self.patch_size, self.grid, self.in_channels
        grad = grad_tokens.reshape(k, b, g, g, c, p, p).transpose(0, 1, 4, 2, 5, 3, 6)
        return grad.reshape(k, b, c, g * p, g * p)

    def unstack_into(self, modules: Sequence[PatchEmbedding]) -> None:
        self.proj.unstack_into([m.proj for m in modules])


class StackedMultiHeadSelfAttention(Module):
    """K self-attention layers over ``(K, B, T, D)`` tokens."""

    def __init__(
        self,
        pool_size: int,
        template: MultiHeadSelfAttention,
        q_proj: StackedLinear,
        k_proj: StackedLinear,
        v_proj: StackedLinear,
        out_proj: StackedLinear,
    ) -> None:
        super().__init__()
        self.pool_size = int(pool_size)
        self.embed_dim = template.embed_dim
        self.num_heads = template.num_heads
        self.head_dim = template.head_dim
        self.q_proj = q_proj
        self.k_proj = k_proj
        self.v_proj = v_proj
        self.out_proj = out_proj

    @classmethod
    def from_modules(
        cls, modules: Sequence[MultiHeadSelfAttention]
    ) -> "StackedMultiHeadSelfAttention":
        _require_uniform(modules, ("embed_dim", "num_heads"))
        return cls(
            len(modules),
            modules[0],
            StackedLinear.from_modules([m.q_proj for m in modules]),
            StackedLinear.from_modules([m.k_proj for m in modules]),
            StackedLinear.from_modules([m.v_proj for m in modules]),
            StackedLinear.from_modules([m.out_proj for m in modules]),
        )

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        k, b, t, _ = x.shape
        return x.reshape(k, b, t, self.num_heads, self.head_dim).transpose(0, 1, 3, 2, 4)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        k, b, h, t, d = x.shape
        return x.transpose(0, 1, 3, 2, 4).reshape(k, b, t, h * d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        q = self._split_heads(self.q_proj(x))
        key = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = np.matmul(q, key.transpose(0, 1, 2, 4, 3)) * scale
        attn = softmax(scores, axis=-1)
        context = np.matmul(attn, v)
        self._q, self._k, self._v, self._attn, self._scale = q, key, v, attn, scale
        return self.out_proj(self._merge_heads(context))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_merged = self.out_proj.backward(grad_output)
        grad_context = self._split_heads(grad_merged)
        grad_attn = np.matmul(grad_context, self._v.transpose(0, 1, 2, 4, 3))
        grad_v = np.matmul(self._attn.transpose(0, 1, 2, 4, 3), grad_context)
        sum_term = np.sum(grad_attn * self._attn, axis=-1, keepdims=True)
        grad_scores = self._attn * (grad_attn - sum_term)
        grad_q = np.matmul(grad_scores, self._k) * self._scale
        grad_k = np.matmul(grad_scores.transpose(0, 1, 2, 4, 3), self._q) * self._scale
        grad_x = self.q_proj.backward(self._merge_heads(grad_q))
        grad_x = grad_x + self.k_proj.backward(self._merge_heads(grad_k))
        grad_x = grad_x + self.v_proj.backward(self._merge_heads(grad_v))
        return grad_x

    def unstack_into(self, modules: Sequence[MultiHeadSelfAttention]) -> None:
        self.q_proj.unstack_into([m.q_proj for m in modules])
        self.k_proj.unstack_into([m.k_proj for m in modules])
        self.v_proj.unstack_into([m.v_proj for m in modules])
        self.out_proj.unstack_into([m.out_proj for m in modules])


# ---------------------------------------------------------------------------
# lifting / unstacking
# ---------------------------------------------------------------------------

_LEAF_LIFTERS: Dict[Type[Module], Callable[[Sequence[Module]], Module]] = {}


def register_leaf(cls: Type[Module], lifter: Callable[[Sequence[Module]], Module]) -> None:
    """Register a stacked counterpart for a leaf module class.

    Model zoos outside :mod:`repro.nn` call this for their private leaf layers
    so the generic :func:`stack_modules` walk can lift whole architectures.
    """
    _LEAF_LIFTERS[cls] = lifter


def _lift_dropout(modules: Sequence[Dropout]) -> Module:
    # an active dropout draws per-model RNG streams the stacked path does not
    # model; p == 0 is a deterministic identity and lifts trivially
    if any(m.p != 0.0 for m in modules):
        raise UnstackableModelError("Dropout with p > 0 has no stacked counterpart")
    return Identity()


register_leaf(Linear, StackedLinear.from_modules)
register_leaf(Conv2d, StackedConv2d.from_modules)
register_leaf(BatchNorm1d, StackedBatchNorm1d.from_modules)
register_leaf(BatchNorm2d, StackedBatchNorm2d.from_modules)
register_leaf(LayerNorm, StackedLayerNorm.from_modules)
register_leaf(Flatten, lambda mods: StackedFlatten())
register_leaf(GlobalAvgPool2d, lambda mods: StackedGlobalAvgPool2d())
register_leaf(MaxPool2d, lambda mods: _stacked_pool(mods, MaxPool2d))
register_leaf(AvgPool2d, lambda mods: _stacked_pool(mods, AvgPool2d))
register_leaf(PatchEmbedding, StackedPatchEmbedding.from_modules)
register_leaf(MultiHeadSelfAttention, StackedMultiHeadSelfAttention.from_modules)
register_leaf(Dropout, _lift_dropout)
# element-wise activations are shape-agnostic: a fresh sequential instance
# applied to the (K, B, ...) stack performs identical per-element operations
register_leaf(ReLU, lambda mods: ReLU())
register_leaf(LeakyReLU, lambda mods: _uniform_leaky(mods))
register_leaf(GELU, lambda mods: GELU())
register_leaf(Sigmoid, lambda mods: Sigmoid())
register_leaf(Tanh, lambda mods: Tanh())
register_leaf(Identity, lambda mods: Identity())


def _uniform_leaky(modules: Sequence[LeakyReLU]) -> LeakyReLU:
    _require_uniform(modules, ("negative_slope",))
    return LeakyReLU(modules[0].negative_slope)


def _stacked_pool(modules, cls) -> _StackedSpatialPool:
    _require_uniform(modules, ("kernel_size", "stride"))
    return _StackedSpatialPool(cls(modules[0].kernel_size, modules[0].stride))


_STRUCTURAL_SKIP = ("_parameters", "_modules", "_buffers")


def stack_modules(modules: Sequence[Module]) -> Module:
    """Lift K structurally identical modules into one stacked module tree.

    Leaves are translated through the registry; composites are lifted by
    rebuilding the object around stacked children, reusing the composite's own
    forward/backward code (which is broadcast-safe by construction).  Raises
    :class:`UnstackableModelError` for unsupported structures.
    """
    modules = list(modules)
    if not modules:
        raise ValueError("cannot stack an empty list of modules")
    first = modules[0]
    cls = type(first)
    for module in modules[1:]:
        if type(module) is not cls:
            raise UnstackableModelError(
                f"mixed module classes in the pool: {cls.__name__} vs {type(module).__name__}"
            )
    lifter = _LEAF_LIFTERS.get(cls)
    if lifter is not None:
        return lifter(modules)
    if first._parameters or getattr(first, "_buffers", None):
        raise UnstackableModelError(
            f"no stacked counterpart registered for {cls.__name__} "
            "(it holds parameters or buffers directly)"
        )
    if not first._modules:
        raise UnstackableModelError(f"no stacked counterpart registered for leaf {cls.__name__}")
    child_names = list(first._modules)
    for module in modules[1:]:
        if list(module._modules) != child_names:
            raise UnstackableModelError(
                f"{cls.__name__} children disagree across the pool"
            )
    shell = object.__new__(cls)
    state = {
        key: value for key, value in first.__dict__.items() if key not in _STRUCTURAL_SKIP
    }
    shell.__dict__.update(state)
    shell.__dict__["_parameters"] = {}
    shell.__dict__["_modules"] = {}
    for name in child_names:
        shell.add_module(name, stack_modules([m._modules[name] for m in modules]))
    return shell


def unstack_modules(stacked: Module, modules: Sequence[Module]) -> None:
    """Write a stacked tree's parameters/buffers back into the K originals."""
    unstack = getattr(stacked, "unstack_into", None)
    if unstack is not None:
        unstack(modules)
        return
    for name, child in stacked._modules.items():
        unstack_modules(child, [m._modules[name] for m in modules])


# ---------------------------------------------------------------------------
# stacked loss / optimisers
# ---------------------------------------------------------------------------

class StackedCrossEntropyLoss:
    """Per-model softmax cross-entropy over ``(K, B, C)`` logits.

    ``forward`` returns the K per-model mean losses; ``backward`` returns the
    gradient of each model's mean loss, so one stacked backward pass is K
    independent sequential backward passes.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        labels = np.asarray(labels, dtype=np.int64)
        pool, batch, num_classes = logits.shape
        if labels.shape != (pool, batch):
            raise ValueError(
                f"labels shape {labels.shape} does not match logits {logits.shape}"
            )
        if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
            raise ValueError(
                f"labels out of range [0, {num_classes}): [{labels.min()}, {labels.max()}]"
            )
        # follow the logits dtype (float32 tier) so backward's gradient does
        # not upcast the stacked backward pass to float64
        target_dtype = np.float32 if logits.dtype == np.float32 else np.float64
        targets = np.zeros((pool, batch, num_classes), dtype=target_dtype)
        targets[np.arange(pool)[:, None], np.arange(batch)[None, :], labels] = 1.0
        if self.label_smoothing > 0:
            targets = (
                targets * (1.0 - self.label_smoothing) + self.label_smoothing / num_classes
            )
        self._targets = targets
        self._probs = softmax(logits, axis=-1)
        log_probs = log_softmax(logits, axis=-1)
        return -np.sum(targets * log_probs, axis=(1, 2)) / batch

    def backward(self) -> np.ndarray:
        batch = self._probs.shape[1]
        return (self._probs - self._targets) / batch

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return self.forward(logits, labels)


class StackedAdam(Adam):
    """Adam over stacked ``(K, ...)`` parameters.

    Adam's update is element-wise, so the sequential implementation applied to
    stacked tensors performs per-model updates bit-identical to K independent
    optimisers; this subclass exists to make the stacked training engine's
    surface explicit.
    """


class StackedSGD(SGD):
    """SGD (momentum + decoupled weight decay) over stacked ``(K, ...)`` parameters."""


# ---------------------------------------------------------------------------
# stacked training and inference
# ---------------------------------------------------------------------------

def fit_stacked(
    classifiers: Sequence,
    train_datasets: Sequence,
    config=None,
    rngs: Optional[Sequence[SeedLike]] = None,
) -> List:
    """Train K same-architecture classifiers simultaneously along a model axis.

    The model-axis counterpart of ``ImageClassifier.fit``: lifts the K wrapped
    models into one stacked tree, iterates epochs/minibatches once, and
    unstacks the trained parameters (and per-model ``TrainingHistory``) back.
    Each model keeps its own dataset, RNG stream and shuffle order, so the
    result matches K sequential ``fit`` calls with the same seeds exactly.

    Raises :class:`UnstackableModelError` when the pool cannot be lifted
    (heterogeneous architectures, unsupported layers, datasets of unequal
    length); callers fall back to the sequential loop.
    """
    # imported lazily: nn.stacked must not pull the model layer in at import
    # time (repro.models itself imports repro.nn)
    from repro.config import TrainingConfig
    from repro.models.classifier import TrainingHistory

    classifiers = list(classifiers)
    if not classifiers:
        raise ValueError("fit_stacked needs at least one classifier")
    if len(train_datasets) != len(classifiers):
        raise ValueError("classifiers and train_datasets disagree on length")
    config = config or TrainingConfig()
    pool = len(classifiers)
    if rngs is None:
        rngs = [None] * pool
    if len(rngs) != pool:
        raise ValueError("rngs and classifiers disagree on length")
    generators = [new_rng(rng) for rng in rngs]
    lengths = {len(dataset) for dataset in train_datasets}
    if len(lengths) != 1:
        raise UnstackableModelError("stacked training needs equal-length datasets")
    num_samples = lengths.pop()
    stacked = stack_modules([c.model for c in classifiers])

    params = stacked.parameters()
    if config.optimizer.lower() == "sgd":
        optimizer = StackedSGD(
            params, lr=config.learning_rate, momentum=0.9, weight_decay=config.weight_decay
        )
    elif config.optimizer.lower() == "adam":
        optimizer = StackedAdam(
            params, lr=config.learning_rate, weight_decay=config.weight_decay
        )
    else:
        raise ValueError(f"unknown optimizer {config.optimizer!r}")
    criterion = StackedCrossEntropyLoss(label_smoothing=config.label_smoothing)

    images = [dataset.images for dataset in train_datasets]
    labels = [dataset.labels for dataset in train_datasets]
    # minibatches follow the parameter dtype (float32 tier models run their
    # whole forward/backward in float32; float64 casts are no-ops)
    param_dtype = params[0].data.dtype if params else np.float64
    stacked.train()
    histories = [TrainingHistory() for _ in range(pool)]
    for _ in range(config.epochs):
        # one independent shuffle stream per model, mirroring
        # ImageDataset.batches(shuffle=True, rng=rng) draw for draw
        orders = [rng.permutation(np.arange(num_samples)) for rng in generators]
        epoch_losses: List[List[float]] = [[] for _ in range(pool)]
        epoch_accs: List[List[float]] = [[] for _ in range(pool)]
        for start in range(0, num_samples, config.batch_size):
            batch_idx = [order[start : start + config.batch_size] for order in orders]
            xb = np.stack([images[i][batch_idx[i]] for i in range(pool)]).astype(
                param_dtype, copy=False
            )
            yb = np.stack([labels[i][batch_idx[i]] for i in range(pool)])
            logits = stacked(xb)
            losses = criterion(logits, yb)
            optimizer.zero_grad()
            stacked.backward(criterion.backward())
            optimizer.step()
            predictions = np.argmax(logits, axis=-1)
            for i in range(pool):
                epoch_losses[i].append(float(losses[i]))
                epoch_accs[i].append(float(np.mean(predictions[i] == yb[i])))
        for i in range(pool):
            histories[i].losses.append(float(np.mean(epoch_losses[i])))
            histories[i].train_accuracies.append(float(np.mean(epoch_accs[i])))
    stacked.eval()
    unstack_modules(stacked, [c.model for c in classifiers])
    for classifier, history in zip(classifiers, histories):
        classifier.model.eval()
        classifier.history = history
    return histories


def predict_logits_many(
    classifiers: Sequence,
    images: np.ndarray,
    batch_size: int = 256,
    per_model: bool = False,
) -> np.ndarray:
    """Raw logits of K models in one stacked eval pass, shape ``(K, N, classes)``.

    ``images`` is a shared ``(N, ...)`` batch, or per-model ``(K, N, ...)``
    inputs when ``per_model`` is true (e.g. differently prompted queries).
    Accepts :class:`~repro.models.classifier.ImageClassifier` instances or raw
    modules; results equal per-model ``predict_logits`` bit for bit.
    """
    models = [getattr(c, "model", c) for c in classifiers]
    if not models:
        raise ValueError("predict_logits_many needs at least one model")
    stacked = stack_modules(models)
    stacked.eval()
    pool = len(models)
    stacked_params = stacked.parameters()
    param_dtype = stacked_params[0].data.dtype if stacked_params else np.float64
    images = np.asarray(images)
    if per_model:
        if images.shape[0] != pool:
            raise ValueError(
                f"per-model images lead with {images.shape[0]} models, expected {pool}"
            )
        num_samples = images.shape[1]
    else:
        num_samples = images.shape[0]
    outputs = []
    for start in range(0, num_samples, batch_size):
        if per_model:
            chunk = images[:, start : start + batch_size]
            xb = np.ascontiguousarray(chunk, dtype=param_dtype)
        else:
            chunk = images[start : start + batch_size]
            xb = np.broadcast_to(chunk, (pool, *chunk.shape)).astype(param_dtype)
        outputs.append(stacked(xb))
    if not outputs:
        num_classes = getattr(classifiers[0], "num_classes", 0)
        return np.empty((pool, 0, num_classes), dtype=param_dtype)
    return np.concatenate(outputs, axis=1)


def predict_proba_many(
    classifiers: Sequence,
    images: np.ndarray,
    batch_size: int = 256,
    per_model: bool = False,
) -> np.ndarray:
    """Softmax confidence vectors of K models in one stacked pass, ``(K, N, classes)``."""
    return softmax(
        predict_logits_many(classifiers, images, batch_size=batch_size, per_model=per_model),
        axis=-1,
    )
