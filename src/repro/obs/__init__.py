"""Zero-dependency telemetry: span tracing, mergeable metrics, flight recorder.

The paper's central economics are *queries and latency per audited model*;
this package records where both go inside a single audit and across a fleet:

* :mod:`repro.obs.trace` — context-manager spans over monotonic clocks with
  propagated trace/span ids; worker-side spans are collected per task and
  shipped back through pool results, then re-parented onto the submitting
  gateway's audit span;
* :mod:`repro.obs.metrics` — named counters, gauges and fixed-bucket
  histograms whose snapshots merge associatively across threads and
  processes (the component ``stats()`` counters are rebased onto these);
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — JSONL trace export and
  the flight-recorder CLI (``python -m repro.obs report``) printing
  per-stage latency percentiles, critical-path waterfalls and amortised
  queries-per-verdict.

Everything here is monotonic-clock only (``time.perf_counter``); the JSONL
exporter is the single module allowed to stamp wall-clock metadata
(repro-lint D104 allowlists exactly ``repro/obs/export.py``).  The disabled
tracer is a shared no-op, so instrumentation costs one branch on the hot
path, and nothing in this package touches RNG state — telemetry on/off is
bit-identical by construction.
"""

from repro.obs.clock import Stopwatch, now
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_property,
    gauge_property,
    merge_snapshots,
)
from repro.obs.trace import SpanRecord, TraceContext, Tracer, get_tracer, new_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Stopwatch",
    "TraceContext",
    "Tracer",
    "counter_property",
    "gauge_property",
    "get_tracer",
    "merge_snapshots",
    "new_id",
    "now",
]
