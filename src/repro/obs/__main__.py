"""CLI entry point: ``python -m repro.obs report TRACE.jsonl``.

The flight recorder: reads a trace JSONL exported by a bench or the
gateway, prints per-stage latency percentiles, a critical-path waterfall
for the top-N slowest audits and the amortised queries-per-verdict.

Exit codes: 0 — report rendered, 1 — unreadable or empty trace, 2 — usage
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.export import load_trace
from repro.obs.report import render_report, summarize


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="flight recorder over audit trace JSONL: per-stage latency "
        "percentiles, slowest-audit waterfalls, amortised queries-per-verdict",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser("report", help="render a trace JSONL as a report")
    report.add_argument("trace", help="trace JSONL file (from a bench or export_jsonl)")
    report.add_argument(
        "--top",
        type=int,
        default=3,
        metavar="N",
        help="waterfalls for the N slowest audits (default: 3)",
    )
    report.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    try:
        spans = load_trace(args.trace)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read trace {args.trace}: {exc}", file=sys.stderr)
        return 1
    if not spans:
        print(f"error: {args.trace} holds no spans", file=sys.stderr)
        return 1

    if args.format == "json":
        summary = summarize(spans, top=args.top)
        summary["slowest"] = [s.to_dict() for s in summary["slowest"]]
        print(json.dumps(summary, sort_keys=True, indent=2))
    else:
        print(render_report(spans, top=args.top, title=f"flight recorder: {args.trace}"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
