"""Monotonic clock primitives shared by spans, stage timing and the Timer.

Telemetry measures *durations*, so everything reads ``time.perf_counter`` —
monotonic, unaffected by NTP steps, and meaningless across processes (which
is why cross-process spans travel as task-relative offsets and are rebased
by the receiver; see :mod:`repro.obs.trace`).  Wall-clock time is banned in
this package outside the JSONL exporter (repro-lint D104).
"""

from __future__ import annotations

import time
from typing import Optional


def now() -> float:
    """The monotonic timestamp every span and stopwatch reads."""
    return time.perf_counter()


class Stopwatch:
    """A restartable interval measure over the shared monotonic clock.

    The one primitive behind :class:`repro.utils.timer.Timer` and ad-hoc
    duration measurements: ``start()`` marks an origin, ``stop()`` returns
    the elapsed seconds and clears it.  Not thread-safe — one stopwatch per
    measuring thread.
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start: Optional[float] = None

    @property
    def running(self) -> bool:
        return self._start is not None

    def start(self) -> "Stopwatch":
        self._start = now()
        return self

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 when not running), without stopping."""
        if self._start is None:
            return 0.0
        return now() - self._start

    def stop(self) -> float:
        """Seconds since :meth:`start`; clears the origin (0.0 when not running)."""
        if self._start is None:
            return 0.0
        elapsed = now() - self._start
        self._start = None
        return elapsed
