"""Trace and metrics export: JSONL files and artifact-store telemetry blobs.

This is the one module in the package allowed to read wall-clock time
(repro-lint D104 allowlists exactly this file): the meta header of an
exported trace stamps ``exported_at`` so flight recordings can be ordered
across runs.  Span timestamps themselves stay monotonic offsets — they are
only comparable *within* one trace file.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List

from repro.obs.trace import SpanRecord

#: bumped when the JSONL layout changes; the report CLI checks it
FORMAT_VERSION = 1


def export_jsonl(spans: List[SpanRecord], path: str) -> str:
    """Write spans as JSON-lines with a leading meta record; returns ``path``."""
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    meta = {
        "type": "meta",
        "format_version": FORMAT_VERSION,
        "exported_at": time.time(),
        "spans": len(spans),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(meta, sort_keys=True) + "\n")
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
    return path


def export_to_store(spans: List[SpanRecord], store: Any, name: str) -> str:
    """Write a trace under the artifact store root (``.telemetry/<name>.jsonl``).

    The dot-prefixed directory keeps telemetry blobs out of the store's
    artifact namespace (its loaders glob ``*.pkl``/``*.json`` artifacts by
    key hash, and its GC must never collect a flight recording).
    """
    root = str(getattr(store, "root"))
    return export_jsonl(spans, os.path.join(root, ".telemetry", f"{name}.jsonl"))


def export_metrics(snapshot: Dict[str, Any], path: str) -> str:
    """Write one metrics snapshot (the mergeable dict layout) as JSON."""
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    payload = {
        "type": "metrics",
        "format_version": FORMAT_VERSION,
        "exported_at": time.time(),
        "snapshot": snapshot,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return path


def load_trace(path: str) -> List[SpanRecord]:
    """Read a trace JSONL back into span records (meta lines skipped)."""
    spans: List[SpanRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload.get("type") == "meta":
                version = payload.get("format_version")
                if version != FORMAT_VERSION:
                    raise ValueError(
                        f"{path}: trace format_version {version!r} unsupported "
                        f"(expected {FORMAT_VERSION})"
                    )
                continue
            spans.append(SpanRecord.from_dict(payload))
    return spans
