"""Mergeable metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` names each metric as ``name{label=value,...}``
(labels sorted, so the key is canonical).  ``snapshot()`` returns a plain
JSON-able dict and :func:`merge_snapshots` folds any number of snapshots
together **associatively and commutatively**: counters and gauges add, and
histograms add bucket-wise (two histograms under one name must share a
bucket layout — fixed buckets are what make the merge associative).  That
is the whole cross-thread/cross-process story: every thread or worker
process accumulates locally and the readers merge, in any grouping order.

The pre-existing per-component ``stats()`` counters (store, registry,
verdict cache, worker pool) are *rebased* onto a registry via
:func:`counter_property`/:func:`gauge_property`: the component keeps its
public ``self.hits``-style attribute (every ``self.hits += 1`` site works
unchanged, and the ``stats()`` dict shape is preserved) while the value
lives in a named metric that the gateway's telemetry dashboard can merge.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Optional, Sequence, Tuple

#: default seconds buckets for latency histograms (an implicit +inf bucket
#: always follows the last bound)
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: default buckets for per-verdict query counts (0 = served without queries)
QUERY_BUCKETS: Tuple[float, ...] = (
    0.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


class Counter:
    """A monotone tally (merge: sum)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A current level, e.g. resident bytes (merge: sum across owners)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket distribution; bucket ``i`` counts values ``<= buckets[i]``.

    The trailing ``counts`` slot is the overflow (+inf) bucket.  Fixed
    bounds, chosen at creation, are what keep merges associative — two
    snapshots of one metric always agree on layout.
    """

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram buckets must be sorted and unique, got {buckets!r}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value


class MetricsRegistry:
    """A named, labelled family of counters/gauges/histograms.

    Reads are lock-free dict lookups (safe under the GIL; components already
    serialise their own increments); creation races resolve through one
    lock.  Picklable — the lock is dropped and recreated — though worker
    clones normally start a *fresh* registry and the readers merge.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, Any]) -> str:
        if not labels:
            return name
        inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
        return f"{name}{{{inner}}}"

    def counter(self, name: str, **labels: Any) -> Counter:
        key = self._key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(key, Counter())
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = self._key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge())
        return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        key = self._key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(
                    key, Histogram(buckets if buckets is not None else LATENCY_BUCKETS)
                )
        return metric

    # -- snapshots -------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy of every metric, in the mergeable layout."""
        with self._lock:
            return {
                "counters": {key: metric.value for key, metric in self._counters.items()},
                "gauges": {key: metric.value for key, metric in self._gauges.items()},
                "histograms": {
                    key: {
                        "buckets": list(metric.buckets),
                        "counts": list(metric.counts),
                        "count": metric.count,
                        "sum": metric.sum,
                    }
                    for key, metric in self._histograms.items()
                },
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold one snapshot into this registry (counters add, and so on)."""
        for key, value in snapshot.get("counters", {}).items():
            self.counter(key).value += value
        for key, value in snapshot.get("gauges", {}).items():
            self.gauge(key).value += value
        for key, payload in snapshot.get("histograms", {}).items():
            metric = self.histogram(key, buckets=payload["buckets"])
            _merge_histogram(metric_key=key, into=_as_payload(metric), payload=payload)
            metric.counts = [
                a + b for a, b in zip(metric.counts, payload["counts"])
            ]
            metric.count += payload["count"]
            metric.sum += payload["sum"]

    # -- pickling --------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_lock"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


def _as_payload(metric: Histogram) -> Dict[str, Any]:
    return {"buckets": list(metric.buckets), "counts": list(metric.counts)}


def _merge_histogram(metric_key: str, into: Dict[str, Any], payload: Dict[str, Any]) -> None:
    """Validate that two histogram snapshots share a bucket layout."""
    if list(into["buckets"]) != list(payload["buckets"]):
        raise ValueError(
            f"histogram {metric_key!r} bucket layouts differ "
            f"({into['buckets']} vs {payload['buckets']}); fixed buckets are "
            "what make snapshot merges associative"
        )
    if len(into["counts"]) != len(payload["counts"]):
        raise ValueError(f"histogram {metric_key!r} count arrays differ in length")


def merge_snapshots(*snapshots: Dict[str, Any]) -> Dict[str, Any]:
    """Associatively merge snapshots: counters/gauges add, histograms add.

    ``merge(a, merge(b, c)) == merge(merge(a, b), c)`` for any grouping, so
    per-thread, per-process and per-component snapshots can be folded in
    whatever order they arrive.
    """
    counters: Dict[str, Any] = {}
    gauges: Dict[str, Any] = {}
    histograms: Dict[str, Any] = {}
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            gauges[key] = gauges.get(key, 0) + value
        for key, payload in snapshot.get("histograms", {}).items():
            existing = histograms.get(key)
            if existing is None:
                histograms[key] = {
                    "buckets": list(payload["buckets"]),
                    "counts": list(payload["counts"]),
                    "count": payload["count"],
                    "sum": payload["sum"],
                }
                continue
            _merge_histogram(metric_key=key, into=existing, payload=payload)
            existing["counts"] = [
                a + b for a, b in zip(existing["counts"], payload["counts"])
            ]
            existing["count"] += payload["count"]
            existing["sum"] += payload["sum"]
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def counter_property(name: str) -> property:
    """A class attribute backing an int counter with a named registry metric.

    The owning class keeps a ``self.metrics`` :class:`MetricsRegistry`; the
    property reads and writes ``metrics.counter(name).value``, so existing
    ``self.hits += 1`` sites and ``stats()`` reads work unchanged while the
    value becomes mergeable telemetry.
    """

    def fget(self) -> int:
        return self.metrics.counter(name).value

    def fset(self, value: int) -> None:
        self.metrics.counter(name).value = value

    return property(fget, fset)


def gauge_property(name: str) -> property:
    """Like :func:`counter_property`, for level-style values (e.g. bytes)."""

    def fget(self):
        return self.metrics.gauge(name).value

    def fset(self, value) -> None:
        self.metrics.gauge(name).value = value

    return property(fget, fset)
