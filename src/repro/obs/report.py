"""Flight-recorder report: per-stage percentiles, waterfalls, query economics.

Renders a trace (a list of :class:`~repro.obs.trace.SpanRecord`) into the
text report behind ``python -m repro.obs report``:

* a per-stage latency table — count, p50, p95, max and total seconds for
  every span name seen in the trace;
* a critical-path waterfall for the top-N slowest audits — each
  ``gateway.audit`` root with its child spans drawn as offset bars, so the
  queue wait (the leading gap before ``pool.execute``) and the dominant
  stage are visible at a glance;
* amortised queries-per-verdict — the paper's core economy — computed from
  the query counts the gateway stamps on each audit span.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.trace import SpanRecord

#: the span name the gateway records around a whole audit; waterfalls and
#: query economics key off these roots
AUDIT_SPAN = "gateway.audit"


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def stage_summary(spans: List[SpanRecord]) -> Dict[str, Dict[str, float]]:
    """Per-stage (span-name) latency stats: count, p50, p95, max, total."""
    by_name: Dict[str, List[float]] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span.duration)
    return {
        name: {
            "count": float(len(durations)),
            "p50": percentile(durations, 50.0),
            "p95": percentile(durations, 95.0),
            "max": max(durations),
            "total": sum(durations),
        }
        for name, durations in by_name.items()
    }


def queries_per_verdict(spans: List[SpanRecord]) -> Dict[str, Any]:
    """Amortised query economics from the audit roots' stamped attributes.

    Every verdict counts toward amortisation; only cold audits spend
    queries, so the amortised figure falls as the caches serve more.
    """
    audits = [s for s in spans if s.name == AUDIT_SPAN]
    verdicts = len(audits)
    queries = sum(int(s.attrs.get("queries", 0) or 0) for s in audits)
    cold = sum(1 for s in audits if s.attrs.get("cache", "cold") == "cold")
    return {
        "verdicts": verdicts,
        "cold_verdicts": cold,
        "queries": queries,
        "amortized_queries_per_verdict": (queries / verdicts) if verdicts else 0.0,
    }


def _children_index(spans: List[SpanRecord]) -> Dict[str, List[SpanRecord]]:
    index: Dict[str, List[SpanRecord]] = {}
    for span in spans:
        if span.parent_id is not None:
            index.setdefault(span.parent_id, []).append(span)
    return index


def _descendants(
    root: SpanRecord, index: Dict[str, List[SpanRecord]], depth: int = 1
) -> List[Any]:
    rows: List[Any] = []
    for child in sorted(index.get(root.span_id, []), key=lambda s: s.start):
        rows.append((depth, child))
        rows.extend(_descendants(child, index, depth + 1))
    return rows


def _bar(offset: float, duration: float, total: float, width: int = 28) -> str:
    if total <= 0.0:
        return " " * width
    lead = int(round((offset / total) * width))
    fill = max(1, int(round((duration / total) * width)))
    lead = min(lead, width - 1)
    fill = min(fill, width - lead)
    return " " * lead + "#" * fill + " " * (width - lead - fill)


def waterfall_lines(
    root: SpanRecord, spans: List[SpanRecord], width: int = 28
) -> List[str]:
    """Text waterfall for one audit: children as offset bars under the root."""
    total = root.duration
    attrs = ", ".join(f"{k}={v}" for k, v in sorted(root.attrs.items()))
    lines = [
        f"trace {root.trace_id}  {root.name}  {total * 1000.0:.1f} ms"
        + (f"  [{attrs}]" if attrs else "")
    ]
    for depth, span in _descendants(root, _children_index(spans)):
        offset = span.start - root.start
        bar = _bar(offset, span.duration, total, width)
        label = "  " * depth + span.name
        lines.append(
            f"  |{bar}| {label:<34} +{offset * 1000.0:8.1f} ms  "
            f"{span.duration * 1000.0:8.1f} ms"
        )
    return lines


def summarize(spans: List[SpanRecord], top: int = 3) -> Dict[str, Any]:
    """The report as data: stages, query economics, top-N slowest audits."""
    audits = sorted(
        (s for s in spans if s.name == AUDIT_SPAN),
        key=lambda s: s.duration,
        reverse=True,
    )
    return {
        "spans": len(spans),
        "stages": stage_summary(spans),
        "queries": queries_per_verdict(spans),
        "slowest": audits[: max(0, top)],
    }


def render_report(spans: List[SpanRecord], top: int = 3, title: Optional[str] = None) -> str:
    """The full flight-recorder report as printable text."""
    summary = summarize(spans, top=top)
    lines: List[str] = []
    lines.append(title or "flight recorder")
    lines.append(f"spans: {summary['spans']}")
    lines.append("")

    lines.append("per-stage latency (seconds)")
    header = f"  {'stage':<24} {'count':>6} {'p50':>10} {'p95':>10} {'max':>10} {'total':>10}"
    lines.append(header)
    stages = summary["stages"]
    for name in sorted(stages, key=lambda n: stages[n]["total"], reverse=True):
        row = stages[name]
        lines.append(
            f"  {name:<24} {int(row['count']):>6} {row['p50']:>10.4f} "
            f"{row['p95']:>10.4f} {row['max']:>10.4f} {row['total']:>10.4f}"
        )
    lines.append("")

    economy = summary["queries"]
    lines.append("query economics")
    lines.append(
        f"  verdicts: {economy['verdicts']} "
        f"(cold: {economy['cold_verdicts']})  queries: {economy['queries']}"
    )
    lines.append(
        f"  amortized queries/verdict: {economy['amortized_queries_per_verdict']:.2f}"
    )

    slowest = summary["slowest"]
    if slowest:
        lines.append("")
        lines.append(f"slowest audits (top {len(slowest)})")
        for root in slowest:
            for line in waterfall_lines(root, spans):
                lines.append("  " + line)
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"
