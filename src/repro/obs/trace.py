"""Span tracing over monotonic clocks, propagated in- and cross-process.

A *span* is one named, timed region of an audit — ``gateway.audit`` wraps
submit-to-harvest, ``registry.get_or_fit`` wraps detector standup,
``fit.shadow``/``fit.prompt``/``fit.meta`` wrap the pipeline stages,
``pool.execute`` wraps one worker task, ``inspect.prompt`` /
``prompt.generation`` / ``inspect.score`` wrap the inspection itself.
Spans carry a ``trace_id`` (one per submission), a ``span_id`` and a
``parent_id``, so a flight recorder can reconstruct the critical path.

Three recording APIs, by call-site shape:

* :meth:`Tracer.span` — the primary context-manager form; propagates the
  ambient parent through a :class:`~contextvars.ContextVar` so nested spans
  parent automatically;
* :meth:`Tracer.start_span` — an explicit handle for regions that cannot be
  a ``with`` block; **must** be closed in a ``try/finally`` (repro-lint
  O101 flags a leaked handle);
* :meth:`Tracer.record` — a complete-record API for spans whose start and
  end are observed in different functions or threads (the gateway records
  each audit span at harvest time from the timestamp taken at submit);
  nothing is ever left open, so O101 does not apply.

Cross-process propagation: a submitting gateway pins a submission's ids in
a picklable :class:`TraceContext`; the pool-side task wrapper activates a
per-task :func:`collect` sink (a ContextVar, so concurrent thread-backend
tasks never interleave), records spans on the *worker's* clock, converts
them to offsets relative to task entry, and ships them back attached to the
verdict.  The gateway rebases them onto its own clock at harvest by
aligning the latest shipped span end with the harvest timestamp — queue
wait shows up as the leading gap under the audit span.

Ids are deterministic — ``pid`` plus a process-local counter — so tracing
never touches RNG state and cannot perturb verdict bit-identity.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.clock import now

_IDS = itertools.count(1)


def new_id() -> str:
    """A process-unique span/trace id: pid plus a monotone counter (no RNG)."""
    return f"{os.getpid():x}-{next(_IDS):x}"


@dataclass
class SpanRecord:
    """One finished span.  Picklable, so workers can ship spans in results."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanRecord":
        return cls(
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            name=payload["name"],
            start=float(payload["start"]),
            end=float(payload["end"]),
            attrs=dict(payload.get("attrs") or {}),
        )


@dataclass(frozen=True)
class TraceContext:
    """The picklable coordinates a span tree is continued under elsewhere.

    ``span_id`` is the parent the receiving side's spans attach to (for pool
    tasks: the submission's audit span, whose id the gateway mints at submit
    time and records at harvest).
    """

    trace_id: str
    span_id: str


#: ambient (trace_id, span_id) the next opened span parents under
_CURRENT: ContextVar[Optional[Tuple[str, str]]] = ContextVar(
    "repro_obs_current", default=None
)
#: per-task span sink; when set, emitted spans go here instead of the global
#: buffer — lets a worker task trace even though its process-global tracer
#: is disabled, and keeps concurrent thread-backend tasks from interleaving
_SINK: ContextVar[Optional[List[SpanRecord]]] = ContextVar("repro_obs_sink", default=None)


class _NullHandle:
    """The shared no-op handle a disabled tracer hands out (zero allocation)."""

    __slots__ = ()

    def set(self, **_attrs: Any) -> "_NullHandle":
        return self

    def end(self) -> None:
        return None

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *_exc: Any) -> None:
        return None


_NULL = _NullHandle()


class SpanHandle:
    """An open span returned by :meth:`Tracer.start_span`.

    Close it exactly once with :meth:`end` inside a ``try/finally`` (or use
    :meth:`Tracer.span` instead); an unclosed handle is a leaked span and is
    flagged statically by repro-lint O101.
    """

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set(self, **attrs: Any) -> "SpanHandle":
        """Attach attributes to the span (chainable)."""
        self.record.attrs.update(attrs)
        return self

    def end(self) -> None:
        """Close and emit the span (idempotent)."""
        if self.record.end >= 0.0:
            return
        self.record.end = now()
        self._tracer._emit(self.record)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.end()


class Tracer:
    """Span recorder with a global buffer and per-task sink override.

    Disabled by default: :meth:`span`/:meth:`start_span` then return a shared
    no-op handle and :meth:`record` drops the record, so instrumented hot
    paths pay one branch.  A worker-side :func:`collect` sink activates the
    tracer for that task regardless of the global switch.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        #: total spans ever emitted into the global buffer (drains included)
        self.recorded = 0

    # -- switches --------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def active(self) -> bool:
        """Whether emitted spans are being kept (globally on, or a sink is set)."""
        return self._enabled or _SINK.get() is not None

    # -- emission --------------------------------------------------------------
    def _emit(self, record: SpanRecord) -> None:
        sink = _SINK.get()
        if sink is not None:
            sink.append(record)
            return
        with self._lock:
            self._spans.append(record)
            self.recorded += 1

    def _open(self, name: str, attrs: Dict[str, Any]) -> SpanRecord:
        parent = _CURRENT.get()
        trace_id = parent[0] if parent is not None else new_id()
        parent_id = parent[1] if parent is not None else None
        # end < 0 marks the span open; SpanHandle.end()/span() stamp it
        return SpanRecord(trace_id, new_id(), parent_id, name, now(), -1.0, attrs)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Any]:
        """Record one span around the ``with`` body (the primary API).

        The span parents under the ambient context and becomes the ambient
        parent for spans opened inside the body — including bodies running
        in the same thread further down the call stack.
        """
        if not self.active():
            yield _NULL
            return
        record = self._open(name, dict(attrs))
        token = _CURRENT.set((record.trace_id, record.span_id))
        try:
            yield SpanHandle(self, record)
        finally:
            _CURRENT.reset(token)
            record.end = now()
            self._emit(record)

    def start_span(self, name: str, **attrs: Any) -> Any:
        """Open a span and return its handle; close with ``handle.end()``.

        Unlike :meth:`span`, the handle does not become the ambient parent
        (its end may happen on another code path, where resetting the
        context would be unsound).  Close it in a ``try/finally`` —
        repro-lint O101 flags call sites that do not.
        """
        if not self.active():
            return _NULL
        return SpanHandle(self, self._open(name, dict(attrs)))

    def record(
        self,
        name: str,
        start: float,
        end: float,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> Optional[str]:
        """Emit a complete span from timestamps observed elsewhere.

        For regions whose start and end are seen by different functions or
        threads (submit vs. harvest): nothing is ever held open, so this
        form cannot leak.  Returns the span id, or ``None`` when inactive.
        """
        if not self.active():
            return None
        record = SpanRecord(
            trace_id if trace_id is not None else new_id(),
            span_id if span_id is not None else new_id(),
            parent_id,
            name,
            float(start),
            float(end),
            dict(attrs),
        )
        self._emit(record)
        return record.span_id

    # -- context propagation ---------------------------------------------------
    @contextmanager
    def context(self, trace_id: str, span_id: str) -> Iterator[None]:
        """Make ``(trace_id, span_id)`` the ambient parent for the body."""
        token = _CURRENT.set((trace_id, span_id))
        try:
            yield
        finally:
            _CURRENT.reset(token)

    def current_context(self) -> Optional[TraceContext]:
        """The ambient parent as a picklable :class:`TraceContext`, if any."""
        current = _CURRENT.get()
        if current is None:
            return None
        return TraceContext(trace_id=current[0], span_id=current[1])

    # -- collection ------------------------------------------------------------
    def drain(self) -> List[SpanRecord]:
        """All buffered spans, clearing the buffer (export calls this)."""
        with self._lock:
            spans, self._spans = self._spans, []
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


@contextmanager
def collect(ctx: Optional[TraceContext]) -> Iterator[List[SpanRecord]]:
    """Activate a per-task span sink parented under ``ctx`` (worker side).

    Spans emitted inside the body land in the yielded list instead of any
    global buffer — even when the process-global tracer is disabled, which
    is the normal state of a pool worker.  The caller owns the list (a task
    wrapper converts the spans to task-relative offsets and attaches them to
    its result).
    """
    spans: List[SpanRecord] = []
    sink_token = _SINK.set(spans)
    current_token = (
        _CURRENT.set((ctx.trace_id, ctx.span_id)) if ctx is not None else None
    )
    try:
        yield spans
    finally:
        if current_token is not None:
            _CURRENT.reset(current_token)
        _SINK.reset(sink_token)


def relative_to(spans: List[SpanRecord], origin: float) -> List[SpanRecord]:
    """Copies of ``spans`` with times as offsets from ``origin``.

    Cross-process spans must travel as offsets: ``perf_counter`` origins are
    per-process, so absolute worker timestamps mean nothing to the gateway.
    """
    return [replace(s, start=s.start - origin, end=s.end - origin) for s in spans]


def rebased(spans: List[SpanRecord], anchor_end: float) -> List[SpanRecord]:
    """Task-relative spans shifted onto this process's clock.

    Aligns the latest span end with ``anchor_end`` (the harvest timestamp of
    the audit span the shipped spans parent under), so the task's span tree
    sits inside the audit span and the leading gap is the queue wait.
    """
    if not spans:
        return []
    offset = anchor_end - max(s.end for s in spans)
    return [replace(s, start=s.start + offset, end=s.end + offset) for s in spans]


#: the process-global tracer every instrumentation site shares
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER
