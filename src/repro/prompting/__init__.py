"""Visual prompting / model reprogramming.

Implements the four-step VP procedure of Section 3 of the paper:

1. *Initialisation* — :class:`VisualPrompt` holds the trainable prompt ``theta``.
2. *Visual prompt padding* — ``V(x | theta)`` resizes the target-domain image
   and pads it with the prompt (:meth:`VisualPrompt.apply`).
3. *Output mapping* — :class:`LabelMapping` (identity by default, as the paper
   omits the trainable mapping; a frequency-based mapping is available).
4. *Prompted model training* — :func:`train_prompt_whitebox` (backpropagation
   through the frozen model, used for shadow models) and
   :func:`train_prompt_blackbox` (CMA-ES / SPSA over queries, used for the
   suspicious model).

:class:`PromptedClassifier` bundles a frozen source classifier with a trained
prompt and exposes the prompted model ``f_T = O ∘ f_S ∘ V``.
"""

from repro.prompting.prompt import VisualPrompt
from repro.prompting.output_mapping import LabelMapping
from repro.prompting.prompted import PromptedClassifier, predict_source_proba_many
from repro.prompting.trainer import train_prompt_whitebox
from repro.prompting.blackbox import QueryCounter, train_prompt_blackbox

__all__ = [
    "VisualPrompt",
    "LabelMapping",
    "PromptedClassifier",
    "QueryCounter",
    "predict_source_proba_many",
    "train_prompt_whitebox",
    "train_prompt_blackbox",
]
