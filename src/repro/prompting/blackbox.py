"""Black-box (query-only) prompt training, used for the suspicious model.

The defender cannot backpropagate through the suspicious model: only its
confidence vectors are observable.  The prompt is therefore optimised with a
gradient-free method (CMA-ES by default, as in the paper; SPSA and random
search are available for the optimiser ablation).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.config import PromptConfig
from repro.datasets.base import ImageDataset
from repro.ml.cma_es import build_blackbox_optimizer
from repro.models.classifier import ImageClassifier
from repro.prompting.output_mapping import LabelMapping
from repro.prompting.prompt import VisualPrompt
from repro.prompting.prompted import PromptedClassifier
from repro.utils.rng import SeedLike, new_rng

#: a query function maps an NCHW batch to (N, K_S) confidence vectors
QueryFunction = Callable[[np.ndarray], np.ndarray]


def _cross_entropy_from_probabilities(
    probabilities: np.ndarray, labels: np.ndarray
) -> float:
    clipped = np.clip(probabilities, 1e-9, 1.0)
    return float(-np.mean(np.log(clipped[np.arange(labels.shape[0]), labels])))


def train_prompt_blackbox(
    suspicious_classifier: ImageClassifier,
    target_train: ImageDataset,
    config: Optional[PromptConfig] = None,
    mapping_mode: str = "identity",
    rng: SeedLike = None,
    name: str = "prompted-suspicious",
    query_function: Optional[QueryFunction] = None,
    num_source_classes: Optional[int] = None,
) -> PromptedClassifier:
    """Learn a visual prompt for the suspicious model using only black-box queries.

    ``query_function`` defaults to the classifier's ``predict_proba`` — the
    MLaaS confidence-vector interface.  Passing a custom callable allows
    plugging in an actual remote endpoint.
    """
    config = config or PromptConfig()
    rng = new_rng(rng)
    query = query_function or suspicious_classifier.predict_proba
    source_classes = num_source_classes or suspicious_classifier.num_classes

    prompt = VisualPrompt(
        source_size=config.source_size,
        inner_size=config.inner_size,
        channels=3,
        rng=rng,
    )
    mapping = LabelMapping(
        num_source_classes=source_classes,
        num_target_classes=target_train.num_classes,
        mode=mapping_mode,
    )

    # a fixed optimisation batch keeps the objective deterministic across
    # candidate evaluations (important for evolution strategies)
    batch_size = min(config.batch_size, len(target_train))
    optimisation_batch = target_train.sample(batch_size, rng=rng)
    source_labels = mapping.target_labels_as_source(optimisation_batch.labels)

    def objective(flat_prompt: np.ndarray) -> float:
        prompt.set_flat(flat_prompt)
        probabilities = query(prompt.apply(optimisation_batch.images))
        return _cross_entropy_from_probabilities(probabilities, source_labels)

    optimizer = build_blackbox_optimizer(
        config.blackbox_optimizer,
        iterations=config.blackbox_iterations,
        population=config.blackbox_population,
        rng=rng,
    )
    result = optimizer.minimize(objective, prompt.get_flat())
    prompt.set_flat(result.best_x)

    if mapping_mode == "frequency":
        probabilities = query(prompt.apply(target_train.images))
        mapping.fit(probabilities, target_train.labels)

    prompted = PromptedClassifier(suspicious_classifier, prompt, mapping, name=name)
    prompted.optimization_result = result  # type: ignore[attr-defined]
    return prompted
