"""Black-box (query-only) prompt training, used for the suspicious model.

The defender cannot backpropagate through the suspicious model: only its
confidence vectors are observable.  The prompt is therefore optimised with a
gradient-free method (CMA-ES by default, as in the paper; SPSA and random
search are available for the optimiser ablation).

Two evaluation paths feed the optimiser, controlled by
``PromptConfig.blackbox_batched``:

* **batched** (default) — each generation's whole ``(lambda, dim)`` candidate
  matrix is rendered by :meth:`VisualPrompt.apply_many` into one
  ``(lambda * B, C, S, S)`` megabatch and scored with a *single* ``query()``
  call; the fixed optimisation batch is resized and centre-padded once per
  run.
* **sequential** — the original one-query-per-candidate loop, kept as a
  fallback and as the reference the batched path is tested against.

Both paths drive identical optimiser RNG streams and update math, so they
produce equivalent prompts.  A :class:`QueryCounter` records how many images
were sent to the query function — the paper's query-budget metric — and is
attached to the returned :class:`PromptedClassifier`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.config import PromptConfig
from repro.datasets.base import ImageDataset
from repro.ml.cma_es import build_blackbox_optimizer
from repro.models.classifier import ImageClassifier
from repro.obs.trace import get_tracer
from repro.prompting.output_mapping import LabelMapping
from repro.prompting.prompt import VisualPrompt
from repro.prompting.prompted import PromptedClassifier
from repro.utils.rng import SeedLike, new_rng

#: a query function maps an NCHW batch to (N, K_S) confidence vectors
QueryFunction = Callable[[np.ndarray], np.ndarray]


@dataclass
class QueryCounter:
    """Running tally of black-box queries issued to one suspicious model.

    ``images`` is the paper's query-budget metric (number of inputs whose
    confidence vectors were requested); ``calls`` counts round-trips to the
    query endpoint — the batched engine collapses a whole CMA-ES generation
    into one call, so ``calls`` drops by a factor of lambda while ``images``
    stays identical to the sequential path.
    """

    images: int = 0
    calls: int = 0

    def record(self, batch_size: int) -> None:
        self.images += int(batch_size)
        self.calls += 1

    def wrap(self, query: QueryFunction) -> QueryFunction:
        """A counting proxy around ``query``."""

        def counted(images: np.ndarray) -> np.ndarray:
            self.record(images.shape[0])
            return query(images)

        return counted


def _cross_entropy_from_probabilities(
    probabilities: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Per-candidate mean cross-entropy from ``(..., B, K)`` probabilities.

    Shared by the sequential objective (a single ``(B, K)`` matrix -> scalar
    array) and the batched one (``(lambda, B, K)`` -> ``(lambda,)`` losses),
    so both paths optimise one loss definition by construction.
    """
    clipped = np.clip(probabilities, 1e-9, 1.0)
    picked = clipped[..., np.arange(labels.shape[0]), labels]
    return -np.mean(np.log(picked), axis=-1)


def train_prompt_blackbox(
    suspicious_classifier: ImageClassifier,
    target_train: ImageDataset,
    config: Optional[PromptConfig] = None,
    mapping_mode: str = "identity",
    rng: SeedLike = None,
    name: str = "prompted-suspicious",
    query_function: Optional[QueryFunction] = None,
    num_source_classes: Optional[int] = None,
    query_counter: Optional[QueryCounter] = None,
) -> PromptedClassifier:
    """Learn a visual prompt for the suspicious model using only black-box queries.

    ``query_function`` defaults to the classifier's ``predict_proba`` — the
    MLaaS confidence-vector interface.  Passing a custom callable allows
    plugging in an actual remote endpoint.  ``query_counter`` (one is created
    when omitted) tallies every image sent through the query function and is
    attached to the result as ``prompted.query_counter``.
    """
    config = config or PromptConfig()
    rng = new_rng(rng)
    counter = query_counter if query_counter is not None else QueryCounter()
    query = counter.wrap(query_function or suspicious_classifier.predict_proba)
    source_classes = num_source_classes or suspicious_classifier.num_classes

    prompt = VisualPrompt(
        source_size=config.source_size,
        inner_size=config.inner_size,
        channels=3,
        rng=rng,
    )
    mapping = LabelMapping(
        num_source_classes=source_classes,
        num_target_classes=target_train.num_classes,
        mode=mapping_mode,
    )

    # a fixed optimisation batch keeps the objective deterministic across
    # candidate evaluations (important for evolution strategies)
    batch_size = min(config.batch_size, len(target_train))
    optimisation_batch = target_train.sample(batch_size, rng=rng)
    source_labels = mapping.target_labels_as_source(optimisation_batch.labels)

    def objective(flat_prompt: np.ndarray) -> float:
        prompt.set_flat(flat_prompt)
        probabilities = query(prompt.apply(optimisation_batch.images))
        return float(_cross_entropy_from_probabilities(probabilities, source_labels))

    # per-population-size megabatch buffers, reused across generations (the
    # query consumes each megabatch before the next generation overwrites it)
    scratch: dict = {}

    def _batch_objective(flat_prompts: np.ndarray) -> np.ndarray:
        lam = flat_prompts.shape[0]
        buffer = scratch.get(lam)
        if buffer is None:
            buffer = scratch[lam] = np.empty(
                (lam * batch_size, 3, config.source_size, config.source_size)
            )
        megabatch = prompt.apply_many(
            flat_prompts, optimisation_batch.images, out=buffer
        )
        probabilities = query(megabatch).reshape(lam, batch_size, -1)
        return _cross_entropy_from_probabilities(probabilities, source_labels)

    def batch_objective(flat_prompts: np.ndarray) -> np.ndarray:
        # one batched call is one CMA-ES generation — the natural span
        # granularity for prompt optimisation (per-candidate spans in the
        # non-batched path would be pure noise)
        with get_tracer().span(
            "prompt.generation", population=int(flat_prompts.shape[0])
        ):
            return _batch_objective(flat_prompts)

    optimizer = build_blackbox_optimizer(
        config.blackbox_optimizer,
        iterations=config.blackbox_iterations,
        population=config.blackbox_population,
        rng=rng,
    )
    if config.blackbox_batched:
        result = optimizer.minimize(
            objective, prompt.get_flat(), batch_objective=batch_objective
        )
    else:
        result = optimizer.minimize(objective, prompt.get_flat())
    prompt.clear_canvas_cache()
    prompt.set_flat(result.best_x)

    if mapping_mode == "frequency":
        probabilities = query(prompt.apply(target_train.images))
        mapping.fit(probabilities, target_train.labels)

    prompted = PromptedClassifier(suspicious_classifier, prompt, mapping, name=name)
    prompted.optimization_result = result  # type: ignore[attr-defined]
    prompted.query_counter = counter  # type: ignore[attr-defined]
    return prompted
