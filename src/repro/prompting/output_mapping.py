"""Output label mapping ``O(. | w)`` between source and target classes.

The paper omits the trainable output-mapping step (Section 3, step 3), which
corresponds to the identity mapping used here by default: target class ``i``
is read off source logit ``i``.  A frequency-based mapping (assign each target
class to the source class its training samples most often land on) is provided
because it is the standard fallback when the target task has more classes than
the source task — and for the CIFAR-100-as-``D_S`` experiment (Table 21).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LabelMapping:
    """Maps source-class confidence vectors to target-class scores."""

    def __init__(self, num_source_classes: int, num_target_classes: int, mode: str = "identity") -> None:
        if num_source_classes <= 0 or num_target_classes <= 0:
            raise ValueError("class counts must be positive")
        if mode not in ("identity", "frequency"):
            raise ValueError(f"unknown mapping mode {mode!r}")
        self.num_source_classes = int(num_source_classes)
        self.num_target_classes = int(num_target_classes)
        self.mode = mode
        #: assignment[target_class] = source_class
        self.assignment: np.ndarray = np.arange(num_target_classes) % num_source_classes

    def fit(self, source_probabilities: np.ndarray, target_labels: np.ndarray) -> "LabelMapping":
        """Learn a frequency-based assignment from prompted training predictions."""
        if self.mode == "identity":
            return self
        source_probabilities = np.asarray(source_probabilities, dtype=np.float64)
        target_labels = np.asarray(target_labels, dtype=np.int64)
        predictions = np.argmax(source_probabilities, axis=1)
        assignment = np.arange(self.num_target_classes) % self.num_source_classes
        for target_class in range(self.num_target_classes):
            mask = target_labels == target_class
            if not np.any(mask):
                continue
            counts = np.bincount(predictions[mask], minlength=self.num_source_classes)
            assignment[target_class] = int(np.argmax(counts))
        self.assignment = assignment
        return self

    def map_probabilities(self, source_probabilities: np.ndarray) -> np.ndarray:
        """Target-class scores obtained by reading the assigned source entries."""
        source_probabilities = np.asarray(source_probabilities, dtype=np.float64)
        if source_probabilities.shape[1] != self.num_source_classes:
            raise ValueError(
                f"expected {self.num_source_classes} source classes, got "
                f"{source_probabilities.shape[1]}"
            )
        return source_probabilities[:, self.assignment]

    def predict_target(self, source_probabilities: np.ndarray) -> np.ndarray:
        """Hard target-class predictions."""
        return np.argmax(self.map_probabilities(source_probabilities), axis=1)

    def target_labels_as_source(self, target_labels: np.ndarray) -> Optional[np.ndarray]:
        """Source-class labels used as the training target for prompt optimisation.

        With the identity mapping this is simply the target label (modulo the
        source class count); with the frequency mapping it is the assigned
        source class.
        """
        target_labels = np.asarray(target_labels, dtype=np.int64)
        return self.assignment[target_labels % self.num_target_classes]
