"""The visual prompt ``theta`` and the padding operator ``V(x | theta)``."""

from __future__ import annotations

import numpy as np

from repro.datasets.transforms import resize_batch
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_image_batch


class VisualPrompt:
    """A trainable additive border prompt.

    ``V(x | theta)`` resizes the target-domain image ``x`` to ``inner_size``,
    places it at the centre of a ``source_size`` canvas, and adds the prompt
    ``theta`` on the border ring (the centre portion of ``theta`` is masked
    out, matching the "trainable noise around the image" construction of
    Bahng et al. and Figure 1a of the paper).

    The prompt exposes both a gradient interface (``accumulate_grad`` /
    ``apply_gradient_step``) for white-box training and a flat-vector interface
    (``get_flat`` / ``set_flat``) for the gradient-free black-box optimisers.
    """

    def __init__(
        self,
        source_size: int = 16,
        inner_size: int = 10,
        channels: int = 3,
        init_scale: float = 0.05,
        rng: SeedLike = None,
    ) -> None:
        if inner_size > source_size:
            raise ValueError(
                f"inner_size ({inner_size}) cannot exceed source_size ({source_size})"
            )
        if inner_size <= 0 or source_size <= 0:
            raise ValueError("sizes must be positive")
        self.source_size = int(source_size)
        self.inner_size = int(inner_size)
        self.channels = int(channels)
        rng = new_rng(rng)
        self.theta = rng.normal(0.0, init_scale, size=(channels, source_size, source_size))
        self.grad = np.zeros_like(self.theta)
        self._mask = self._build_border_mask()
        self.theta *= self._mask
        #: (images identity, base canvas) memo for :meth:`apply_many` — the
        #: black-box objective re-applies candidate prompts to one fixed
        #: optimisation batch, so its resize/centre-pad is computed once per run
        self._canvas_cache: tuple | None = None

    def _build_border_mask(self) -> np.ndarray:
        mask = np.ones((self.channels, self.source_size, self.source_size), dtype=np.float64)
        top = (self.source_size - self.inner_size) // 2
        left = top
        mask[:, top : top + self.inner_size, left : left + self.inner_size] = 0.0
        return mask

    @property
    def border_mask(self) -> np.ndarray:
        """Binary (C, S, S) mask of the prompt's trainable border region."""
        return self._mask.copy()

    @property
    def num_parameters(self) -> int:
        """Number of trainable prompt entries (border pixels x channels)."""
        return int(self._mask.sum())

    # -- the padding operator V ------------------------------------------------
    def _make_canvas(self, target_images: np.ndarray) -> np.ndarray:
        """Resize a batch to ``inner_size`` and centre-pad onto a blank canvas."""
        target_images = check_image_batch(target_images, "target_images")
        n = target_images.shape[0]
        resized = resize_batch(target_images, self.inner_size)
        canvas = np.zeros((n, self.channels, self.source_size, self.source_size))
        top = (self.source_size - self.inner_size) // 2
        left = top
        canvas[:, :, top : top + self.inner_size, left : left + self.inner_size] = resized[
            :, : self.channels
        ]
        return canvas

    def apply(self, target_images: np.ndarray) -> np.ndarray:
        """``V(x | theta)``: resize, centre-pad and add the prompt."""
        prompted = self._make_canvas(target_images) + (self.theta * self._mask)[None]
        return np.clip(prompted, 0.0, 1.0)

    def base_canvas(self, target_images: np.ndarray) -> np.ndarray:
        """The prompt-free canvas for a batch: resized images centre-padded to
        ``source_size``.  Memoised on the batch's identity, so repeated calls
        with the *same array object* (the fixed optimisation batch of a
        black-box run) skip the resize entirely."""
        if self._canvas_cache is not None and self._canvas_cache[0] is target_images:
            return self._canvas_cache[1]
        canvas = self._make_canvas(target_images)
        self._canvas_cache = (target_images, canvas)
        return canvas

    def apply_many(
        self,
        flat_prompts: np.ndarray,
        target_images: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """``V(x | theta_i)`` for a whole candidate population at once.

        ``flat_prompts`` is a ``(lambda, num_parameters)`` matrix of border
        vectors (one CMA-ES generation); the result is the
        ``(lambda * B, C, S, S)`` megabatch of every candidate applied to every
        image, laid out candidate-major so row ``i * B + j`` is candidate ``i``
        on image ``j``.  Equivalent to ``set_flat`` + :meth:`apply` per
        candidate, but the resize/centre-pad happens once (cached) and the
        prompt addition is a single broadcast.

        ``out`` optionally supplies a caller-owned float64 output buffer of
        shape ``(lambda * B, C, S, S)``; the hot loop in
        :func:`~repro.prompting.blackbox.train_prompt_blackbox` reuses one
        buffer per generation instead of reallocating the megabatch.  A
        mismatched ``out`` is ignored and a fresh array returned.
        """
        flat_prompts = np.asarray(flat_prompts, dtype=np.float64)
        if flat_prompts.ndim == 1:
            flat_prompts = flat_prompts[None]
        lam, width = flat_prompts.shape
        if width != self.num_parameters:
            raise ValueError(
                f"expected {self.num_parameters} prompt parameters per candidate, "
                f"got {width}"
            )
        canvas = self.base_canvas(target_images)
        n = canvas.shape[0]
        thetas = np.zeros((lam, self.channels, self.source_size, self.source_size))
        thetas[:, self._mask > 0] = flat_prompts
        flat_shape = (lam * n, self.channels, self.source_size, self.source_size)
        if (
            out is not None
            and out.shape == flat_shape
            and out.dtype == np.float64
            and out.flags.c_contiguous
        ):
            prompted = out.reshape(lam, n, self.channels, self.source_size, self.source_size)
            np.add(canvas[None], thetas[:, None], out=prompted)
        else:
            prompted = canvas[None] + thetas[:, None]
        np.clip(prompted, 0.0, 1.0, out=prompted)
        return prompted.reshape(flat_shape)

    # -- white-box gradient interface -------------------------------------------
    def zero_grad(self) -> None:
        self.grad = np.zeros_like(self.theta)

    def accumulate_grad(self, grad_prompted: np.ndarray) -> None:
        """Accumulate d(loss)/d(theta) given d(loss)/d(prompted images)."""
        grad_prompted = np.asarray(grad_prompted, dtype=np.float64)
        if grad_prompted.ndim != 4:
            raise ValueError("grad_prompted must be an NCHW batch gradient")
        self.grad += grad_prompted.sum(axis=0) * self._mask

    def apply_gradient_step(self, learning_rate: float) -> None:
        self.theta -= learning_rate * self.grad
        self.theta *= self._mask

    # -- black-box flat-vector interface ------------------------------------------
    def get_flat(self) -> np.ndarray:
        """The trainable border entries as a flat vector."""
        return self.theta[self._mask > 0].copy()

    def set_flat(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        expected = self.num_parameters
        if values.size != expected:
            raise ValueError(
                f"expected {expected} prompt parameters, got {values.size}"
            )
        theta = np.zeros_like(self.theta)
        theta[self._mask > 0] = values
        self.theta = theta

    def clear_canvas_cache(self) -> None:
        """Drop the memoised base canvas (call once an optimisation run ends)."""
        self._canvas_cache = None

    def __getstate__(self) -> dict:
        # the canvas memo is a per-run scratch buffer; never ship it across
        # process boundaries or into saved artefacts
        state = self.__dict__.copy()
        state["_canvas_cache"] = None
        return state

    def copy(self) -> "VisualPrompt":
        clone = VisualPrompt(
            self.source_size, self.inner_size, self.channels, init_scale=0.0
        )
        clone.theta = self.theta.copy()
        return clone
