"""The visual prompt ``theta`` and the padding operator ``V(x | theta)``."""

from __future__ import annotations

import numpy as np

from repro.datasets.transforms import resize_batch
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_image_batch


class VisualPrompt:
    """A trainable additive border prompt.

    ``V(x | theta)`` resizes the target-domain image ``x`` to ``inner_size``,
    places it at the centre of a ``source_size`` canvas, and adds the prompt
    ``theta`` on the border ring (the centre portion of ``theta`` is masked
    out, matching the "trainable noise around the image" construction of
    Bahng et al. and Figure 1a of the paper).

    The prompt exposes both a gradient interface (``accumulate_grad`` /
    ``apply_gradient_step``) for white-box training and a flat-vector interface
    (``get_flat`` / ``set_flat``) for the gradient-free black-box optimisers.
    """

    def __init__(
        self,
        source_size: int = 16,
        inner_size: int = 10,
        channels: int = 3,
        init_scale: float = 0.05,
        rng: SeedLike = None,
    ) -> None:
        if inner_size > source_size:
            raise ValueError(
                f"inner_size ({inner_size}) cannot exceed source_size ({source_size})"
            )
        if inner_size <= 0 or source_size <= 0:
            raise ValueError("sizes must be positive")
        self.source_size = int(source_size)
        self.inner_size = int(inner_size)
        self.channels = int(channels)
        rng = new_rng(rng)
        self.theta = rng.normal(0.0, init_scale, size=(channels, source_size, source_size))
        self.grad = np.zeros_like(self.theta)
        self._mask = self._build_border_mask()
        self.theta *= self._mask

    def _build_border_mask(self) -> np.ndarray:
        mask = np.ones((self.channels, self.source_size, self.source_size), dtype=np.float64)
        top = (self.source_size - self.inner_size) // 2
        left = top
        mask[:, top : top + self.inner_size, left : left + self.inner_size] = 0.0
        return mask

    @property
    def border_mask(self) -> np.ndarray:
        """Binary (C, S, S) mask of the prompt's trainable border region."""
        return self._mask.copy()

    @property
    def num_parameters(self) -> int:
        """Number of trainable prompt entries (border pixels x channels)."""
        return int(self._mask.sum())

    # -- the padding operator V ------------------------------------------------
    def apply(self, target_images: np.ndarray) -> np.ndarray:
        """``V(x | theta)``: resize, centre-pad and add the prompt."""
        target_images = check_image_batch(target_images, "target_images")
        n = target_images.shape[0]
        resized = resize_batch(target_images, self.inner_size)
        canvas = np.zeros((n, self.channels, self.source_size, self.source_size))
        top = (self.source_size - self.inner_size) // 2
        left = top
        canvas[:, :, top : top + self.inner_size, left : left + self.inner_size] = resized[
            :, : self.channels
        ]
        prompted = canvas + (self.theta * self._mask)[None]
        return np.clip(prompted, 0.0, 1.0)

    # -- white-box gradient interface -------------------------------------------
    def zero_grad(self) -> None:
        self.grad = np.zeros_like(self.theta)

    def accumulate_grad(self, grad_prompted: np.ndarray) -> None:
        """Accumulate d(loss)/d(theta) given d(loss)/d(prompted images)."""
        grad_prompted = np.asarray(grad_prompted, dtype=np.float64)
        if grad_prompted.ndim != 4:
            raise ValueError("grad_prompted must be an NCHW batch gradient")
        self.grad += grad_prompted.sum(axis=0) * self._mask

    def apply_gradient_step(self, learning_rate: float) -> None:
        self.theta -= learning_rate * self.grad
        self.theta *= self._mask

    # -- black-box flat-vector interface ------------------------------------------
    def get_flat(self) -> np.ndarray:
        """The trainable border entries as a flat vector."""
        return self.theta[self._mask > 0].copy()

    def set_flat(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        expected = self.num_parameters
        if values.size != expected:
            raise ValueError(
                f"expected {expected} prompt parameters, got {values.size}"
            )
        theta = np.zeros_like(self.theta)
        theta[self._mask > 0] = values
        self.theta = theta

    def copy(self) -> "VisualPrompt":
        clone = VisualPrompt(
            self.source_size, self.inner_size, self.channels, init_scale=0.0
        )
        clone.theta = self.theta.copy()
        return clone
