"""The prompted model ``f_T = O ∘ f_S ∘ V`` produced by visual prompting."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.base import ImageDataset
from repro.models.classifier import ImageClassifier
from repro.nn.stacked import predict_proba_many
from repro.prompting.output_mapping import LabelMapping
from repro.prompting.prompt import VisualPrompt


class PromptedClassifier:
    """A frozen source classifier adapted to a target task by a visual prompt.

    This is the object BPROM builds for every shadow model and for the
    suspicious model: its :meth:`predict_source_proba` output (source-class
    confidence vectors on query samples) is the meta-feature, and its
    :meth:`evaluate` accuracy on the target task is the class-subspace
    inconsistency signal.
    """

    def __init__(
        self,
        source_classifier: ImageClassifier,
        prompt: VisualPrompt,
        mapping: LabelMapping,
        name: str = "prompted",
    ) -> None:
        self.source_classifier = source_classifier
        self.prompt = prompt
        self.mapping = mapping
        self.name = name

    def predict_source_proba(self, target_images: np.ndarray) -> np.ndarray:
        """Source-class confidence vectors for target-domain inputs (black-box view)."""
        prompted = self.prompt.apply(target_images)
        return self.source_classifier.predict_proba(prompted)

    def predict_target_proba(self, target_images: np.ndarray) -> np.ndarray:
        """Target-class scores after output mapping."""
        return self.mapping.map_probabilities(self.predict_source_proba(target_images))

    def predict(self, target_images: np.ndarray) -> np.ndarray:
        """Hard target-class predictions."""
        return np.argmax(self.predict_target_proba(target_images), axis=1)

    def evaluate(self, target_dataset: ImageDataset) -> float:
        """Prompted-model accuracy on the target task (low accuracy => likely backdoor)."""
        if len(target_dataset) == 0:
            return 0.0
        predictions = self.predict(target_dataset.images)
        return float(np.mean(predictions == target_dataset.labels))

    def query_feature_vector(self, query_images: np.ndarray) -> np.ndarray:
        """Concatenated confidence vectors ``( f(x^1_Q) || ... || f(x^q_Q) )``."""
        return self.predict_source_proba(query_images).ravel()


def predict_source_proba_many(
    prompted_models: Sequence[PromptedClassifier], target_images: np.ndarray
) -> np.ndarray:
    """Source confidence vectors of a whole prompted pool in one stacked pass.

    Applies every model's own prompt to ``target_images`` and runs the K
    source classifiers as one model-axis computation
    (:func:`repro.nn.stacked.predict_proba_many`), returning
    ``(K, N, num_source_classes)`` probabilities identical to calling
    :meth:`PromptedClassifier.predict_source_proba` per model.  Raises
    :class:`repro.nn.stacked.UnstackableModelError` for pools the stacked
    engine cannot lift (heterogeneous architectures); callers fall back to the
    per-model loop.
    """
    prompted_images = np.stack(
        [prompted.prompt.apply(target_images) for prompted in prompted_models]
    )
    return predict_proba_many(
        [prompted.source_classifier for prompted in prompted_models],
        prompted_images,
        per_model=True,
    )
