"""White-box (gradient) prompt training, used for the defender's shadow models."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import nn
from repro.config import PromptConfig
from repro.datasets.base import ImageDataset
from repro.models.classifier import ImageClassifier
from repro.nn.parameter import Parameter
from repro.prompting.output_mapping import LabelMapping
from repro.prompting.prompt import VisualPrompt
from repro.prompting.prompted import PromptedClassifier
from repro.utils.rng import SeedLike, new_rng


def train_prompt_whitebox(
    source_classifier: ImageClassifier,
    target_train: ImageDataset,
    config: Optional[PromptConfig] = None,
    mapping_mode: str = "identity",
    rng: SeedLike = None,
    name: str = "prompted",
) -> PromptedClassifier:
    """Learn a visual prompt for a *shadow* model by backpropagation.

    The source model is frozen (its parameters receive no updates); gradients
    flow through it into the prompt only, exactly as in Bahng et al. (2022).
    Returns the prompted classifier ``f_T = O ∘ f_S ∘ V`` with the optimised
    prompt.
    """
    config = config or PromptConfig()
    rng = new_rng(rng)
    model = source_classifier.model
    model.eval()  # freeze BatchNorm statistics; VP adapts inputs, not the model
    model.freeze()

    channels = 3
    prompt = VisualPrompt(
        source_size=config.source_size,
        inner_size=config.inner_size,
        channels=channels,
        rng=rng,
    )
    mapping = LabelMapping(
        num_source_classes=source_classifier.num_classes,
        num_target_classes=target_train.num_classes,
        mode=mapping_mode,
    )
    criterion = nn.CrossEntropyLoss()

    # the flat border vector is an ordinary Parameter driven by the shared
    # nn.optim Adam — no hand-rolled moment/bias-correction state here
    flat_param = Parameter(prompt.get_flat(), name="prompt")
    optimizer = nn.Adam([flat_param], lr=config.learning_rate)
    border = prompt.border_mask > 0
    losses: List[float] = []

    for _ in range(config.epochs):
        epoch_losses = []
        for target_images, target_labels in target_train.batches(
            config.batch_size, shuffle=True, rng=rng
        ):
            source_labels = mapping.target_labels_as_source(target_labels)
            prompted = prompt.apply(target_images)
            logits = model(prompted)
            loss = criterion(logits, source_labels)
            grad_logits = criterion.backward()
            grad_input = model.backward(grad_logits)
            model.zero_grad()

            prompt.zero_grad()
            prompt.accumulate_grad(grad_input)
            optimizer.zero_grad()
            flat_param.accumulate_grad(prompt.grad[border])
            optimizer.step()
            prompt.set_flat(flat_param.data)
            epoch_losses.append(loss)
        losses.append(float(np.mean(epoch_losses)))

    if mapping_mode == "frequency":
        prompted_probs = source_classifier.predict_proba(prompt.apply(target_train.images))
        mapping.fit(prompted_probs, target_train.labels)

    model.unfreeze()
    prompted_classifier = PromptedClassifier(source_classifier, prompt, mapping, name=name)
    prompted_classifier.training_losses = losses  # type: ignore[attr-defined]
    return prompted_classifier
