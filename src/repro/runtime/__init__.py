"""Staged pipeline runtime: persistence, parallelism and batch serving.

The runtime layer turns the BPROM pipeline into a production-shaped system:

* :class:`~repro.runtime.store.ArtifactStore` — a content-addressed,
  disk-backed cache for trained models, prompts and fitted detectors, keyed
  on profile/seed/config hashes so artefacts survive process restarts.
* :class:`~repro.runtime.executor.ParallelExecutor` — deterministic fan-out
  of the embarrassingly-parallel stages (shadow training, prompting,
  suspicious-model inspection) over thread or process pools.
* :class:`~repro.runtime.pipeline.StagedPipeline` — the stage graph
  (shadow -> prompt -> meta -> inspect) with per-stage caching and reports.
* :class:`~repro.runtime.sharding.ShardedArtifactStore` — one cache federated
  across several store roots: deterministic home-shard placement, read-through
  lookups across every shard, ``rebalance()``/``gc()`` maintenance.
* :class:`~repro.runtime.service.AuditService` — the serve-many API: load a
  saved detector once, screen whole model catalogues concurrently.
* :class:`~repro.runtime.service_async.AsyncAuditService` — the streaming
  front-end: ``submit``/``as_completed``/``stream`` with bounded in-flight
  backpressure; verdicts are bit-identical to the batch path.
* :class:`~repro.runtime.registry.DetectorRegistry` — a store-backed
  catalogue of fitted detectors (BPROM and MNTD) with cross-process
  single-flight fitting (advisory lock files, stale takeover) and a
  byte-budgeted in-memory LRU.
* :class:`~repro.runtime.gateway.AuditGateway` — the multi-tenant front
  door: routes a mixed model stream to per-tenant detectors, fans out under
  one shared in-flight budget, merges the verdict streams and reports the
  whole serving picture in one ``stats()`` snapshot.
* :class:`~repro.runtime.verdict_cache.VerdictCache` — fingerprint-keyed
  memoisation of audit verdicts: a weighted-LRU memory tier over store
  persistence, TTL/refit invalidation and in-flight dedup (futures
  in-process, advisory locks across processes), amortising the query budget
  over redundant fleet traffic.
* :class:`~repro.runtime.workers.WorkerPool` — the gateway's shared tenant
  worker pool (thread / process / serial backends); process workers hydrate
  detectors from the shared store through pickle-cheap
  :class:`~repro.runtime.workers.DetectorRef` addresses — warm-loading,
  never refitting — for true multi-core fleet throughput.

See ARCHITECTURE.md at the repository root for the full design.
"""

from repro.runtime.executor import ExecutorSession, ParallelExecutor
from repro.runtime.locks import AdvisoryLock, LockTimeout
from repro.runtime.pipeline import Stage, StagedPipeline, StageReport
from repro.runtime.sharding import ShardedArtifactStore
from repro.runtime.store import (
    Artifact,
    ArtifactStore,
    canonical_key,
    dataset_fingerprint,
    key_hash,
)

__all__ = [
    "AdvisoryLock",
    "Artifact",
    "ArtifactStore",
    "AsyncAuditService",
    "AuditGateway",
    "AuditJob",
    "AuditService",
    "AuditVerdict",
    "DetectorRef",
    "DetectorRegistry",
    "DetectorSpec",
    "ExecutorSession",
    "GatewayVerdict",
    "LockTimeout",
    "RegistryEntry",
    "ParallelExecutor",
    "ShardedArtifactStore",
    "Stage",
    "StagedPipeline",
    "StageReport",
    "TenantProvisioner",
    "VerdictCache",
    "WorkerPool",
    "canonical_key",
    "dataset_fingerprint",
    "detector_digest",
    "key_hash",
    "model_fingerprint",
    "verdict_cache_key",
]

#: service classes import the detector, which imports this package's
#: submodules; resolving them lazily keeps the import graph acyclic
_LAZY = {
    "AuditService": "repro.runtime.service",
    "AuditVerdict": "repro.runtime.service",
    "AsyncAuditService": "repro.runtime.service_async",
    "AuditJob": "repro.runtime.service_async",
    "DetectorRegistry": "repro.runtime.registry",
    "DetectorSpec": "repro.runtime.registry",
    "RegistryEntry": "repro.runtime.registry",
    "AuditGateway": "repro.runtime.gateway",
    "GatewayVerdict": "repro.runtime.gateway",
    "TenantProvisioner": "repro.runtime.gateway",
    "DetectorRef": "repro.runtime.workers",
    "WorkerPool": "repro.runtime.workers",
    "VerdictCache": "repro.runtime.verdict_cache",
    "model_fingerprint": "repro.runtime.verdict_cache",
    "verdict_cache_key": "repro.runtime.verdict_cache",
    "detector_digest": "repro.runtime.verdict_cache",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
