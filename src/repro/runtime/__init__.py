"""Staged pipeline runtime: persistence, parallelism and batch serving.

The runtime layer turns the BPROM pipeline into a production-shaped system:

* :class:`~repro.runtime.store.ArtifactStore` — a content-addressed,
  disk-backed cache for trained models, prompts and fitted detectors, keyed
  on profile/seed/config hashes so artefacts survive process restarts.
* :class:`~repro.runtime.executor.ParallelExecutor` — deterministic fan-out
  of the embarrassingly-parallel stages (shadow training, prompting,
  suspicious-model inspection) over thread or process pools.
* :class:`~repro.runtime.pipeline.StagedPipeline` — the stage graph
  (shadow -> prompt -> meta -> inspect) with per-stage caching and reports.
* :class:`~repro.runtime.service.AuditService` — the serve-many API: load a
  saved detector once, screen whole model catalogues concurrently.

See ARCHITECTURE.md at the repository root for the full design.
"""

from repro.runtime.executor import ParallelExecutor
from repro.runtime.pipeline import Stage, StagedPipeline, StageReport
from repro.runtime.store import (
    Artifact,
    ArtifactStore,
    canonical_key,
    dataset_fingerprint,
    key_hash,
)

__all__ = [
    "Artifact",
    "ArtifactStore",
    "AuditService",
    "AuditVerdict",
    "ParallelExecutor",
    "Stage",
    "StagedPipeline",
    "StageReport",
    "canonical_key",
    "dataset_fingerprint",
    "key_hash",
]


def __getattr__(name: str):
    # AuditService imports the detector, which imports this package's
    # submodules; resolving it lazily keeps the import graph acyclic.
    if name in ("AuditService", "AuditVerdict"):
        from repro.runtime import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
