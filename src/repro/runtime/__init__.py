"""Staged pipeline runtime: persistence, parallelism and batch serving.

The runtime layer turns the BPROM pipeline into a production-shaped system:

* :class:`~repro.runtime.store.ArtifactStore` — a content-addressed,
  disk-backed cache for trained models, prompts and fitted detectors, keyed
  on profile/seed/config hashes so artefacts survive process restarts.
* :class:`~repro.runtime.executor.ParallelExecutor` — deterministic fan-out
  of the embarrassingly-parallel stages (shadow training, prompting,
  suspicious-model inspection) over thread or process pools.
* :class:`~repro.runtime.pipeline.StagedPipeline` — the stage graph
  (shadow -> prompt -> meta -> inspect) with per-stage caching and reports.
* :class:`~repro.runtime.sharding.ShardedArtifactStore` — one cache federated
  across several store roots: deterministic home-shard placement, read-through
  lookups across every shard, ``rebalance()``/``gc()`` maintenance.
* :class:`~repro.runtime.service.AuditService` — the serve-many API: load a
  saved detector once, screen whole model catalogues concurrently.
* :class:`~repro.runtime.service_async.AsyncAuditService` — the streaming
  front-end: ``submit``/``as_completed``/``stream`` with bounded in-flight
  backpressure; verdicts are bit-identical to the batch path.

See ARCHITECTURE.md at the repository root for the full design.
"""

from repro.runtime.executor import ExecutorSession, ParallelExecutor
from repro.runtime.pipeline import Stage, StagedPipeline, StageReport
from repro.runtime.sharding import ShardedArtifactStore
from repro.runtime.store import (
    Artifact,
    ArtifactStore,
    canonical_key,
    dataset_fingerprint,
    key_hash,
)

__all__ = [
    "Artifact",
    "ArtifactStore",
    "AsyncAuditService",
    "AuditJob",
    "AuditService",
    "AuditVerdict",
    "ExecutorSession",
    "ParallelExecutor",
    "ShardedArtifactStore",
    "Stage",
    "StagedPipeline",
    "StageReport",
    "canonical_key",
    "dataset_fingerprint",
    "key_hash",
]

#: service classes import the detector, which imports this package's
#: submodules; resolving them lazily keeps the import graph acyclic
_LAZY = {
    "AuditService": "repro.runtime.service",
    "AuditVerdict": "repro.runtime.service",
    "AsyncAuditService": "repro.runtime.service_async",
    "AuditJob": "repro.runtime.service_async",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
