"""Deterministic parallel execution for the embarrassingly-parallel stages.

Shadow-model training, suspicious-model training and black-box prompting are
independent per model: every task derives its own seed from the experiment
seed and a stable task identity (see :func:`repro.utils.rng.derive_seed`), so
the results are identical whether tasks run sequentially, on a thread pool or
on a process pool — only wall-clock time changes.  Results are always returned
in submission order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.config import RuntimeConfig

T = TypeVar("T")
R = TypeVar("R")


class ParallelExecutor:
    """Ordered map over independent tasks with a configurable worker pool.

    ``backend="thread"`` shares memory and relies on numpy releasing the GIL
    inside BLAS kernels; ``backend="process"`` achieves true parallelism at
    the cost of pickling tasks and results (every task function must be a
    module-level callable with picklable arguments).  ``workers=1`` or
    ``backend="serial"`` degrade to a plain loop, which is also the fallback
    for single-item workloads.
    """

    def __init__(self, workers: int = 1, backend: str = "thread") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown executor backend {backend!r}")
        self.workers = int(workers)
        self.backend = backend

    @classmethod
    def from_config(cls, runtime: Optional[RuntimeConfig]) -> "ParallelExecutor":
        if runtime is None:
            return cls(1, "serial")
        return cls(runtime.workers, runtime.backend)

    @property
    def parallel(self) -> bool:
        return self.workers > 1 and self.backend != "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, preserving input order in the output."""
        items = list(items)
        if not self.parallel or len(items) <= 1:
            return [fn(item) for item in items]
        pool_cls = ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=min(self.workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(workers={self.workers}, backend={self.backend!r})"
