"""Deterministic parallel execution for the embarrassingly-parallel stages.

Shadow-model training, suspicious-model training and black-box prompting are
independent per model: every task derives its own seed from the experiment
seed and a stable task identity (see :func:`repro.utils.rng.derive_seed`), so
the results are identical whether tasks run sequentially, on a thread pool or
on a process pool — only wall-clock time changes.  Results are always returned
in submission order.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.config import RuntimeConfig

T = TypeVar("T")
R = TypeVar("R")


class ExecutorSession:
    """Incremental-submission view of a :class:`ParallelExecutor`.

    ``map`` is the right shape for fixed batches; streaming consumers
    (:class:`~repro.runtime.service_async.AsyncAuditService`) instead need to
    feed tasks in as results drain out.  A session wraps a long-lived pool and
    exposes ``submit``, returning :class:`concurrent.futures.Future`s.  With
    no pool (serial backend or ``workers=1``) the task runs synchronously at
    submission time and the returned future is already resolved, so callers
    degrade gracefully to a plain ordered loop.
    """

    def __init__(self, pool=None) -> None:
        self._pool = pool

    @property
    def parallel(self) -> bool:
        """Whether submitted tasks actually run concurrently."""
        return self._pool is not None

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        if self._pool is not None:
            return self._pool.submit(fn, *args)
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except Exception as exc:  # surfaced via future.result(), like a pool;
            # KeyboardInterrupt/SystemExit propagate — a real pool's caller
            # would see those too, never a worker.  The broad catch is the
            # contract here (any task exception must reach the future), which
            # repro-lint L302 recognises by the set_exception call below
            future.set_exception(exc)
        return future


class ParallelExecutor:
    """Ordered map over independent tasks with a configurable worker pool.

    ``backend="thread"`` shares memory and relies on numpy releasing the GIL
    inside BLAS kernels; ``backend="process"`` achieves true parallelism at
    the cost of pickling tasks and results (every task function must be a
    module-level callable with picklable arguments).  ``workers=1`` or
    ``backend="serial"`` degrade to a plain loop, which is also the fallback
    for single-item workloads.
    """

    def __init__(self, workers: int = 1, backend: str = "thread") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown executor backend {backend!r}")
        self.workers = int(workers)
        self.backend = backend

    @classmethod
    def from_config(cls, runtime: Optional[RuntimeConfig]) -> "ParallelExecutor":
        if runtime is None:
            return cls(1, "serial")
        return cls(runtime.workers, runtime.backend)

    @property
    def parallel(self) -> bool:
        return self.workers > 1 and self.backend != "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, preserving input order in the output."""
        items = list(items)
        if not self.parallel or len(items) <= 1:
            return [fn(item) for item in items]
        pool_cls = ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=min(self.workers, len(items))) as pool:
            return list(pool.map(fn, items))

    @contextmanager
    def session(self):
        """Open an :class:`ExecutorSession` for incremental task submission.

        The pool stays alive for the whole ``with`` block and is drained on
        exit; a non-parallel executor yields a poolless session that runs
        tasks inline.
        """
        if not self.parallel:
            yield ExecutorSession(None)
            return
        pool_cls = ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        pool = pool_cls(max_workers=self.workers)
        try:
            yield ExecutorSession(pool)
        finally:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(workers={self.workers}, backend={self.backend!r})"
