"""Multi-tenant audit gateway: one front door for a fleet of detectors.

The serve path below this module scales one detector (batched queries,
streaming verdicts, stacked pools); the gateway scales *tenants*.  An MLaaS
auditor receives heterogeneous suspicious models — different architecture
families, datasets, requested defenses — and the gateway:

* **routes** each ``(key, model, metadata)`` submission to its tenant's
  detector, matching on requested defense, architecture family
  (:func:`repro.models.registry.architecture_family`) and dataset
  fingerprint;
* **loads or fits** each tenant's detector through the
  :class:`~repro.runtime.registry.DetectorRegistry` — at most one fit
  fleet-wide, zero training on a warm store;
* **fans out** each tenant group onto its own
  :class:`~repro.runtime.service_async.AsyncAuditService` (BPROM) or an
  equivalent thin MNTD scoring service, under one *shared* ``max_in_flight``
  budget, so a burst on one tenant cannot starve the process of memory;
* **merges** the per-tenant verdict streams into a single completion-ordered
  stream of :class:`GatewayVerdict`; verdicts are bit-identical to running
  each tenant's :class:`~repro.runtime.service.AuditService` by hand (the
  per-key seed derivation is shared);
* **reports** the whole serving picture in one :meth:`stats` snapshot:
  per-tenant verdict counts and query budgets, registry hit/miss/evict
  counters and the (sharded) store statistics.
"""

from __future__ import annotations

import threading
import warnings
from collections import deque
from contextlib import nullcontext
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple, Union

from repro.config import DEFAULT_RUNTIME, RuntimeConfig
from repro.datasets.base import ImageDataset
from repro.defenses.model_level import MNTDDefense
from repro.models.classifier import ImageClassifier
from repro.models.registry import architecture_family
from repro.obs.clock import now
from repro.obs.metrics import QUERY_BUCKETS, MetricsRegistry, merge_snapshots
from repro.obs.trace import TraceContext, get_tracer, new_id, rebased
from repro.prompting.blackbox import QueryFunction
from repro.runtime.executor import ExecutorSession, ParallelExecutor
from repro.runtime.registry import DetectorRegistry, DetectorSpec, RegistryEntry
from repro.runtime.service import AuditVerdict
from repro.runtime.service_async import (
    AsyncAuditService,
    AuditJob,
    SessionLifecycleMixin,
    _cached_audit_task,
)
from repro.runtime.sharding import ShardedArtifactStore
from repro.runtime.store import dataset_fingerprint
from repro.runtime.verdict_cache import VerdictCache
from repro.runtime.workers import (
    DetectorRef,
    WorkerPool,
    _mntd_audit_task,
    _ref_mntd_audit_task,
    _traced_task,
)


@dataclass
class GatewayVerdict(AuditVerdict):
    """An :class:`AuditVerdict` annotated with the tenant that produced it."""

    tenant: str = ""


class _MNTDAuditService(SessionLifecycleMixin):
    """Thin MNTD sibling of :class:`AsyncAuditService`: submit/reap/close.

    MNTD scoring is one query batch plus a forest vote — cheap enough that it
    needs no backpressure of its own; the gateway's shared budget still
    applies to it like any other tenant.  The session lifecycle is the shared
    :class:`~repro.runtime.service_async.SessionLifecycleMixin`.
    """

    def __init__(
        self,
        defense: MNTDDefense,
        clean_data: ImageDataset,
        runtime: Optional[RuntimeConfig] = None,
        detector_ref: Optional[DetectorRef] = None,
        session: Optional[ExecutorSession] = None,
    ) -> None:
        self.detector = defense
        self.clean_data = clean_data
        self.detector_ref = detector_ref
        self.executor = ParallelExecutor.from_config(runtime)
        self._init_session(shared=session)

    def _task(self, key: str, model: ImageClassifier) -> tuple:
        """The ``(fn, *args)`` tuple one MNTD scoring submits (ref shape for
        process backends, detector shape otherwise)."""
        if self.detector_ref is not None:
            return (_ref_mntd_audit_task, self.detector_ref, self.clean_data, key, model)
        return (_mntd_audit_task, self.detector, self.clean_data, key, model)

    def submit(
        self,
        key: str,
        model: ImageClassifier,
        query_function: Optional[QueryFunction] = None,
        verdict_cache: Optional[VerdictCache] = None,
        cache_key: Optional[Dict[str, Any]] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> AuditJob:
        if query_function is not None:
            # MNTD queries the model object directly; there is no seam for a
            # caller-supplied query wrapper, and silently bypassing one would
            # skip whatever rate limiting / accounting it implements
            warnings.warn(
                f"MNTD tenant ignores the query_function supplied for {key!r}: "
                "MNTD scores models through their own predict_proba, not a "
                "black-box query interface"
            )
        session = self._ensure_session()
        task = self._task(key, model)
        if verdict_cache is not None and cache_key is not None:
            # wrap-only mode (the gateway owns lookup/dedup): the task runs
            # through the cache's store tier for cross-process single flight
            task = (_cached_audit_task, verdict_cache, cache_key, key, *task)
        if trace_ctx is not None:
            task = (_traced_task, trace_ctx, *task)
        future = session.submit(*task)
        return AuditJob(key=key, future=future)

    def reap(self, job: AuditJob) -> None:
        """No retained queue to drop from — jobs live only in their futures."""


@dataclass
class Tenant:
    """One registered tenant: its spec, fitted detector and serving front-end."""

    tenant_id: str
    spec: DetectorSpec
    entry: RegistryEntry
    service: Union[AsyncAuditService, _MNTDAuditService]
    #: dataset fingerprints this tenant answers for (routing coordinate)
    fingerprints: Tuple[str, ...]
    accepted: int = 0
    rejected: int = 0
    #: black-box queries actually spent (cold inspections only — warm
    #: servings cost nothing, which is what amortisation measures)
    query_count: int = 0
    query_calls: int = 0
    #: verdicts served from the cache's memory/store tiers
    cache_hits: int = 0
    #: verdicts that shared a concurrent submission's inspection
    dedup_hits: int = 0
    #: whether this tenant was auto-provisioned on first touch rather than
    #: registered explicitly
    provisioned: bool = False

    @property
    def defense(self) -> str:
        return self.spec.defense

    @property
    def family(self) -> str:
        return self.spec.family


@dataclass
class TenantProvisioner:
    """Datasets plus a spec template for standing tenants up on first touch.

    Without a provisioner, an unroutable submission raises ``KeyError``.
    With one, the gateway derives a :class:`DetectorSpec` from the
    submission's metadata (architecture, and defense when given; everything
    else from ``template``) and registers the tenant on the spot — the fit
    goes through :meth:`DetectorRegistry.get_or_fit`, so N racing gateways
    (threads or whole processes over one store) provisioning the same spec
    still perform exactly one fit under the registry's single-flight lock.
    """

    #: the suspicious task's reserved clean data every provisioned tenant
    #: answers for (BPROM's D_S / MNTD's shadow-pool data)
    reserved_clean: ImageDataset
    #: BPROM target-domain datasets; a bprom template requires both
    target_train: Optional[ImageDataset] = None
    target_test: Optional[ImageDataset] = None
    #: defaults for every spec field the metadata does not override
    template: DetectorSpec = field(default_factory=DetectorSpec)

    def spec_for(self, metadata: Dict[str, Any]) -> DetectorSpec:
        """The detector spec a submission's metadata asks for."""
        overrides: Dict[str, Any] = {}
        if metadata.get("defense"):
            overrides["defense"] = metadata["defense"]
        if metadata.get("architecture"):
            overrides["architecture"] = metadata["architecture"]
        return self.template.with_overrides(**overrides) if overrides else self.template

    @staticmethod
    def tenant_id_for(spec: DetectorSpec) -> str:
        """Deterministic id, so racing gateways converge on one tenant."""
        return f"auto-{spec.defense}-{spec.architecture}"


#: one submission: ``(key, model)`` or ``(key, model, metadata)``
Submission = Union[
    Tuple[str, ImageClassifier],
    Tuple[str, ImageClassifier, Optional[Dict[str, Any]]],
]


class AuditGateway:
    """Front door routing a mixed model stream onto a fleet of detectors.

    Typical usage::

        runtime = RuntimeConfig(workers=4, cache_dir="cache")
        with AuditGateway(runtime=runtime) as gateway:
            gateway.register_tenant("vision-cnn", DetectorSpec(architecture="resnet18"),
                                    reserved_a, target_train, target_test)
            gateway.register_tenant("tabular-mlp", DetectorSpec(architecture="mlp"),
                                    reserved_b, target_train, target_test)
            for verdict in gateway.stream(submissions):
                quarantine(verdict) if verdict.is_backdoored else release(verdict)
            print(gateway.stats())
    """

    def __init__(
        self,
        registry: Optional[DetectorRegistry] = None,
        runtime: Optional[RuntimeConfig] = None,
        max_in_flight: Optional[int] = None,
        verdict_cache: Optional[VerdictCache] = None,
        provisioner: Optional[TenantProvisioner] = None,
        worker_pool: Optional[WorkerPool] = None,
    ) -> None:
        if runtime is None:
            runtime = registry.runtime if registry is not None else DEFAULT_RUNTIME
        self.runtime = runtime
        self.registry = registry if registry is not None else DetectorRegistry(runtime=runtime)
        if worker_pool is None:
            backend = runtime.gateway_backend
            if backend == "process" and not self.registry.store.enabled:
                # process workers hydrate detectors from the shared store by
                # registry key; without a store they could only refit, which
                # the warm-loading contract forbids
                warnings.warn(
                    "gateway_backend='process' requires a persistent artifact "
                    "store for worker-side detector hydration; falling back to "
                    "the thread backend"
                )
                backend = "thread"
            worker_pool = WorkerPool(
                workers=runtime.gateway_workers or runtime.workers, backend=backend
            )
        #: the shared tenant worker pool every service submits through
        self.worker_pool = worker_pool
        #: auto-provisioning policy; ``None`` keeps unroutable submissions an error
        self.provisioner = provisioner
        self._provision_lock = threading.Lock()
        if verdict_cache is None and runtime.verdict_cache:
            # share the registry's (possibly sharded) store so cached verdicts
            # live beside the detectors that produced them
            verdict_cache = VerdictCache(store=self.registry.store, runtime=runtime)
        #: fingerprint-keyed verdict memoisation; ``None`` disables caching
        self.verdict_cache = verdict_cache
        if max_in_flight is None:
            max_in_flight = runtime.gateway_max_in_flight
        if max_in_flight is None:
            max_in_flight = 2 * runtime.workers
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        #: shared in-flight budget across all tenants
        self.max_in_flight = int(max_in_flight)
        self._slots = threading.Semaphore(self.max_in_flight)
        self._tenants: Dict[str, Tenant] = {}
        #: submitted-but-unharvested jobs: future -> (tenant_id, job)
        self._pending: Dict[Future, Tuple[str, AuditJob]] = {}
        #: per-submission telemetry coordinates:
        #: future -> ((trace_id, audit_span_id) | None, submit timestamp)
        self._job_meta: Dict[Future, Tuple[Optional[Tuple[str, str]], float]] = {}
        self._lock = threading.Lock()
        #: the gateway's own mergeable metrics (per-tenant latency and
        #: query-spend histograms); folded with every component registry in
        #: the ``stats()["telemetry"]`` sub-dashboard
        self.metrics = MetricsRegistry()
        self._telemetry = bool(runtime.telemetry)
        if self._telemetry:
            get_tracer().enable()

    # -- tenant lifecycle ------------------------------------------------------
    def register_tenant(
        self,
        tenant_id: str,
        spec: DetectorSpec,
        reserved_clean: ImageDataset,
        target_train: Optional[ImageDataset] = None,
        target_test: Optional[ImageDataset] = None,
    ) -> Tenant:
        """Stand up one tenant: load-or-fit its detector, open its service.

        The detector comes through the registry, so registering the same
        tenant in a second gateway process performs zero training on a warm
        store.  The tenant answers for models whose metadata carries the
        fingerprint of ``reserved_clean`` (the suspicious task's data) —
        and, for BPROM, of the target datasets too.
        """
        if tenant_id in self._tenants:
            raise ValueError(f"tenant {tenant_id!r} is already registered")
        entry = self.registry.get_or_fit(spec, reserved_clean, target_train, target_test)
        fingerprints = [dataset_fingerprint(reserved_clean)]
        for dataset in (target_train, target_test):
            if dataset is not None:
                fingerprints.append(dataset_fingerprint(dataset))
        ref = None
        if self.worker_pool.backend == "process":
            # tasks ship this store address instead of the detector object;
            # workers hydrate by registry key (register_tenant just ensured
            # the artifact exists) under a serial single-worker runtime so
            # hydration never opens a nested pool
            ref = DetectorRef(
                key_hash=entry.key_hash,
                key=entry.key,
                spec=spec,
                runtime=self.runtime.with_overrides(workers=1, backend="serial"),
            )
        session = self.worker_pool.session()
        if spec.defense == "mntd":
            service: Union[AsyncAuditService, _MNTDAuditService] = _MNTDAuditService(
                entry.detector,
                reserved_clean,
                runtime=self.runtime,
                detector_ref=ref,
                session=session,
            )
        else:
            service = AsyncAuditService(
                entry.detector,
                runtime=self.runtime,
                max_in_flight=self.max_in_flight,
                detector_ref=ref,
                session=session,
            )
        tenant = Tenant(
            tenant_id=tenant_id,
            spec=spec,
            entry=entry,
            service=service,
            fingerprints=tuple(fingerprints),
        )
        with self._lock:
            # re-checked under the lock: the early check above is advisory,
            # and two concurrent registrations of one id must not silently
            # overwrite (leaking the loser's open service)
            if tenant_id in self._tenants:
                conflict = True
            else:
                conflict = False
                self._tenants[tenant_id] = tenant
        if conflict:
            service.close()
            raise ValueError(f"tenant {tenant_id!r} is already registered")
        return tenant

    @property
    def tenants(self) -> Dict[str, Tenant]:
        with self._lock:
            return dict(self._tenants)

    # -- routing ---------------------------------------------------------------
    def route(self, metadata: Dict[str, Any]) -> Tenant:
        """The tenant a submission's metadata selects.

        Matching coordinates (all optional, every given one must match):
        ``tenant`` (explicit pin), ``defense`` (default ``"bprom"``),
        ``architecture`` (matched by family) or ``family`` directly, and
        ``dataset_fingerprint``.  Exactly one tenant must survive the filter;
        zero raises ``KeyError``, several raise ``ValueError`` (the submitter
        must provide a finer coordinate).
        """
        with self._lock:
            tenants = list(self._tenants.values())
        if not tenants:
            raise KeyError("no tenants registered")
        if "tenant" in metadata:
            for tenant in tenants:
                if tenant.tenant_id == metadata["tenant"]:
                    return tenant
            raise KeyError(f"unknown tenant {metadata['tenant']!r}")
        defense = metadata.get("defense", "bprom")
        family = metadata.get("family")
        if "architecture" in metadata and metadata["architecture"] is not None:
            family = architecture_family(metadata["architecture"])
        fingerprint = metadata.get("dataset_fingerprint")
        candidates = [
            tenant
            for tenant in tenants
            if tenant.defense == defense
            and (family is None or tenant.family == family)
            and (fingerprint is None or fingerprint in tenant.fingerprints)
        ]
        if len(candidates) == 1:
            return candidates[0]
        description = (
            f"defense={defense!r} family={family!r} dataset_fingerprint={fingerprint!r}"
        )
        if not candidates:
            raise KeyError(
                f"no tenant matches {description}; registered: {sorted(t.tenant_id for t in tenants)}"
            )
        raise ValueError(
            f"{description} is ambiguous across tenants "
            f"{sorted(t.tenant_id for t in candidates)}; add a finer routing "
            f"coordinate (e.g. 'tenant' or 'dataset_fingerprint')"
        )

    # -- auto-provisioning -----------------------------------------------------
    def _route_or_provision(self, metadata: Dict[str, Any]) -> Tenant:
        """Route a submission, standing a tenant up on first touch if allowed.

        Only a *zero-match* miss provisions; an explicit ``tenant`` pin that
        names an unknown tenant stays an error (the submitter asked for a
        specific tenant, not for a new one), and an ambiguous match still
        raises ``ValueError`` — provisioning never resolves ambiguity.
        """
        try:
            return self.route(metadata)
        except KeyError:
            if self.provisioner is None or "tenant" in metadata:
                raise
        return self._provision(metadata)

    def _provision(self, metadata: Dict[str, Any]) -> Tenant:
        spec = self.provisioner.spec_for(metadata)
        tenant_id = self.provisioner.tenant_id_for(spec)
        # one provisioning at a time in this gateway; racing *gateways* are
        # serialised further down by the registry's advisory fit lock (they
        # each register their own tenant object, but fit at most once)
        with self._provision_lock:
            with self._lock:
                existing = self._tenants.get(tenant_id)
            if existing is not None:
                return existing
            with get_tracer().span("gateway.provision", tenant=tenant_id):
                tenant = self.register_tenant(
                    tenant_id,
                    spec,
                    self.provisioner.reserved_clean,
                    self.provisioner.target_train,
                    self.provisioner.target_test,
                )
        tenant.provisioned = True
        return tenant

    # -- submission ------------------------------------------------------------
    def _default_metadata(self, model: ImageClassifier) -> Dict[str, Any]:
        return {"architecture": getattr(model, "architecture", None)}

    def _begin_trace(self) -> Tuple[Optional[Tuple[str, str]], float]:
        """A submission's telemetry coordinates: trace ids (tracing only) + t0.

        The audit span's id is minted *now* so everything the submission
        does — routing, provisioning, the pool task — parents under it, but
        the span itself is recorded at harvest, when its end is known.  The
        timestamp is taken either way: latency histograms are cheap counters
        and stay on regardless of the tracer switch.
        """
        if get_tracer().enabled:
            return (new_id(), new_id()), now()
        return None, now()

    def _trace_scope(self, ids: Optional[Tuple[str, str]]):
        """Ambient-parent scope for a submission's gateway-side spans."""
        return get_tracer().context(*ids) if ids is not None else nullcontext()

    def _submit_with_slot(
        self,
        key: str,
        model: ImageClassifier,
        metadata: Optional[Dict[str, Any]],
        query_function: Optional[QueryFunction],
    ) -> AuditJob:
        """Submit one job; the caller has already acquired a budget slot."""
        ids, started = self._begin_trace()
        with self._trace_scope(ids):
            with get_tracer().span("gateway.route"):
                tenant = self._route_or_provision(
                    metadata if metadata is not None else self._default_metadata(model)
                )
            job = tenant.service.submit(
                key,
                model,
                query_function=query_function,
                trace_ctx=TraceContext(*ids) if ids is not None else None,
            )
        with self._lock:
            self._pending[job.future] = (tenant.tenant_id, job)
            self._job_meta[job.future] = (ids, started)
        # released when the job finishes *computing* (not when it is
        # harvested), so the budget caps concurrent work, not retained results
        job.future.add_done_callback(lambda _future: self._slots.release())
        return job

    # -- cached submission -----------------------------------------------------
    def _register_cached(
        self,
        tenant: Tenant,
        key: str,
        future: Future,
        meta: Optional[Tuple[Optional[Tuple[str, str]], float]] = None,
    ) -> AuditJob:
        """Book a slot-free job (cache hit / dedup follower) as pending."""
        job = AuditJob(key=key, future=future)
        with self._lock:
            self._pending[future] = (tenant.tenant_id, job)
            if meta is not None:
                self._job_meta[future] = meta
        return job

    @staticmethod
    def _completed(verdict: AuditVerdict) -> Future:
        future: Future = Future()
        future.set_result(verdict)
        return future

    def _chained(self, shared: Future, key: str) -> Future:
        """A follower's future: the leader's verdict re-served for ``key``."""
        future: Future = Future()

        def _chain(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(self.verdict_cache.served(done.result(), key, "dedup"))

        shared.add_done_callback(_chain)
        return future

    def _finish_claim(self, token, future: Future) -> None:
        """Resolve a leader's shared in-flight future from its job future."""
        exc = future.exception()
        if exc is not None:
            self.verdict_cache.fail(token, exc)
        else:
            self.verdict_cache.complete(token, future.result())

    def _submit_cached(
        self,
        key: str,
        model: ImageClassifier,
        metadata: Optional[Dict[str, Any]],
        query_function: Optional[QueryFunction],
        blocking: bool,
    ) -> Optional[AuditJob]:
        """Submit through the verdict cache; ``None`` when non-blocking and
        no budget slot is free (only cold leaders need a slot — warm hits and
        dedup followers short-circuit the ``max_in_flight`` semaphore).
        """
        cache = self.verdict_cache
        ids, started = self._begin_trace()
        meta = (ids, started)
        with self._trace_scope(ids):
            with get_tracer().span("gateway.route"):
                tenant = self._route_or_provision(
                    metadata if metadata is not None else self._default_metadata(model)
                )
            cache_key = cache.key_for(model, tenant.entry.key_hash, tenant.spec.precision)
            with get_tracer().span("cache.lookup") as span:
                verdict = cache.lookup(cache_key, key)
                span.set(hit=verdict is not None)
            if verdict is not None:
                return self._register_cached(tenant, key, self._completed(verdict), meta)
            shared = cache.follow(cache_key)
            if shared is not None:
                return self._register_cached(tenant, key, self._chained(shared, key), meta)
            if not self._slots.acquire(blocking=blocking):
                # declined: the entry is re-queued and re-submitted later with
                # fresh coordinates; this attempt's route/lookup spans stay in
                # the trace as roots without an audit span (the work really
                # did run twice)
                return None
            claim = cache.begin(cache_key, key)
            if claim[0] == "verdict":
                self._slots.release()
                return self._register_cached(tenant, key, self._completed(claim[1]), meta)
            if claim[0] == "follower":
                self._slots.release()
                return self._register_cached(tenant, key, self._chained(claim[1], key), meta)
            token = claim[1]
            try:
                job = tenant.service.submit(
                    key,
                    model,
                    query_function=query_function,
                    verdict_cache=cache,
                    cache_key=cache_key,
                    trace_ctx=TraceContext(*ids) if ids is not None else None,
                )
            except BaseException as exc:
                self._slots.release()
                cache.fail(token, exc)
                raise
        with self._lock:
            self._pending[job.future] = (tenant.tenant_id, job)
            self._job_meta[job.future] = meta
        job.future.add_done_callback(lambda _future: self._slots.release())
        job.future.add_done_callback(lambda future: self._finish_claim(token, future))
        return job

    def submit(
        self,
        key: str,
        model: ImageClassifier,
        metadata: Optional[Dict[str, Any]] = None,
        query_function: Optional[QueryFunction] = None,
    ) -> AuditJob:
        """Route one submission to its tenant; blocks at the shared budget.

        ``metadata`` defaults to routing by the model's recorded
        architecture.  The returned job resolves to a plain
        :class:`~repro.runtime.service.AuditVerdict`; harvest through
        :meth:`as_completed`/:meth:`stream` to get tenant-annotated
        :class:`GatewayVerdict` rows and per-tenant accounting.

        With a :class:`~repro.runtime.verdict_cache.VerdictCache` configured,
        a warm submission returns an already-completed job without blocking
        at the budget, and concurrent submissions of one model fingerprint
        share a single inspection.
        """
        if self.verdict_cache is not None and self.verdict_cache.enabled:
            job = self._submit_cached(key, model, metadata, query_function, blocking=True)
            assert job is not None  # blocking acquire cannot decline
            return job
        self._slots.acquire()
        try:
            return self._submit_with_slot(key, model, metadata, query_function)
        except BaseException:
            self._slots.release()
            raise

    # -- harvesting ------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Submitted jobs that have not finished computing."""
        with self._lock:
            return sum(1 for future in self._pending if not future.done())

    def _harvest(self, future: Future) -> Optional[GatewayVerdict]:
        with self._lock:
            item = self._pending.pop(future, None)
            meta = self._job_meta.pop(future, None)
        if item is None:
            return None  # already harvested by a concurrent consumer
        tenant_id, job = item
        try:
            verdict = job.result()  # re-raises task exceptions
        finally:
            # reap even when the task failed: a long-lived gateway auditing
            # untrusted vendor models must not retain the bad job's handle
            # in its tenant service until close().  Verdicts of *other*
            # completed jobs stay in _pending and remain harvestable via
            # as_completed() after the consumer handles the error.
            with self._lock:
                self._tenants[tenant_id].service.reap(job)
        with self._lock:
            tenant = self._tenants[tenant_id]
            if verdict.is_backdoored:
                tenant.rejected += 1
            else:
                tenant.accepted += 1
            provenance = getattr(verdict, "cache", "cold")
            if provenance == "cold":
                # only cold inspections spend queries; a warm serving's
                # query_count describes the *original* inspection and must
                # not be re-charged (that is the amortisation)
                tenant.query_count += verdict.query_count
                tenant.query_calls += verdict.query_calls
            elif provenance == "dedup":
                tenant.dedup_hits += 1
            else:
                tenant.cache_hits += 1
        self._record_telemetry(meta, tenant_id, verdict, provenance)
        return GatewayVerdict(
            name=verdict.name,
            backdoor_score=verdict.backdoor_score,
            is_backdoored=verdict.is_backdoored,
            prompted_accuracy=verdict.prompted_accuracy,
            query_count=verdict.query_count,
            query_calls=verdict.query_calls,
            cache=provenance,
            tenant=tenant_id,
        )

    def _record_telemetry(
        self,
        meta: Optional[Tuple[Optional[Tuple[str, str]], float]],
        tenant_id: str,
        verdict: AuditVerdict,
        provenance: str,
    ) -> None:
        """Book one harvested verdict: histograms always, spans when tracing.

        The audit span is recorded complete — its start was taken at submit,
        its end is now — and the worker's shipped spans are rebased from
        task-relative offsets onto this process's clock, anchored so the
        latest one ends at harvest (the leading gap under the audit span is
        the queue wait).  A warm verdict carries no spans: its inspection
        happened in some earlier trace, which is exactly what the cache
        provenance already says.
        """
        if meta is None:
            return
        ids, started = meta
        end = now()
        self.metrics.histogram("gateway.audit_seconds", tenant=tenant_id).observe(
            end - started
        )
        self.metrics.histogram(
            "gateway.queries_per_verdict", buckets=QUERY_BUCKETS, tenant=tenant_id
        ).observe(verdict.query_count if provenance == "cold" else 0)
        shipped = getattr(verdict, "spans", None)
        if ids is not None:
            tracer = get_tracer()
            tracer.record(
                "gateway.audit",
                started,
                end,
                trace_id=ids[0],
                span_id=ids[1],
                tenant=tenant_id,
                key=verdict.name,
                cache=provenance,
                queries=verdict.query_count if provenance == "cold" else 0,
                calls=verdict.query_calls if provenance == "cold" else 0,
            )
            if provenance == "cold" and shipped:
                for span in rebased(shipped, end):
                    tracer.record(
                        span.name,
                        span.start,
                        span.end,
                        trace_id=span.trace_id,
                        span_id=span.span_id,
                        parent_id=span.parent_id,
                        **span.attrs,
                    )
        if shipped:
            verdict.spans = []  # consumed; retained verdicts stay span-free

    def as_completed(self) -> Iterator[GatewayVerdict]:
        """Merge every tenant's submitted jobs into one completion-ordered
        stream of tenant-annotated verdicts; ends when the queue drains."""
        while True:
            with self._lock:
                pending = list(self._pending)
            if not pending:
                return
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            # preserve submission order among simultaneously-done jobs so the
            # serial backend yields deterministically
            for future in [f for f in pending if f in done]:
                verdict = self._harvest(future)
                if verdict is not None:
                    yield verdict

    # -- one-shot streaming ----------------------------------------------------
    @staticmethod
    def _normalize(submission: Submission) -> Tuple[str, ImageClassifier, Optional[Dict]]:
        if len(submission) == 2:
            key, model = submission  # type: ignore[misc]
            return key, model, None
        key, model, metadata = submission  # type: ignore[misc]
        return key, model, metadata

    def stream(
        self,
        submissions: Iterable[Submission],
        query_functions: Optional[Dict[str, QueryFunction]] = None,
    ) -> Iterator[GatewayVerdict]:
        """Screen a mixed catalogue, yielding verdicts as models finish.

        ``submissions`` is an iterable of ``(key, model)`` or
        ``(key, model, metadata)``.  At most ``max_in_flight`` jobs are
        outstanding across all tenants; slots freed by finishing jobs are
        refilled before each yield, so the workers stay fed while the
        consumer processes verdicts.  Verdicts are bit-identical to auditing
        each tenant's group through its own ``AuditService`` with the same
        keys; only arrival order differs.  ``query_functions`` apply to BPROM
        tenants; an entry routed to an MNTD tenant warns and scores the model
        object directly (MNTD has no black-box query seam).
        """
        # the iterable is consumed lazily — at most one entry is pulled ahead
        # of the available budget, so a generator that materialises each
        # model on demand streams in constant memory
        iterator = iter(submissions)
        lookahead: deque = deque()  # pulled but not yet submitted (no slot)
        exhausted = False

        def pull():
            nonlocal exhausted
            if lookahead:
                return lookahead.popleft()
            if exhausted:
                return None
            try:
                return self._normalize(next(iterator))
            except StopIteration:
                exhausted = True
                return None

        def any_done() -> bool:
            with self._lock:
                return any(future.done() for future in self._pending)

        cached = self.verdict_cache is not None and self.verdict_cache.enabled

        def top_up() -> None:
            # stop early once results are waiting: on an inline (serial)
            # executor every submission completes synchronously, and draining
            # between submissions keeps time-to-first-verdict at one audit
            while not any_done():
                entry = pull()
                if entry is None:
                    return
                key, model, metadata = entry
                query_function = (
                    query_functions.get(key) if query_functions is not None else None
                )
                if cached:
                    # warm hits and dedup followers need no budget slot; only
                    # a cold leader does, and declining (no slot) re-queues
                    job = self._submit_cached(
                        key, model, metadata, query_function, blocking=False
                    )
                    if job is None:
                        lookahead.append(entry)
                        return
                    continue
                if not self._slots.acquire(blocking=False):
                    lookahead.append(entry)
                    return
                try:
                    self._submit_with_slot(key, model, metadata, query_function)
                except BaseException:
                    self._slots.release()
                    raise

        while True:
            top_up()
            with self._lock:
                pending = list(self._pending)
            if not pending:
                if lookahead or not exhausted:
                    continue
                return
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in [f for f in pending if f in done]:
                verdict = self._harvest(future)
                # refill the freed slot before yielding so the workers stay
                # fed while the consumer processes this verdict — but a
                # failing submission (e.g. an unroutable queued entry) must
                # not swallow the verdict already harvested and counted
                refill_error: Optional[BaseException] = None
                try:
                    top_up()
                except BaseException as exc:
                    refill_error = exc
                if verdict is not None:
                    yield verdict
                if refill_error is not None:
                    raise refill_error

    # -- dashboard -------------------------------------------------------------
    def _store_stats(self) -> Dict[str, Dict[str, int]]:
        store = self.registry.store
        if isinstance(store, ShardedArtifactStore):
            return store.stats()
        root = str(store.root) if store.root is not None else "<disabled>"
        return {root: {"hits": store.hits, "misses": store.misses}}

    def stats(self) -> Dict[str, Any]:
        """The serving dashboard in one snapshot.

        Per-tenant verdict counts, query budgets and amortised
        queries-per-verdict, the registry's hit/miss/evict counters, the
        (per-shard) store statistics, the verdict cache's hit/miss/dedup
        counters (when caching is on) and the gateway's own in-flight gauge.
        """

        def amortized(queries: int, verdicts: int) -> Optional[float]:
            # queries actually spent per verdict served; the cache drives
            # this below the cold-path cost as redundant traffic hits
            return (queries / verdicts) if verdicts else None

        with self._lock:
            tenants = {
                tenant.tenant_id: {
                    "defense": tenant.defense,
                    "architecture": tenant.spec.architecture,
                    "precision": tenant.spec.precision,
                    "family": tenant.family,
                    "detector_source": tenant.entry.source,
                    "accepted": tenant.accepted,
                    "rejected": tenant.rejected,
                    "query_count": tenant.query_count,
                    "query_calls": tenant.query_calls,
                    "cache_hits": tenant.cache_hits,
                    "dedup_hits": tenant.dedup_hits,
                    "provisioned": tenant.provisioned,
                    "amortized_queries_per_verdict": amortized(
                        tenant.query_count, tenant.accepted + tenant.rejected
                    ),
                }
                for tenant in self._tenants.values()
            }
            in_flight = sum(1 for future in self._pending if not future.done())
            fleet_queries = sum(t.query_count for t in self._tenants.values())
            fleet_verdicts = sum(t.accepted + t.rejected for t in self._tenants.values())
        return {
            "tenants": tenants,
            "registry": self.registry.stats(),
            "store": self._store_stats(),
            "verdict_cache": (
                self.verdict_cache.stats() if self.verdict_cache is not None else None
            ),
            "amortized_queries_per_verdict": amortized(fleet_queries, fleet_verdicts),
            "worker_pool": self.worker_pool.stats(),
            "telemetry": self._telemetry_stats(),
            "in_flight": in_flight,
            "max_in_flight": self.max_in_flight,
        }

    def _telemetry_stats(self) -> Dict[str, Any]:
        """The telemetry sub-dashboard: tracer state + the merged fleet metrics.

        Folds the gateway's own histograms with every component registry.
        The sharded store contributes only its *aggregate* tallies (the
        top-level counters already sum the shards; folding per-shard
        registries too would double-count).
        """
        return {
            "enabled": self._telemetry,
            "spans_recorded": get_tracer().recorded,
            "metrics": merge_snapshots(
                self.metrics.snapshot(),
                self.registry.metrics.snapshot(),
                self.registry.store.metrics.snapshot(),
                self.worker_pool.metrics.snapshot(),
                *(
                    (self.verdict_cache.metrics.snapshot(),)
                    if self.verdict_cache is not None
                    else ()
                ),
            ),
        }

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Shut every tenant's service down, then the shared worker pool.

        Tenant services first: they only close sessions they *own* (the
        shared pool session is the gateway's), then the pool drain waits for
        every outstanding task."""
        for tenant in self.tenants.values():
            tenant.service.close()
        self.worker_pool.close()

    def __enter__(self) -> "AuditGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AuditGateway(tenants={sorted(self._tenants)}, "
            f"max_in_flight={self.max_in_flight})"
        )
