"""Advisory file locks for cross-process coordination on the artifact store.

The registry's single-flight guarantee (:class:`repro.runtime.registry.
DetectorRegistry`) and the sharded store's maintenance passes both need to
exclude concurrent workers that share nothing but a filesystem.  An
:class:`AdvisoryLock` is a lock *file* created with ``O_CREAT | O_EXCL`` — the
only atomic test-and-set POSIX gives us without fcntl ranges (which do not
survive NFS consistently) — holding a small JSON payload (pid, host, creation
time, random token) for debuggability and safe release.

Crash recovery is time-based: a lock file older than ``stale_seconds`` is
presumed abandoned and taken over.  Takeover renames the stale file to a
unique name before deleting it, so two waiters that both observe staleness
cannot each delete a *different* incarnation of the lock — the second rename
fails and that waiter goes back to polling.  There remains a tiny window in
which a waiter can steal a lock that was released-and-reacquired between its
staleness check and its rename; keep ``stale_seconds`` much larger than any
legitimate hold time (the default is one hour, against fits that take
minutes).  Long-running holders can call :meth:`refresh` to re-stamp the
file's mtime and push staleness out.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from pathlib import Path
from typing import Optional, Union

PathLike = Union[str, Path]

#: default seconds before an unrefreshed lock is presumed abandoned
DEFAULT_STALE_SECONDS = 3600.0
#: default seconds a waiter polls before giving up
DEFAULT_WAIT_SECONDS = 600.0


class LockTimeout(TimeoutError):
    """Raised when a lock could not be acquired within ``wait_seconds``."""


class AdvisoryLock:
    """A polling advisory file lock with stale-lock takeover.

    Usage::

        with AdvisoryLock(store_root / ".locks" / "detector-abc.lock"):
            ...  # at most one process fits this detector at a time

    ``acquire`` blocks (polling) until the lock file could be created, a stale
    holder was evicted, or ``wait_seconds`` elapsed (:class:`LockTimeout`).
    ``release`` deletes the file only when the payload still carries this
    lock's token, so releasing after a (mis-tuned) stale takeover never
    deletes another process's lock.
    """

    def __init__(
        self,
        path: PathLike,
        stale_seconds: float = DEFAULT_STALE_SECONDS,
        wait_seconds: float = DEFAULT_WAIT_SECONDS,
        poll_seconds: float = 0.05,
    ) -> None:
        self.path = Path(path)
        if stale_seconds <= 0:
            raise ValueError(f"stale_seconds must be positive, got {stale_seconds}")
        if wait_seconds < 0:
            raise ValueError(f"wait_seconds must be >= 0, got {wait_seconds}")
        self.stale_seconds = float(stale_seconds)
        self.wait_seconds = float(wait_seconds)
        self.poll_seconds = float(poll_seconds)
        self._token = uuid.uuid4().hex
        self._held = False

    # -- introspection --------------------------------------------------------
    @property
    def held(self) -> bool:
        """Whether this instance currently believes it holds the lock."""
        return self._held

    def holder(self) -> Optional[dict]:
        """The current lock-file payload, or ``None`` when unlocked/corrupt."""
        try:
            return json.loads(self.path.read_text())
        except (OSError, ValueError):
            return None

    def _age_seconds(self) -> Optional[float]:
        try:
            return time.time() - self.path.stat().st_mtime
        except OSError:  # released between the existence check and the stat
            return None

    # -- acquire / release ----------------------------------------------------
    def _try_create(self) -> bool:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            descriptor = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(
                descriptor,
                json.dumps(
                    {
                        "pid": os.getpid(),
                        "host": socket.gethostname(),
                        "created": time.time(),
                        "token": self._token,
                    }
                ).encode("utf-8"),
            )
        finally:
            os.close(descriptor)
        self._held = True
        return True

    def _evict_stale(self) -> None:
        """Remove the lock file if it has been held longer than ``stale_seconds``.

        The rename-to-unique-name dance makes eviction single-winner: of two
        waiters that both saw a stale lock, only one rename succeeds, and the
        loser returns to polling against whatever lock exists next.
        """
        age = self._age_seconds()
        if age is None or age < self.stale_seconds:
            return
        takeover = self.path.with_name(f"{self.path.name}.stale-{uuid.uuid4().hex[:8]}")
        try:
            os.replace(self.path, takeover)
        except OSError:
            return  # another waiter won the eviction (or the holder released)
        try:
            os.unlink(takeover)
        except OSError:
            pass

    def acquire(self) -> "AdvisoryLock":
        if self._held:
            raise RuntimeError(f"lock {self.path} is already held by this instance")
        deadline = time.monotonic() + self.wait_seconds
        while True:
            if self._try_create():
                return self
            self._evict_stale()
            if self._try_create():
                return self
            if time.monotonic() >= deadline:
                holder = self.holder() or {}
                raise LockTimeout(
                    f"could not acquire {self.path} within {self.wait_seconds}s "
                    f"(held by pid {holder.get('pid')} on {holder.get('host')})"
                )
            time.sleep(self.poll_seconds)

    def refresh(self) -> None:
        """Re-stamp the lock file's mtime so a long hold is not seen as stale."""
        if not self._held:
            raise RuntimeError(f"cannot refresh {self.path}: lock not held")
        try:
            os.utime(self.path)
        except OSError:
            pass  # evicted from under us; release() will notice the token is gone

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        holder = self.holder()
        if holder is None or holder.get("token") != self._token:
            # taken over after going stale — or unreadable, e.g. a successor
            # between its O_CREAT and its payload write.  Either way the file
            # is not provably ours: leave it for staleness eviction rather
            # than risk deleting a live successor's lock.
            return
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "AdvisoryLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "held" if self._held else "free"
        return f"AdvisoryLock({str(self.path)!r}, {state})"
