"""A small staged-pipeline engine with per-stage artifact caching.

A pipeline is an ordered list of named stages (BPROM's graph is
``shadow -> prompt -> meta``, with ``inspect`` fanning out per suspicious
model at serve time).  Each stage consumes the results of earlier stages and
may declare an artifact binding — a ``(kind, key, save, load)`` quadruple —
in which case the engine consults the :class:`~repro.runtime.store.ArtifactStore`
before building and persists the result after building.  Stage reports record
what was cached and how long each stage took, which the benchmarks use to
attribute wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.obs.clock import now
from repro.obs.trace import get_tracer
from repro.runtime.store import MISS, Artifact, ArtifactStore


@dataclass
class StageReport:
    """Execution record of one pipeline stage."""

    name: str
    cached: bool
    seconds: float


@dataclass
class Stage:
    """One node of the pipeline graph.

    ``build`` receives the dict of prior stage results.  When ``kind``/``key``
    and both codecs are provided the stage is cacheable; ``load`` additionally
    receives the prior results so reconstruction can reattach in-memory
    objects (e.g. prompts reattach to the shadow classifiers loaded by the
    previous stage).
    """

    name: str
    build: Callable[[Dict[str, Any]], Any]
    kind: Optional[str] = None
    key: Optional[Any] = None
    save: Optional[Callable[[Artifact, Any], None]] = None
    load: Optional[Callable[[Artifact, Dict[str, Any]], Any]] = None

    @property
    def cacheable(self) -> bool:
        return (
            self.kind is not None
            and self.key is not None
            and self.save is not None
            and self.load is not None
        )


class StagedPipeline:
    """Runs stages in order, caching each cacheable stage in the store."""

    def __init__(self, stages: List[Stage], store: Optional[ArtifactStore] = None) -> None:
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self.stages = list(stages)
        self.store = store if store is not None else ArtifactStore(None, enabled=False)
        self.reports: List[StageReport] = []

    def run(self) -> Dict[str, Any]:
        """Execute every stage; returns the mapping stage name -> result."""
        results: Dict[str, Any] = {}
        self.reports = []
        tracer = get_tracer()
        for stage in self.stages:
            with tracer.span(f"fit.{stage.name}") as span:
                start = now()
                cached = False
                value = MISS
                if stage.cacheable:
                    value = self.store.try_load(
                        stage.kind, stage.key, lambda artifact: stage.load(artifact, results)
                    )
                    cached = value is not MISS
                if not cached:
                    value = stage.build(results)
                    if stage.cacheable and self.store.enabled:
                        with self.store.open_write(stage.kind, stage.key) as artifact:
                            stage.save(artifact, value)
                results[stage.name] = value
                span.set(cached=cached)
                self.reports.append(StageReport(stage.name, cached, now() - start))
        return results
