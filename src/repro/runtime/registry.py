"""Detector registry: a store-backed catalogue of fitted BPROM/MNTD detectors.

One front door for a fleet of detectors.  A production MLaaS auditor receives
suspicious models for many *tenants* — different architectures, datasets and
defense choices — and must route each to the right fitted detector, fitting
one on demand at most once fleet-wide.  The registry provides exactly that:

* **addressing** — a detector's identity is its :class:`DetectorSpec`
  (defense kind, profile, architecture, attack/query knobs, seed) plus the
  fingerprints of the datasets it is fitted on; ``registry_key`` turns that
  into an artifact-store key, so any knob that changes the fitted detector
  changes its address;
* **cross-process single-flight** — ``get_or_fit`` first consults the
  artifact store for a previously fitted detector (zero training on a warm
  store, in *any* process), and otherwise takes an advisory lock file in the
  store (:mod:`repro.runtime.locks`) so concurrent cold-store callers fit
  exactly once: the losers wait, then load the winner's artifact.  Crashed
  fitters are recovered by stale-lock takeover after
  ``RuntimeConfig.registry_lock_stale`` seconds;
* **bounded residency** — loaded detectors live in an in-memory LRU with a
  byte budget (``RuntimeConfig.registry_lru_bytes``), so a gateway process
  can hold dozens of tenants without unbounded RSS; evicted detectors reload
  from the store on next use.

Both detector families round-trip with bit-identical scores
(``BpromDetector.save``/``load`` and ``MNTDDefense.save``/``load``), which is
what makes a registry hit indistinguishable from the original fit.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from threading import RLock
from typing import Any, Dict, List, Optional, Tuple

from repro.config import (
    DEFAULT_RUNTIME,
    ExperimentProfile,
    FAST,
    PRECISIONS,
    RuntimeConfig,
    profile_to_dict,
)
from repro.core.detector import BpromDetector
from repro.datasets.base import ImageDataset
from repro.defenses.model_level import MNTDDefense
from repro.models.registry import architecture_family
from repro.obs.metrics import MetricsRegistry, counter_property
from repro.obs.trace import get_tracer
from repro.runtime.locks import AdvisoryLock, LockTimeout
from repro.runtime.pipeline import StageReport
from repro.runtime.store import MISS, Artifact, ArtifactStore, dataset_fingerprint, key_hash

#: artifact kind under which fitted detectors are stored
DETECTOR_KIND = "fitted-detector"

#: defense kinds the registry can fit and serve
DEFENSE_KINDS = ("bprom", "mntd")


@dataclass(frozen=True)
class DetectorSpec:
    """Everything that determines *which* fitted detector a tenant needs.

    ``defense`` selects the family: ``"bprom"`` (the paper's detector, fitted
    on ``(reserved_clean, target_train, target_test)``) or ``"mntd"`` (the
    model-level baseline, fitted on ``reserved_clean`` alone).  The remaining
    fields mirror the corresponding constructor knobs; fields irrelevant to
    the chosen family are ignored by it but still participate in the registry
    key, so keep them at their defaults unless they matter.
    """

    defense: str = "bprom"
    profile: ExperimentProfile = field(default_factory=lambda: FAST)
    architecture: str = "resnet18"
    seed: int = 0
    threshold: float = 0.5
    #: BPROM: the single shadow attack used to poison shadow pools
    shadow_attack: str = "badnets"
    #: MNTD: the attack-diverse shadow pool composition
    shadow_attacks: Tuple[str, ...] = ("badnets", "blend", "trojan")
    #: MNTD: number of tuned query probes
    num_queries: int = 16
    #: precision tier the shadow pools train in: "float64" (reference,
    #: bit-identity contract) or "float32" (fast tier, tolerance contract).
    #: Tiers never share artifacts — the registry key carries the precision.
    precision: str = "float64"

    def __post_init__(self) -> None:
        if self.defense not in DEFENSE_KINDS:
            raise ValueError(
                f"unknown defense {self.defense!r}; available: {DEFENSE_KINDS}"
            )
        architecture_family(self.architecture)  # fail fast on unknown arch
        object.__setattr__(self, "shadow_attacks", tuple(self.shadow_attacks))
        object.__setattr__(self, "precision", str(self.precision).lower())
        if self.precision not in PRECISIONS:
            raise ValueError(
                f"unknown precision {self.precision!r}; available: {PRECISIONS}"
            )

    @property
    def family(self) -> str:
        """Coarse architecture family ("cnn" | "transformer" | "mlp") — the
        gateway's routing coordinate."""
        return architecture_family(self.architecture)

    def with_overrides(self, **kwargs) -> "DetectorSpec":
        return replace(self, **kwargs)


@dataclass
class RegistryEntry:
    """One loaded detector plus the provenance of how it got into memory."""

    key_hash: str
    spec: DetectorSpec
    #: the fitted ``BpromDetector`` or ``MNTDDefense``
    detector: Any
    #: "fit" (trained here), "store" (loaded from a warm artifact store) or
    #: "memory" (served from the in-memory LRU)
    source: str
    #: estimated resident size, charged against the LRU byte budget
    nbytes: int
    #: stage execution records: the detector's own pipeline reports for a
    #: fresh fit, or a single synthetic all-cached record for a store load
    stage_reports: List[StageReport] = field(default_factory=list)
    #: the full :func:`registry_key` payload this entry was resolved under —
    #: what a :class:`~repro.runtime.workers.DetectorRef` ships to process
    #: workers so they can hydrate the same artifact from the shared store
    key: Optional[Dict[str, Any]] = None

    @property
    def trained(self) -> bool:
        """Whether serving this entry performed any training."""
        return any(not report.cached for report in self.stage_reports)


def registry_key(
    spec: DetectorSpec,
    reserved_clean: ImageDataset,
    target_train: Optional[ImageDataset] = None,
    target_test: Optional[ImageDataset] = None,
) -> Dict[str, Any]:
    """The artifact-store key payload addressing one fitted detector."""
    key = {
        "defense": spec.defense,
        "profile": profile_to_dict(spec.profile),
        "architecture": spec.architecture,
        "seed": spec.seed,
        "threshold": spec.threshold,
        "shadow_attack": spec.shadow_attack,
        "shadow_attacks": list(spec.shadow_attacks),
        "num_queries": spec.num_queries,
        "reserved": dataset_fingerprint(reserved_clean),
        "target_train": dataset_fingerprint(target_train) if target_train is not None else None,
        "target_test": dataset_fingerprint(target_test) if target_test is not None else None,
    }
    # only the non-default tier adds an entry, so detectors cached before the
    # precision split keep their hashes (float64 warm stores stay warm) while
    # float32 fits can never be served a float64 artifact or vice versa
    if spec.precision != "float64":
        key["precision"] = spec.precision
    return key


def load_detector_artifact(artifact: Artifact, spec: DetectorSpec, runtime: RuntimeConfig) -> Any:
    """Reconstruct a fitted detector from its store artifact.

    Module-level so process-pool workers (:mod:`repro.runtime.workers`) can
    hydrate detectors without carrying a registry instance; the registry's own
    store loads go through the same code, which is what makes a worker-side
    hydration bit-identical to an in-process store hit.
    """
    if spec.defense == "mntd":
        return MNTDDefense.load(artifact.directory)
    return BpromDetector.load(
        artifact.directory,
        runtime=runtime.with_overrides(precision=spec.precision),
    )


def _arrays_nbytes(arrays: Dict[str, Any]) -> int:
    return int(sum(getattr(value, "nbytes", 0) for value in arrays.values()))


def _dataset_nbytes(dataset: Optional[ImageDataset]) -> int:
    if dataset is None:
        return 0
    return int(dataset.images.nbytes + dataset.labels.nbytes)


def detector_nbytes(detector: Any) -> int:
    """Estimated resident bytes of a loaded detector (LRU accounting).

    Counts the numpy payloads that dominate RSS — meta-classifier state,
    query pools / datasets, prompts — and ignores small Python object
    overhead; the budget is a dial, not an audit.
    """
    if isinstance(detector, MNTDDefense):
        total = _arrays_nbytes(detector._meta.get_state()) if detector._meta is not None else 0
        if detector._query_images is not None:
            total += int(detector._query_images.nbytes)
        return total
    if isinstance(detector, BpromDetector):
        state, _info = detector.meta_classifier.get_state()
        total = _arrays_nbytes(state)
        total += _dataset_nbytes(detector._target_train)
        total += _dataset_nbytes(detector.meta_classifier.query_pool)
        for prompted in detector.prompted_shadows:
            total += int(prompted.prompt.theta.nbytes + prompted.mapping.assignment.nbytes)
        return total
    raise TypeError(f"cannot estimate size of {type(detector).__name__}")


class DetectorRegistry:
    """Store-backed catalogue of fitted detectors with single-flight fitting.

    Typical gateway-process usage::

        registry = DetectorRegistry(runtime=RuntimeConfig(cache_dir="cache",
                                                          registry_lru_bytes=256 << 20))
        entry = registry.get_or_fit(DetectorSpec(defense="bprom", architecture="mlp"),
                                    reserved_clean, target_train, target_test)
        entry.detector.inspect(suspicious_model)

    Thread-safe: the in-memory LRU is guarded by a lock, and the store-level
    single-flight uses advisory lock files, so concurrent callers — threads
    here or whole other processes — fit each detector at most once fleet-wide.
    """

    #: counters live in a mergeable metrics registry (attribute API and
    #: ``stats()`` shape unchanged): ``hits`` — served from the in-memory LRU
    #: without touching the store; ``store_hits`` — loaded from a warm
    #: artifact store (zero training); ``fits`` — fitted here (cold
    #: everywhere); ``evictions`` — entries dropped to respect the byte
    #: budget; ``gc_evictions`` — store artifacts evicted by :meth:`maybe_gc`
    hits = counter_property("registry.hits")
    store_hits = counter_property("registry.store_hits")
    fits = counter_property("registry.fits")
    evictions = counter_property("registry.evictions")
    gc_evictions = counter_property("registry.gc_evictions")

    def __init__(
        self,
        runtime: Optional[RuntimeConfig] = None,
        store: Optional[ArtifactStore] = None,
        lru_bytes: Optional[int] = None,
        lock_wait_seconds: Optional[float] = None,
        lock_stale_seconds: Optional[float] = None,
    ) -> None:
        self.runtime = runtime or DEFAULT_RUNTIME
        self.store = store if store is not None else ArtifactStore.from_config(self.runtime)
        self.lru_bytes = lru_bytes if lru_bytes is not None else self.runtime.registry_lru_bytes
        self.lock_wait_seconds = (
            lock_wait_seconds if lock_wait_seconds is not None else self.runtime.registry_lock_wait
        )
        self.lock_stale_seconds = (
            lock_stale_seconds
            if lock_stale_seconds is not None
            else self.runtime.registry_lock_stale
        )
        self._entries: "OrderedDict[str, RegistryEntry]" = OrderedDict()
        self._lock = RLock()
        self.metrics = MetricsRegistry()
        self.hits = 0
        self.store_hits = 0
        self.fits = 0
        self.evictions = 0
        self.gc_evictions = 0

    # -- LRU ------------------------------------------------------------------
    @property
    def loaded_bytes(self) -> int:
        with self._lock:
            return sum(entry.nbytes for entry in self._entries.values())

    def _insert(self, entry: RegistryEntry) -> None:
        with self._lock:
            self._entries.pop(entry.key_hash, None)
            self._entries[entry.key_hash] = entry
            if self.lru_bytes is None:
                return
            # always keep the most recently used entry, even when it alone
            # exceeds the budget — a gateway that cannot hold one tenant is a
            # configuration error better surfaced by RSS than by thrashing
            while (
                len(self._entries) > 1
                and sum(e.nbytes for e in self._entries.values()) > self.lru_bytes
            ):
                self._entries.popitem(last=False)
                self.evictions += 1

    def _memory_hit(self, digest: str) -> Optional[RegistryEntry]:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            # a per-call view, not a mutation: earlier callers keep the
            # provenance their own get_or_fit observed ("fit"/"store"), and
            # this call's reports say what *it* did — nothing but a cache hit
            return replace(
                entry,
                source="memory",
                stage_reports=[StageReport("memory", True, 0.0)],
            )

    # -- store codecs ---------------------------------------------------------
    @staticmethod
    def _save_detector(artifact: Artifact, spec: DetectorSpec, detector: Any) -> None:
        # a detector artifact is simply the detector's own save() layout inside
        # the artifact directory, plus the store manifest written around it
        detector.save(artifact.directory)
        artifact.save_json("registry", {"defense": spec.defense})

    def _load_detector(self, artifact: Artifact, spec: DetectorSpec) -> Any:
        return load_detector_artifact(artifact, spec, self.runtime)

    # -- fitting --------------------------------------------------------------
    def _fit(
        self,
        spec: DetectorSpec,
        reserved_clean: ImageDataset,
        target_train: Optional[ImageDataset],
        target_test: Optional[ImageDataset],
    ) -> Tuple[Any, List[StageReport]]:
        if spec.defense == "mntd":
            defense = MNTDDefense(
                profile=spec.profile,
                architecture=spec.architecture,
                shadow_attacks=spec.shadow_attacks,
                num_queries=spec.num_queries,
                threshold=spec.threshold,
                seed=spec.seed,
                precision=spec.precision,
            )
            start = time.perf_counter()
            defense.fit(reserved_clean)
            reports = [StageReport("mntd-fit", False, time.perf_counter() - start)]
            return defense, reports
        if target_train is None or target_test is None:
            raise ValueError(
                "fitting a BPROM detector needs target_train and target_test datasets"
            )
        detector = BpromDetector(
            profile=spec.profile,
            architecture=spec.architecture,
            shadow_attack=spec.shadow_attack,
            threshold=spec.threshold,
            seed=spec.seed,
            # the spec's precision is authoritative for what gets fitted; the
            # registry's own runtime keeps its worker/caching settings
            runtime=self.runtime.with_overrides(precision=spec.precision),
        )
        detector.fit(reserved_clean, target_train, target_test)
        return detector, list(detector.stage_reports)

    # -- the front door -------------------------------------------------------
    def get_or_fit(
        self,
        spec: DetectorSpec,
        reserved_clean: ImageDataset,
        target_train: Optional[ImageDataset] = None,
        target_test: Optional[ImageDataset] = None,
    ) -> RegistryEntry:
        """The fitted detector for ``spec`` on these datasets, fitting at most
        once fleet-wide.

        Lookup order: in-memory LRU, then the artifact store (a warm store
        serves a previously fitted detector with **zero training**, whichever
        process wrote it), then a single-flight fit under an advisory lock
        file — of N concurrent cold-store callers exactly one trains; the
        rest block on the lock and load the winner's artifact.
        """
        with get_tracer().span("registry.get_or_fit") as span:
            entry = self._get_or_fit_impl(spec, reserved_clean, target_train, target_test)
            span.set(key_hash=entry.key_hash, source=entry.source)
            return entry

    def _get_or_fit_impl(
        self,
        spec: DetectorSpec,
        reserved_clean: ImageDataset,
        target_train: Optional[ImageDataset] = None,
        target_test: Optional[ImageDataset] = None,
    ) -> RegistryEntry:
        key = registry_key(spec, reserved_clean, target_train, target_test)
        digest = key_hash(key)
        entry = self._memory_hit(digest)
        if entry is not None:
            return entry

        def try_store() -> Optional[RegistryEntry]:
            start = time.perf_counter()
            detector = self.store.try_load(
                DETECTOR_KIND, key, lambda artifact: self._load_detector(artifact, spec)
            )
            if detector is MISS:
                return None
            with self._lock:
                self.store_hits += 1
            # stamp last-use so the disk-budget GC's LRU never evicts a
            # detector that is actively being served
            self.store.touch(DETECTOR_KIND, key)
            return RegistryEntry(
                key_hash=digest,
                spec=spec,
                detector=detector,
                source="store",
                nbytes=detector_nbytes(detector),
                stage_reports=[
                    StageReport(DETECTOR_KIND, True, time.perf_counter() - start)
                ],
                key=key,
            )

        if self.store.enabled:
            entry = try_store()
            if entry is not None:
                self._insert(entry)
                return entry
            # cold store: single-flight the fit across processes.  Everything
            # under the lock re-checks the store first — the previous holder
            # may have fitted exactly this detector while we waited.
            lock = AdvisoryLock(
                self.store.lock_path(DETECTOR_KIND, key),
                stale_seconds=self.lock_stale_seconds,
                wait_seconds=self.lock_wait_seconds,
            )
            with lock:
                entry = try_store()
                if entry is None:
                    # a fit can outlast the stale threshold; a background
                    # heartbeat re-stamps the lock so waiters on other
                    # processes don't evict a *live* holder and refit
                    stop_refresh = threading.Event()

                    def heartbeat() -> None:
                        # a quarter of the stale threshold, floored only far
                        # enough to avoid a busy spin: the interval must stay
                        # below the threshold even for very small (test-sized)
                        # registry_lock_stale values, or a live fitter's lock
                        # would go stale before its first refresh
                        interval = max(self.lock_stale_seconds / 4.0, 0.05)
                        while not stop_refresh.wait(interval):
                            lock.refresh()

                    refresher = threading.Thread(target=heartbeat, daemon=True)
                    refresher.start()
                    try:
                        detector, reports = self._fit(
                            spec, reserved_clean, target_train, target_test
                        )
                    finally:
                        stop_refresh.set()
                        refresher.join()
                    with self._lock:
                        self.fits += 1
                    with self.store.open_write(DETECTOR_KIND, key) as artifact:
                        self._save_detector(artifact, spec, detector)
                    # a fresh fit grew the store: opportunistically collect
                    # down to the disk budget while still holding this key's
                    # lock (which makes the just-written artifact immune)
                    self.maybe_gc()
                    entry = RegistryEntry(
                        key_hash=digest,
                        spec=spec,
                        detector=detector,
                        source="fit",
                        nbytes=detector_nbytes(detector),
                        stage_reports=reports,
                        key=key,
                    )
        else:
            # no shared store: fall back to an in-process fit (the LRU still
            # deduplicates repeat requests within this process)
            detector, reports = self._fit(spec, reserved_clean, target_train, target_test)
            with self._lock:
                self.fits += 1
            entry = RegistryEntry(
                key_hash=digest,
                spec=spec,
                detector=detector,
                source="fit",
                nbytes=detector_nbytes(detector),
                stage_reports=reports,
                key=key,
            )
        self._insert(entry)
        return entry

    # -- disk-budget maintenance ----------------------------------------------
    def maybe_gc(
        self, grace_seconds: Optional[float] = None
    ) -> Optional[Dict[str, int]]:
        """One opportunistic fitted-detector GC pass, if a budget is set.

        Non-blocking on the store's maintenance lock: when another node over
        the same (sharded) store is already collecting, this pass simply
        yields to it — the budget is eventually enforced either way.  Returns
        the eviction statistics, or ``None`` when GC is disabled (no
        ``detector_gc_bytes``, store off) or skipped (lock contended).
        """
        budget = self.runtime.detector_gc_bytes
        if budget is None or not self.store.enabled:
            return None
        kwargs: Dict[str, Any] = {"lock_wait_seconds": 0.0}
        if grace_seconds is not None:
            kwargs["grace_seconds"] = grace_seconds
        try:
            result = self.store.gc_kind(DETECTOR_KIND, max_bytes=budget, **kwargs)
        except LockTimeout:
            return None
        with self._lock:
            self.gc_evictions += result["evicted"]
        return result

    def stats(self) -> Dict[str, Any]:
        """Serving counters: the registry panel of the gateway dashboard."""
        with self._lock:
            return {
                "hits": self.hits,
                "store_hits": self.store_hits,
                "fits": self.fits,
                "evictions": self.evictions,
                "gc_evictions": self.gc_evictions,
                "loaded": len(self._entries),
                "loaded_bytes": sum(e.nbytes for e in self._entries.values()),
                "lru_bytes": self.lru_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DetectorRegistry(loaded={len(self._entries)}, hits={self.hits}, "
            f"store_hits={self.store_hits}, fits={self.fits}, evictions={self.evictions})"
        )
