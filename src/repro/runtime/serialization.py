"""Round-tripping pipeline components through artifact directories.

Everything is stored as ``.npz`` array blobs (via :mod:`repro.nn.serialization`
conventions) plus JSON metadata, so artifacts are portable, inspectable and
independent of pickle.  Loaders rebuild objects through the public registries
(:func:`repro.models.registry.build_classifier` etc.) and then restore exact
numeric state, which is what makes reloaded detectors produce bit-identical
scores.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import profile_from_dict, profile_to_dict
from repro.core.shadow import ShadowModel
from repro.datasets.base import ImageDataset
from repro.models.classifier import ImageClassifier
from repro.models.registry import build_classifier
from repro.prompting.output_mapping import LabelMapping
from repro.prompting.prompt import VisualPrompt
from repro.prompting.prompted import PromptedClassifier
from repro.runtime.store import Artifact


# -- classifiers --------------------------------------------------------------

def save_classifier(artifact: Artifact, classifier: ImageClassifier, name: str = "classifier") -> None:
    """Persist a classifier's weights plus the build spec needed to rebuild it."""
    if classifier.architecture is None or classifier.image_size is None:
        raise ValueError(
            f"classifier {classifier.name!r} has no recorded architecture/image_size; "
            "build it through repro.models.registry.build_classifier to make it persistable"
        )
    artifact.save_arrays(name, classifier.state_dict())
    artifact.save_json(
        f"{name}.meta",
        {
            "architecture": classifier.architecture,
            "num_classes": classifier.num_classes,
            "image_size": classifier.image_size,
            "in_channels": classifier.in_channels,
            "name": classifier.name,
        },
    )


def load_classifier(artifact: Artifact, name: str = "classifier") -> ImageClassifier:
    meta = artifact.load_json(f"{name}.meta")
    classifier = build_classifier(
        meta["architecture"],
        meta["num_classes"],
        image_size=meta["image_size"],
        in_channels=meta["in_channels"],
        rng=0,
        name=meta["name"],
    )
    classifier.load_state_dict(artifact.load_arrays(name))
    return classifier


# -- datasets -----------------------------------------------------------------

def save_dataset(artifact: Artifact, dataset: ImageDataset, name: str = "dataset") -> None:
    artifact.save_arrays(
        name,
        {
            "images": dataset.images,
            "labels": dataset.labels,
            "num_classes": np.asarray([dataset.num_classes], dtype=np.int64),
        },
    )
    artifact.save_json(f"{name}.meta", {"name": dataset.name})


def load_dataset(artifact: Artifact, name: str = "dataset") -> ImageDataset:
    arrays = artifact.load_arrays(name)
    meta = artifact.load_json(f"{name}.meta")
    return ImageDataset(
        arrays["images"],
        arrays["labels"],
        num_classes=int(arrays["num_classes"].ravel()[0]),
        name=meta["name"],
    )


# -- prompts / prompted classifiers -------------------------------------------

def save_prompted(artifact: Artifact, prompted: PromptedClassifier, name: str = "prompted") -> None:
    """Persist the prompt and label mapping of one prompted classifier.

    The frozen source classifier is *not* stored here — it is an independent
    artifact (or an in-memory object the caller already owns) that must be
    supplied again at load time.
    """
    artifact.save_arrays(
        name,
        {
            "theta": prompted.prompt.theta,
            "assignment": prompted.mapping.assignment,
        },
    )
    artifact.save_json(
        f"{name}.meta",
        {
            "name": prompted.name,
            "source_size": prompted.prompt.source_size,
            "inner_size": prompted.prompt.inner_size,
            "channels": prompted.prompt.channels,
            "num_source_classes": prompted.mapping.num_source_classes,
            "num_target_classes": prompted.mapping.num_target_classes,
            "mapping_mode": prompted.mapping.mode,
        },
    )


def load_prompted(
    artifact: Artifact,
    source_classifier: ImageClassifier,
    name: str = "prompted",
) -> PromptedClassifier:
    arrays = artifact.load_arrays(name)
    meta = artifact.load_json(f"{name}.meta")
    prompt = VisualPrompt(
        source_size=meta["source_size"],
        inner_size=meta["inner_size"],
        channels=meta["channels"],
        init_scale=0.0,
    )
    prompt.theta = np.asarray(arrays["theta"], dtype=np.float64)
    mapping = LabelMapping(
        num_source_classes=meta["num_source_classes"],
        num_target_classes=meta["num_target_classes"],
        mode=meta["mapping_mode"],
    )
    mapping.assignment = np.asarray(arrays["assignment"], dtype=np.int64)
    return PromptedClassifier(source_classifier, prompt, mapping, name=meta["name"])


# -- shadow pools -------------------------------------------------------------

def save_shadow_pool(artifact: Artifact, pool: List[ShadowModel]) -> None:
    entries = []
    for index, shadow in enumerate(pool):
        save_classifier(artifact, shadow.classifier, name=f"shadow-{index}")
        entries.append(
            {
                "is_backdoored": shadow.is_backdoored,
                "attack_name": shadow.attack_name,
                "target_class": shadow.target_class,
                "clean_accuracy": shadow.clean_accuracy,
            }
        )
    artifact.save_json("pool", {"size": len(pool), "entries": entries})


def load_shadow_pool(artifact: Artifact) -> List[ShadowModel]:
    manifest = artifact.load_json("pool")
    pool = []
    for index, entry in enumerate(manifest["entries"]):
        pool.append(
            ShadowModel(
                classifier=load_classifier(artifact, name=f"shadow-{index}"),
                is_backdoored=bool(entry["is_backdoored"]),
                attack_name=entry["attack_name"],
                target_class=entry["target_class"],
                clean_accuracy=float(entry["clean_accuracy"]),
            )
        )
    return pool


def save_prompted_pool(artifact: Artifact, prompted: List[PromptedClassifier]) -> None:
    for index, item in enumerate(prompted):
        save_prompted(artifact, item, name=f"prompt-{index}")
    artifact.save_json("prompts", {"size": len(prompted)})


def load_prompted_pool(
    artifact: Artifact, source_classifiers: List[ImageClassifier]
) -> List[PromptedClassifier]:
    manifest = artifact.load_json("prompts")
    if manifest["size"] != len(source_classifiers):
        raise ValueError(
            f"prompted-pool artifact holds {manifest['size']} prompts but "
            f"{len(source_classifiers)} source classifiers were supplied"
        )
    return [
        load_prompted(artifact, source, name=f"prompt-{index}")
        for index, source in enumerate(source_classifiers)
    ]


# -- meta-classifier ----------------------------------------------------------

def save_meta_classifier(artifact: Artifact, meta, name: str = "meta") -> None:
    """Persist a fitted :class:`repro.core.meta.MetaClassifier`."""
    state, info = meta.get_state()
    artifact.save_arrays(name, state)
    artifact.save_json(f"{name}.meta", info)


def load_meta_classifier(artifact: Artifact, name: str = "meta"):
    from repro.core.meta import MetaClassifier

    return MetaClassifier.from_state(
        artifact.load_json(f"{name}.meta"), artifact.load_arrays(name)
    )


# -- MNTD baseline -------------------------------------------------------------

#: bump when the on-disk MNTD layout changes incompatibly
MNTD_FORMAT_VERSION = 1


def save_mntd_defense(artifact: Artifact, defense, name: str = "mntd") -> None:
    """Persist a fitted :class:`repro.defenses.model_level.MNTDDefense`.

    Stores everything :meth:`score_model` reads — the tuned query images and
    the fitted meta random forest — plus the construction parameters, so the
    reloaded defense produces bit-identical scores.  The shadow classifiers
    are training-time artefacts (cached separately by the artifact store) and
    are not part of this artifact, mirroring ``BpromDetector.save``.
    """
    if defense._meta is None or defense._query_images is None:
        raise ValueError("only a fitted MNTDDefense can be saved")
    artifact.save_arrays(name, {"query_images": defense._query_images})
    artifact.save_arrays(f"{name}.forest", defense._meta.get_state())
    artifact.save_json(
        f"{name}.meta",
        {
            "format_version": MNTD_FORMAT_VERSION,
            "profile": profile_to_dict(defense.profile),
            "architecture": defense.architecture,
            "shadow_attacks": list(defense.shadow_attacks),
            "num_queries": defense.num_queries,
            "threshold": defense.threshold,
            "seed": defense.seed,
            "precision": defense.precision,
            "shadow_labels": [int(s.is_backdoored) for s in defense.shadow_models],
        },
    )


def load_mntd_defense(artifact: Artifact, name: str = "mntd"):
    """Inverse of :func:`save_mntd_defense`; scores are bit-identical."""
    from repro.defenses.model_level import MNTDDefense
    from repro.ml.forest import RandomForestClassifier

    meta = artifact.load_json(f"{name}.meta")
    if meta["format_version"] != MNTD_FORMAT_VERSION:
        raise ValueError(
            f"saved MNTD defense has format {meta['format_version']}, "
            f"expected {MNTD_FORMAT_VERSION}"
        )
    defense = MNTDDefense(
        profile=profile_from_dict(meta["profile"]),
        architecture=meta["architecture"],
        shadow_attacks=tuple(meta["shadow_attacks"]),
        num_queries=meta["num_queries"],
        threshold=meta["threshold"],
        seed=meta["seed"],
        # artifacts saved before the precision split are float64 by definition
        precision=meta.get("precision", "float64"),
    )
    defense._query_images = np.asarray(
        artifact.load_arrays(name)["query_images"], dtype=np.float64
    )
    defense._meta = RandomForestClassifier.from_state(artifact.load_arrays(f"{name}.forest"))
    return defense
