"""Serve-many audit API: one fitted detector screening a fleet of models.

This is the MLaaS-audit deployment story from the paper's introduction turned
into a batch service: fit (or load) a BPROM detector once, then submit whole
vendor catalogues for concurrent black-box screening.  Per-model prompting
seeds are derived from the *catalogue key* (not the model name, which vendors
may reuse), so a batch audit returns exactly the same verdicts as inspecting
each model alone under its key — and duplicate-named entries never share a
seed.  For a streaming front-end over the same verdicts see
:class:`~repro.runtime.service_async.AsyncAuditService`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.config import RuntimeConfig
from repro.core.detector import BpromDetector, DetectionResult
from repro.datasets.base import ImageDataset
from repro.models.classifier import ImageClassifier
from repro.prompting.blackbox import QueryFunction
from repro.runtime.executor import ParallelExecutor
from repro.runtime.store import key_hash
from repro.runtime.verdict_cache import VerdictCache, detector_digest


def resolve_executor(
    detector: BpromDetector, runtime: Optional[RuntimeConfig]
) -> ParallelExecutor:
    """The executor an audit service should run on: the runtime's if one is
    given, otherwise the detector's own (shared by both service front-ends)."""
    if runtime is not None:
        return ParallelExecutor.from_config(runtime)
    return detector.executor


@dataclass
class AuditVerdict:
    """One row of an audit report."""

    name: str
    backdoor_score: float
    is_backdoored: bool
    prompted_accuracy: float
    #: black-box query budget spent prompting this model (images queried)
    query_count: int = 0
    #: round-trips to the model's query endpoint
    query_calls: int = 0
    #: how this verdict was obtained: ``"cold"`` (inspected for this
    #: submission) or a :data:`~repro.runtime.verdict_cache.CACHE_PROVENANCES`
    #: cache tier (``"memory"``/``"store"``/``"dedup"``).  ``query_count``
    #: and ``query_calls`` always describe the *original* inspection; a warm
    #: serving spent none of them
    cache: str = "cold"
    #: task-relative telemetry spans a traced pool worker ships back with a
    #: cold verdict; the gateway consumes (rebases and clears) them at
    #: harvest.  Excluded from equality and repr — telemetry on/off must not
    #: change what a verdict *is* — and never persisted by the verdict cache
    spans: List = field(default_factory=list, repr=False, compare=False)

    @property
    def verdict(self) -> str:
        return "reject" if self.is_backdoored else "accept"


class AuditService:
    """Batch front-end over a fitted :class:`BpromDetector`.

    Typical usage::

        service = AuditService.from_saved("artifacts/detector", runtime=RuntimeConfig(workers=4))
        report = service.audit({"vendor-a": model_a, "vendor-b": model_b})
    """

    def __init__(
        self,
        detector: BpromDetector,
        runtime: Optional[RuntimeConfig] = None,
        verdict_cache: Optional[VerdictCache] = None,
    ) -> None:
        self.detector = detector
        self.executor = resolve_executor(detector, runtime)
        if verdict_cache is None and runtime is not None and runtime.verdict_cache:
            verdict_cache = VerdictCache(runtime=runtime)
        self.verdict_cache = verdict_cache
        #: content digest of the fitted detector, the cache-key coordinate
        #: that a refit bumps (gateway tenants use their registry key_hash)
        self.detector_digest = (
            detector_digest(detector) if verdict_cache is not None else None
        )

    @classmethod
    def from_saved(
        cls,
        path: Union[str, Path],
        runtime: Optional[RuntimeConfig] = None,
    ) -> "AuditService":
        """Stand up a service from a detector artifact written by ``save()``."""
        return cls(BpromDetector.load(path, runtime=runtime), runtime=runtime)

    def inspect_many(
        self,
        suspicious_models: Sequence[ImageClassifier],
        query_functions: Optional[Sequence[Optional[QueryFunction]]] = None,
        target_eval: Optional[ImageDataset] = None,
        keys: Optional[Sequence[Optional[str]]] = None,
    ) -> List[DetectionResult]:
        """Concurrently prompt and score a batch of suspicious models.

        ``keys`` carries each model's stable audit identity (the catalogue
        key) into the per-model seed derivation; without it seeds fall back
        to model names.
        """
        return self.detector.inspect_many(
            suspicious_models,
            query_functions=query_functions,
            target_eval=target_eval,
            executor=self.executor,
            keys=keys,
        )

    def audit(
        self,
        catalogue: Dict[str, ImageClassifier],
        query_functions: Optional[Dict[str, QueryFunction]] = None,
    ) -> List[AuditVerdict]:
        """Screen a named catalogue of models; returns one verdict per entry.

        With a :class:`~repro.runtime.verdict_cache.VerdictCache` configured,
        warm entries are served from the cache (zero queries spent), the
        same weights appearing under several catalogue keys are inspected
        once, and the remaining cold misses run as one parallel fan-out
        whose verdicts fill the cache.  Note the cached verdict keeps its
        *minting* submission's prompting seed: a warm serving under a new
        key returns the minting inspection's numbers, which is the point of
        memoisation (re-keyed cold inspections would re-derive seeds).
        """
        names = list(catalogue)
        cache = self.verdict_cache
        verdicts: Dict[str, AuditVerdict] = {}
        cold_names = names
        cache_keys: Dict[str, Dict] = {}
        followers: Dict[str, str] = {}
        if cache is not None and cache.enabled:
            precision = getattr(getattr(self.detector, "runtime", None), "precision", "float64")
            leaders: Dict[str, str] = {}
            cold_names = []
            for name in names:
                cache_keys[name] = cache.key_for(
                    catalogue[name], self.detector_digest, precision
                )
                hit = cache.lookup(cache_keys[name], name)
                if hit is not None:
                    verdicts[name] = hit
                    continue
                digest = key_hash(cache_keys[name])
                if digest in leaders:
                    followers[name] = leaders[digest]
                    cache.record_dedup()
                else:
                    leaders[digest] = name
                    cold_names.append(name)
                    cache.record_miss()
        functions = None
        if query_functions is not None:
            functions = [query_functions.get(name) for name in cold_names]
        # seed on the catalogue key, not model.name: vendors reuse names, and
        # duplicate-named entries must not share visual-prompt seeds
        models = [catalogue[name] for name in cold_names]
        results = self.inspect_many(models, query_functions=functions, keys=cold_names)
        for name, result in zip(cold_names, results):
            verdict = AuditVerdict(
                name=name,
                backdoor_score=result.backdoor_score,
                is_backdoored=result.is_backdoored,
                prompted_accuracy=result.prompted_accuracy,
                query_count=result.query_count,
                query_calls=result.query_calls,
            )
            if cache is not None and cache.enabled:
                cache.store_verdict(cache_keys[name], verdict)
            verdicts[name] = verdict
        for name, leader in followers.items():
            verdicts[name] = cache.served(verdicts[leader], name, "dedup")
        return [verdicts[name] for name in names]
