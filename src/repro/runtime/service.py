"""Serve-many audit API: one fitted detector screening a fleet of models.

This is the MLaaS-audit deployment story from the paper's introduction turned
into a batch service: fit (or load) a BPROM detector once, then submit whole
vendor catalogues for concurrent black-box screening.  Per-model prompting
seeds are derived from model names, so a batch audit returns exactly the same
verdicts as inspecting each model alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.config import RuntimeConfig
from repro.core.detector import BpromDetector, DetectionResult
from repro.datasets.base import ImageDataset
from repro.models.classifier import ImageClassifier
from repro.prompting.blackbox import QueryFunction
from repro.runtime.executor import ParallelExecutor


@dataclass
class AuditVerdict:
    """One row of an audit report."""

    name: str
    backdoor_score: float
    is_backdoored: bool
    prompted_accuracy: float

    @property
    def verdict(self) -> str:
        return "reject" if self.is_backdoored else "accept"


class AuditService:
    """Batch front-end over a fitted :class:`BpromDetector`.

    Typical usage::

        service = AuditService.from_saved("artifacts/detector", runtime=RuntimeConfig(workers=4))
        report = service.audit({"vendor-a": model_a, "vendor-b": model_b})
    """

    def __init__(
        self,
        detector: BpromDetector,
        runtime: Optional[RuntimeConfig] = None,
    ) -> None:
        self.detector = detector
        self.executor = (
            ParallelExecutor.from_config(runtime)
            if runtime is not None
            else detector._executor
        )

    @classmethod
    def from_saved(
        cls,
        path: Union[str, Path],
        runtime: Optional[RuntimeConfig] = None,
    ) -> "AuditService":
        """Stand up a service from a detector artifact written by ``save()``."""
        return cls(BpromDetector.load(path, runtime=runtime), runtime=runtime)

    def inspect_many(
        self,
        suspicious_models: Sequence[ImageClassifier],
        query_functions: Optional[Sequence[Optional[QueryFunction]]] = None,
        target_eval: Optional[ImageDataset] = None,
    ) -> List[DetectionResult]:
        """Concurrently prompt and score a batch of suspicious models."""
        return self.detector.inspect_many(
            suspicious_models,
            query_functions=query_functions,
            target_eval=target_eval,
            executor=self.executor,
        )

    def audit(
        self,
        catalogue: Dict[str, ImageClassifier],
        query_functions: Optional[Dict[str, QueryFunction]] = None,
    ) -> List[AuditVerdict]:
        """Screen a named catalogue of models; returns one verdict per entry."""
        names = list(catalogue)
        models = [catalogue[name] for name in names]
        functions = None
        if query_functions is not None:
            functions = [query_functions.get(name) for name in names]
        results = self.inspect_many(models, query_functions=functions)
        return [
            AuditVerdict(
                name=name,
                backdoor_score=result.backdoor_score,
                is_backdoored=result.is_backdoored,
                prompted_accuracy=result.prompted_accuracy,
            )
            for name, result in zip(names, results)
        ]
