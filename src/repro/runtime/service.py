"""Serve-many audit API: one fitted detector screening a fleet of models.

This is the MLaaS-audit deployment story from the paper's introduction turned
into a batch service: fit (or load) a BPROM detector once, then submit whole
vendor catalogues for concurrent black-box screening.  Per-model prompting
seeds are derived from the *catalogue key* (not the model name, which vendors
may reuse), so a batch audit returns exactly the same verdicts as inspecting
each model alone under its key — and duplicate-named entries never share a
seed.  For a streaming front-end over the same verdicts see
:class:`~repro.runtime.service_async.AsyncAuditService`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.config import RuntimeConfig
from repro.core.detector import BpromDetector, DetectionResult
from repro.datasets.base import ImageDataset
from repro.models.classifier import ImageClassifier
from repro.prompting.blackbox import QueryFunction
from repro.runtime.executor import ParallelExecutor


def resolve_executor(
    detector: BpromDetector, runtime: Optional[RuntimeConfig]
) -> ParallelExecutor:
    """The executor an audit service should run on: the runtime's if one is
    given, otherwise the detector's own (shared by both service front-ends)."""
    if runtime is not None:
        return ParallelExecutor.from_config(runtime)
    return detector.executor


@dataclass
class AuditVerdict:
    """One row of an audit report."""

    name: str
    backdoor_score: float
    is_backdoored: bool
    prompted_accuracy: float
    #: black-box query budget spent prompting this model (images queried)
    query_count: int = 0
    #: round-trips to the model's query endpoint
    query_calls: int = 0

    @property
    def verdict(self) -> str:
        return "reject" if self.is_backdoored else "accept"


class AuditService:
    """Batch front-end over a fitted :class:`BpromDetector`.

    Typical usage::

        service = AuditService.from_saved("artifacts/detector", runtime=RuntimeConfig(workers=4))
        report = service.audit({"vendor-a": model_a, "vendor-b": model_b})
    """

    def __init__(
        self,
        detector: BpromDetector,
        runtime: Optional[RuntimeConfig] = None,
    ) -> None:
        self.detector = detector
        self.executor = resolve_executor(detector, runtime)

    @classmethod
    def from_saved(
        cls,
        path: Union[str, Path],
        runtime: Optional[RuntimeConfig] = None,
    ) -> "AuditService":
        """Stand up a service from a detector artifact written by ``save()``."""
        return cls(BpromDetector.load(path, runtime=runtime), runtime=runtime)

    def inspect_many(
        self,
        suspicious_models: Sequence[ImageClassifier],
        query_functions: Optional[Sequence[Optional[QueryFunction]]] = None,
        target_eval: Optional[ImageDataset] = None,
        keys: Optional[Sequence[Optional[str]]] = None,
    ) -> List[DetectionResult]:
        """Concurrently prompt and score a batch of suspicious models.

        ``keys`` carries each model's stable audit identity (the catalogue
        key) into the per-model seed derivation; without it seeds fall back
        to model names.
        """
        return self.detector.inspect_many(
            suspicious_models,
            query_functions=query_functions,
            target_eval=target_eval,
            executor=self.executor,
            keys=keys,
        )

    def audit(
        self,
        catalogue: Dict[str, ImageClassifier],
        query_functions: Optional[Dict[str, QueryFunction]] = None,
    ) -> List[AuditVerdict]:
        """Screen a named catalogue of models; returns one verdict per entry."""
        names = list(catalogue)
        models = [catalogue[name] for name in names]
        functions = None
        if query_functions is not None:
            functions = [query_functions.get(name) for name in names]
        # seed on the catalogue key, not model.name: vendors reuse names, and
        # duplicate-named entries must not share visual-prompt seeds
        results = self.inspect_many(models, query_functions=functions, keys=names)
        return [
            AuditVerdict(
                name=name,
                backdoor_score=result.backdoor_score,
                is_backdoored=result.is_backdoored,
                prompted_accuracy=result.prompted_accuracy,
                query_count=result.query_count,
                query_calls=result.query_calls,
            )
            for name, result in zip(names, results)
        ]
