"""Async/streaming audit service: verdicts yielded as each model finishes.

The synchronous :class:`~repro.runtime.service.AuditService` returns the whole
report only after the slowest model is scored.  An MLaaS auditor screening a
large vendor catalogue wants to start quarantining compromised models as soon
as their individual verdicts land, while the queue keeps the workers fed —
that is this module's :class:`AsyncAuditService`:

* ``submit(key, model)`` enqueues one audit job and returns an
  :class:`AuditJob` handle;
* ``as_completed()`` drains submitted jobs in completion order;
* ``stream(catalogue)`` is the one-shot form: a generator yielding one
  :class:`~repro.runtime.service.AuditVerdict` per entry as models finish.

In-flight work is bounded by ``max_in_flight`` (from the argument, the
:class:`~repro.config.RuntimeConfig`, or 2x the executor's workers):
``submit`` blocks while the cap is reached and ``stream`` never has more than
``max_in_flight`` unconsumed jobs outstanding, so an arbitrarily large
catalogue streams in constant memory.

Determinism: each job's prompting seed derives from its catalogue key via
``BpromDetector.inspect(seed_key=...)`` — the exact derivation the
synchronous ``AuditService.audit`` uses — so the verdicts are bit-identical
to the batch path; only arrival order differs.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.config import RuntimeConfig
from repro.core.detector import BpromDetector
from repro.prompting.blackbox import QueryFunction
from repro.models.classifier import ImageClassifier
from repro.runtime.executor import ExecutorSession, ParallelExecutor
from repro.runtime.service import AuditVerdict, resolve_executor
from repro.runtime.verdict_cache import VerdictCache, detector_digest
from repro.obs.trace import TraceContext
from repro.runtime.workers import DetectorRef, _audit_task, _ref_audit_task, _traced_task


def _cached_audit_task(cache: VerdictCache, cache_key, name: str, task, *args) -> AuditVerdict:
    """Run one audit task through the cache's store tier, in the worker.

    Module-level (and the cache drops its in-memory/in-flight state when
    pickled) so process-backend executors can ship it; the advisory-lock
    single flight inside :meth:`VerdictCache.compute_through_store` is what
    keeps two racing *processes* down to one inspection.
    """
    return cache.compute_through_store(cache_key, name, lambda: task(*args))


@dataclass
class AuditJob:
    """Handle to one queued audit: the catalogue key plus its pending verdict."""

    key: str
    future: "Future[AuditVerdict]" = field(repr=False)

    @property
    def done(self) -> bool:
        return self.future.done()

    def result(self, timeout: Optional[float] = None) -> AuditVerdict:
        """Block until the verdict is available (re-raises task exceptions)."""
        return self.future.result(timeout)


class SessionLifecycleMixin:
    """Lazy, lock-guarded lifecycle of one long-lived executor session.

    Shared by every job-queue front-end over a :class:`ParallelExecutor`
    (this module's :class:`AsyncAuditService`, the gateway's MNTD sibling):
    the session opens on first submit — concurrent first submits must not
    each open a pool — stays alive across submissions, and :meth:`close`
    drains it.  Hosts expose an ``executor`` attribute and call
    :meth:`_init_session` from their constructor.

    Alternatively a host is handed a *shared* session (the gateway's
    :class:`~repro.runtime.workers.WorkerPool` serves one session to every
    tenant): then no session of our own is ever opened and :meth:`close`
    leaves the shared pool alone — its owner closes it.
    """

    executor: "ParallelExecutor"

    def _init_session(self, shared: Optional[ExecutorSession] = None) -> None:
        self._session: Optional[ExecutorSession] = None
        self._session_cm = None
        self._session_shared = shared
        self._session_lock = threading.Lock()

    def _ensure_session(self) -> ExecutorSession:
        if self._session_shared is not None:
            return self._session_shared
        with self._session_lock:
            if self._session is None:
                self._session_cm = self.executor.session()
                self._session = self._session_cm.__enter__()
            return self._session

    def close(self) -> None:
        """Drain outstanding jobs and shut the worker pool down (owned
        sessions only — a shared session belongs to its pool)."""
        if self._session_cm is not None:
            try:
                self._session_cm.__exit__(None, None, None)
            finally:
                self._session_cm = None
                self._session = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncAuditService(SessionLifecycleMixin):
    """Job-queue front-end over a fitted :class:`BpromDetector`.

    Typical streaming usage::

        service = AsyncAuditService.from_saved(path, runtime=RuntimeConfig(workers=4))
        for verdict in service.stream(catalogue):
            quarantine(verdict) if verdict.is_backdoored else release(verdict)

    or incremental submission (e.g. catalogue entries arriving over time)::

        with AsyncAuditService(detector) as service:
            for key, model in incoming():
                service.submit(key, model)          # blocks at max_in_flight
            for job in service.as_completed():
                handle(job.key, job.result())
    """

    def __init__(
        self,
        detector: BpromDetector,
        runtime: Optional[RuntimeConfig] = None,
        max_in_flight: Optional[int] = None,
        verdict_cache: Optional[VerdictCache] = None,
        detector_ref: Optional[DetectorRef] = None,
        session: Optional[ExecutorSession] = None,
    ) -> None:
        self.detector = detector
        #: when set, tasks ship this pickle-cheap store address instead of
        #: the detector object — process-pool workers hydrate from the shared
        #: store (:func:`repro.runtime.workers.resolve_detector`)
        self.detector_ref = detector_ref
        self.executor = resolve_executor(detector, runtime)
        if verdict_cache is None and runtime is not None and runtime.verdict_cache:
            verdict_cache = VerdictCache(runtime=runtime)
        self.verdict_cache = verdict_cache
        #: content digest of the fitted detector — the cache-key coordinate a
        #: refit bumps (gateway tenants key on their registry entry instead)
        self.detector_digest = (
            detector_digest(detector) if verdict_cache is not None else None
        )
        if max_in_flight is None and runtime is not None:
            max_in_flight = runtime.max_in_flight
        if max_in_flight is None:
            max_in_flight = 2 * self.executor.workers
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self.max_in_flight = int(max_in_flight)
        self._init_session(shared=session)
        #: submitted jobs awaiting :meth:`as_completed`; retained until drained
        self._jobs: Dict[Future, AuditJob] = {}
        #: futures still computing — maintained by done-callbacks so
        #: ``in_flight`` is O(in-flight), not O(everything ever submitted)
        self._running: Set[Future] = set()
        #: counting semaphore enforcing the in-flight cap; correct even with
        #: multiple producer threads calling submit() concurrently
        self._slots = threading.Semaphore(self.max_in_flight)
        self._lock = threading.Lock()

    @classmethod
    def from_saved(
        cls,
        path: Union[str, Path],
        runtime: Optional[RuntimeConfig] = None,
        max_in_flight: Optional[int] = None,
    ) -> "AsyncAuditService":
        """Stand up a streaming service from a detector artifact on disk."""
        return cls(
            BpromDetector.load(path, runtime=runtime),
            runtime=runtime,
            max_in_flight=max_in_flight,
        )

    # session lifecycle (_ensure_session/close/context manager) comes from
    # SessionLifecycleMixin

    def _task(
        self, key: str, model: ImageClassifier, query_function: Optional[QueryFunction]
    ) -> Tuple:
        """The ``(fn, *args)`` tuple one audit submits to the executor.

        Both shapes are module-level callables (process backends pickle tasks
        by qualified name); the ref shape additionally keeps the *arguments*
        pickle-cheap by shipping a store address instead of the detector.
        """
        if self.detector_ref is not None:
            return (_ref_audit_task, self.detector_ref, key, model, query_function)
        return (_audit_task, self.detector, key, model, query_function)

    # -- job queue ------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Number of submitted jobs that have not finished computing."""
        with self._lock:
            return len(self._running)

    def _mark_done(self, future: Future) -> None:
        with self._lock:
            self._running.discard(future)
        self._slots.release()

    def submit(
        self,
        key: str,
        model: ImageClassifier,
        query_function: Optional[QueryFunction] = None,
        verdict_cache: Optional[VerdictCache] = None,
        cache_key: Optional[Dict] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> AuditJob:
        """Enqueue one audit; blocks while ``max_in_flight`` jobs are running.

        The backpressure keeps producers (several threads may call ``submit``
        concurrently) from flooding the pool's queue; with a serial executor
        the job completes synchronously and ``submit`` never blocks.
        Finished jobs are retained until :meth:`as_completed` drains them.

        With the service's own :class:`VerdictCache` configured, warm
        submissions return an already-completed job without consuming an
        in-flight slot, and concurrent submissions of one fingerprint share
        a single inspection.  Passing ``verdict_cache`` *and* ``cache_key``
        explicitly is the gateway's wrap-only mode: the caller owns lookup
        and dedup, this service only routes the task through the cache's
        store tier (cross-process single flight + write-back).
        """
        if verdict_cache is None and self.verdict_cache is not None and self.verdict_cache.enabled:
            return self._submit_cached(key, model, query_function)
        session = self._ensure_session()
        task = self._task(key, model, query_function)
        if verdict_cache is not None and cache_key is not None:
            task = (_cached_audit_task, verdict_cache, cache_key, key, *task)
        if trace_ctx is not None:
            # outermost wrapper: the worker-side sink must cover the cache
            # read-through too, and every layer stays a module-level callable
            # (process backends pickle tasks by qualified name)
            task = (_traced_task, trace_ctx, *task)
        self._slots.acquire()  # released by _mark_done when the job finishes
        try:
            future = session.submit(*task)
        except BaseException:
            self._slots.release()
            raise
        job = AuditJob(key=key, future=future)
        with self._lock:
            self._jobs[future] = job
            self._running.add(future)
        # runs immediately (in this thread) if the future is already done,
        # e.g. on the serial backend — safe because the add happened above
        future.add_done_callback(self._mark_done)
        return job

    def _register_resolved(self, key: str, future: Future) -> AuditJob:
        """Book a slot-free job (cache hit / dedup follower) into the queue."""
        job = AuditJob(key=key, future=future)
        with self._lock:
            self._jobs[future] = job
        return job

    def _finish_claim(self, token, future: Future) -> None:
        """Resolve a leader's shared in-flight future from its job future."""
        exc = future.exception()
        if exc is not None:
            self.verdict_cache.fail(token, exc)
        else:
            self.verdict_cache.complete(token, future.result())

    def _submit_cached(
        self, key: str, model: ImageClassifier, query_function: Optional[QueryFunction]
    ) -> AuditJob:
        """The full caching path: lookup, in-flight dedup, or lead an audit."""
        cache = self.verdict_cache
        precision = getattr(getattr(self.detector, "runtime", None), "precision", "float64")
        cache_key = cache.key_for(model, self.detector_digest, precision)
        verdict = cache.lookup(cache_key, key)
        if verdict is not None:
            future: Future = Future()
            future.set_result(verdict)
            return self._register_resolved(key, future)
        claim = cache.begin(cache_key, key)
        if claim[0] == "verdict":
            future = Future()
            future.set_result(claim[1])
            return self._register_resolved(key, future)
        if claim[0] == "follower":
            shared = claim[1]
            future = Future()

            def _chain(done: Future) -> None:
                exc = done.exception()
                if exc is not None:
                    future.set_exception(exc)
                else:
                    future.set_result(cache.served(done.result(), key, "dedup"))

            shared.add_done_callback(_chain)
            return self._register_resolved(key, future)
        token = claim[1]
        session = self._ensure_session()
        self._slots.acquire()
        try:
            future = session.submit(
                _cached_audit_task,
                cache,
                cache_key,
                key,
                *self._task(key, model, query_function),
            )
        except BaseException as exc:
            self._slots.release()
            cache.fail(token, exc)
            raise
        job = AuditJob(key=key, future=future)
        with self._lock:
            self._jobs[future] = job
            self._running.add(future)
        future.add_done_callback(self._mark_done)
        future.add_done_callback(lambda done: self._finish_claim(token, done))
        return job

    def reap(self, job: AuditJob) -> None:
        """Drop one job from the retained queue without yielding it.

        For callers that track completion themselves — the audit gateway
        merges several services' verdict streams and consumes job futures
        directly, so it reaps each job as it harvests the verdict; otherwise
        the submitted-jobs queue would retain every handle until a (never
        called) :meth:`as_completed` drained it.
        """
        with self._lock:
            self._jobs.pop(job.future, None)

    def as_completed(self) -> Iterator[AuditJob]:
        """Yield submitted jobs in completion order until the queue drains.

        Each job is yielded exactly once.  Iteration ends when the job queue
        is observed empty: jobs submitted from *this* thread while iterating
        are picked up, but with concurrent producer threads an empty-queue
        moment ends the iteration early — iterate after the producers finish,
        or call ``as_completed`` again (undrained jobs are retained).
        """
        while True:
            with self._lock:
                pending = list(self._jobs)
            if not pending:
                return
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            # preserve submission order among simultaneously-done jobs so the
            # serial backend yields deterministically
            for future in [f for f in pending if f in done]:
                with self._lock:
                    job = self._jobs.pop(future, None)
                if job is not None:
                    yield job

    # -- one-shot streaming ---------------------------------------------------
    def stream(
        self,
        catalogue: Dict[str, ImageClassifier],
        query_functions: Optional[Dict[str, QueryFunction]] = None,
    ) -> Iterator[AuditVerdict]:
        """Screen a catalogue, yielding each verdict as its model finishes.

        Bit-identical to ``AuditService.audit`` on the same catalogue (the
        per-key seed derivation is shared); only the yield order depends on
        completion timing.  At most ``max_in_flight`` entries are outstanding
        at once, so memory stays constant in the catalogue size.  Uses its
        own pool session, independent of :meth:`submit` state.

        With the service's :class:`VerdictCache` configured, warm entries
        are served without touching the worker pool, and cold inspections go
        through the cache's store tier (cross-process single flight +
        write-back); verdict arrival order then also depends on cache state.
        """
        cache = self.verdict_cache
        use_cache = cache is not None and cache.enabled
        precision = getattr(getattr(self.detector, "runtime", None), "precision", "float64")
        backlog = deque(catalogue.items())
        warm: deque = deque()  # cache hits awaiting yield, in submission order
        # a shared (gateway worker-pool) session outlives this stream, so it
        # must not be closed on exit; an owned session opens per call
        session_scope = (
            nullcontext(self._session_shared)
            if self._session_shared is not None
            else self.executor.session()
        )
        with session_scope as session:
            pending: Dict[Future, str] = {}
            # a poolless session runs each submit inline, so a wider window
            # would audit max_in_flight models before the first yield —
            # window 1 keeps time-to-first-verdict at one audit
            window = self.max_in_flight if session.parallel else 1

            def top_up() -> None:
                while backlog and len(pending) < window:
                    key, model = backlog.popleft()
                    query_function = (
                        query_functions.get(key) if query_functions is not None else None
                    )
                    if use_cache:
                        cache_key = cache.key_for(model, self.detector_digest, precision)
                        verdict = cache.lookup(cache_key, key)
                        if verdict is not None:
                            warm.append(verdict)
                            continue
                        cache.record_miss()
                        future = session.submit(
                            _cached_audit_task,
                            cache,
                            cache_key,
                            key,
                            *self._task(key, model, query_function),
                        )
                    else:
                        future = session.submit(*self._task(key, model, query_function))
                    pending[future] = key

            while backlog or pending or warm:
                top_up()
                while warm:
                    yield warm.popleft()
                if not pending:
                    continue
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for future in [f for f in list(pending) if f in done]:
                    del pending[future]
                    # refill the freed slot before yielding: the workers keep
                    # auditing while the consumer processes this verdict
                    top_up()
                    yield future.result()

    def audit_streaming(
        self,
        catalogue: Dict[str, ImageClassifier],
        query_functions: Optional[Dict[str, QueryFunction]] = None,
    ) -> List[AuditVerdict]:
        """Collect :meth:`stream` into a list ordered by catalogue key order.

        Convenience for callers that want the async machinery (bounded
        memory, overlapped prompting) but a batch-shaped report.
        """
        by_key = {verdict.name: verdict for verdict in self.stream(catalogue, query_functions)}
        return [by_key[key] for key in catalogue]
