"""Async/streaming audit service: verdicts yielded as each model finishes.

The synchronous :class:`~repro.runtime.service.AuditService` returns the whole
report only after the slowest model is scored.  An MLaaS auditor screening a
large vendor catalogue wants to start quarantining compromised models as soon
as their individual verdicts land, while the queue keeps the workers fed —
that is this module's :class:`AsyncAuditService`:

* ``submit(key, model)`` enqueues one audit job and returns an
  :class:`AuditJob` handle;
* ``as_completed()`` drains submitted jobs in completion order;
* ``stream(catalogue)`` is the one-shot form: a generator yielding one
  :class:`~repro.runtime.service.AuditVerdict` per entry as models finish.

In-flight work is bounded by ``max_in_flight`` (from the argument, the
:class:`~repro.config.RuntimeConfig`, or 2x the executor's workers):
``submit`` blocks while the cap is reached and ``stream`` never has more than
``max_in_flight`` unconsumed jobs outstanding, so an arbitrarily large
catalogue streams in constant memory.

Determinism: each job's prompting seed derives from its catalogue key via
``BpromDetector.inspect(seed_key=...)`` — the exact derivation the
synchronous ``AuditService.audit`` uses — so the verdicts are bit-identical
to the batch path; only arrival order differs.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.config import RuntimeConfig
from repro.core.detector import BpromDetector
from repro.prompting.blackbox import QueryFunction
from repro.models.classifier import ImageClassifier
from repro.runtime.executor import ExecutorSession, ParallelExecutor
from repro.runtime.service import AuditVerdict, resolve_executor


def _audit_task(
    detector: BpromDetector,
    key: str,
    model: ImageClassifier,
    query_function: Optional[QueryFunction],
) -> AuditVerdict:
    """Module-level task wrapper so process-backend executors can pickle it."""
    result = detector.inspect(model, query_function=query_function, seed_key=key)
    return AuditVerdict(
        name=key,
        backdoor_score=result.backdoor_score,
        is_backdoored=result.is_backdoored,
        prompted_accuracy=result.prompted_accuracy,
        query_count=result.query_count,
        query_calls=result.query_calls,
    )


@dataclass
class AuditJob:
    """Handle to one queued audit: the catalogue key plus its pending verdict."""

    key: str
    future: "Future[AuditVerdict]" = field(repr=False)

    @property
    def done(self) -> bool:
        return self.future.done()

    def result(self, timeout: Optional[float] = None) -> AuditVerdict:
        """Block until the verdict is available (re-raises task exceptions)."""
        return self.future.result(timeout)


class SessionLifecycleMixin:
    """Lazy, lock-guarded lifecycle of one long-lived executor session.

    Shared by every job-queue front-end over a :class:`ParallelExecutor`
    (this module's :class:`AsyncAuditService`, the gateway's MNTD sibling):
    the session opens on first submit — concurrent first submits must not
    each open a pool — stays alive across submissions, and :meth:`close`
    drains it.  Hosts expose an ``executor`` attribute and call
    :meth:`_init_session` from their constructor.
    """

    executor: "ParallelExecutor"

    def _init_session(self) -> None:
        self._session: Optional[ExecutorSession] = None
        self._session_cm = None
        self._session_lock = threading.Lock()

    def _ensure_session(self) -> ExecutorSession:
        with self._session_lock:
            if self._session is None:
                self._session_cm = self.executor.session()
                self._session = self._session_cm.__enter__()
            return self._session

    def close(self) -> None:
        """Drain outstanding jobs and shut the worker pool down."""
        if self._session_cm is not None:
            try:
                self._session_cm.__exit__(None, None, None)
            finally:
                self._session_cm = None
                self._session = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncAuditService(SessionLifecycleMixin):
    """Job-queue front-end over a fitted :class:`BpromDetector`.

    Typical streaming usage::

        service = AsyncAuditService.from_saved(path, runtime=RuntimeConfig(workers=4))
        for verdict in service.stream(catalogue):
            quarantine(verdict) if verdict.is_backdoored else release(verdict)

    or incremental submission (e.g. catalogue entries arriving over time)::

        with AsyncAuditService(detector) as service:
            for key, model in incoming():
                service.submit(key, model)          # blocks at max_in_flight
            for job in service.as_completed():
                handle(job.key, job.result())
    """

    def __init__(
        self,
        detector: BpromDetector,
        runtime: Optional[RuntimeConfig] = None,
        max_in_flight: Optional[int] = None,
    ) -> None:
        self.detector = detector
        self.executor = resolve_executor(detector, runtime)
        if max_in_flight is None and runtime is not None:
            max_in_flight = runtime.max_in_flight
        if max_in_flight is None:
            max_in_flight = 2 * self.executor.workers
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self.max_in_flight = int(max_in_flight)
        self._init_session()
        #: submitted jobs awaiting :meth:`as_completed`; retained until drained
        self._jobs: Dict[Future, AuditJob] = {}
        #: futures still computing — maintained by done-callbacks so
        #: ``in_flight`` is O(in-flight), not O(everything ever submitted)
        self._running: Set[Future] = set()
        #: counting semaphore enforcing the in-flight cap; correct even with
        #: multiple producer threads calling submit() concurrently
        self._slots = threading.Semaphore(self.max_in_flight)
        self._lock = threading.Lock()

    @classmethod
    def from_saved(
        cls,
        path: Union[str, Path],
        runtime: Optional[RuntimeConfig] = None,
        max_in_flight: Optional[int] = None,
    ) -> "AsyncAuditService":
        """Stand up a streaming service from a detector artifact on disk."""
        return cls(
            BpromDetector.load(path, runtime=runtime),
            runtime=runtime,
            max_in_flight=max_in_flight,
        )

    # session lifecycle (_ensure_session/close/context manager) comes from
    # SessionLifecycleMixin

    # -- job queue ------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Number of submitted jobs that have not finished computing."""
        with self._lock:
            return len(self._running)

    def _mark_done(self, future: Future) -> None:
        with self._lock:
            self._running.discard(future)
        self._slots.release()

    def submit(
        self,
        key: str,
        model: ImageClassifier,
        query_function: Optional[QueryFunction] = None,
    ) -> AuditJob:
        """Enqueue one audit; blocks while ``max_in_flight`` jobs are running.

        The backpressure keeps producers (several threads may call ``submit``
        concurrently) from flooding the pool's queue; with a serial executor
        the job completes synchronously and ``submit`` never blocks.
        Finished jobs are retained until :meth:`as_completed` drains them.
        """
        session = self._ensure_session()
        self._slots.acquire()  # released by _mark_done when the job finishes
        try:
            future = session.submit(_audit_task, self.detector, key, model, query_function)
        except BaseException:
            self._slots.release()
            raise
        job = AuditJob(key=key, future=future)
        with self._lock:
            self._jobs[future] = job
            self._running.add(future)
        # runs immediately (in this thread) if the future is already done,
        # e.g. on the serial backend — safe because the add happened above
        future.add_done_callback(self._mark_done)
        return job

    def reap(self, job: AuditJob) -> None:
        """Drop one job from the retained queue without yielding it.

        For callers that track completion themselves — the audit gateway
        merges several services' verdict streams and consumes job futures
        directly, so it reaps each job as it harvests the verdict; otherwise
        the submitted-jobs queue would retain every handle until a (never
        called) :meth:`as_completed` drained it.
        """
        with self._lock:
            self._jobs.pop(job.future, None)

    def as_completed(self) -> Iterator[AuditJob]:
        """Yield submitted jobs in completion order until the queue drains.

        Each job is yielded exactly once.  Iteration ends when the job queue
        is observed empty: jobs submitted from *this* thread while iterating
        are picked up, but with concurrent producer threads an empty-queue
        moment ends the iteration early — iterate after the producers finish,
        or call ``as_completed`` again (undrained jobs are retained).
        """
        while True:
            with self._lock:
                pending = list(self._jobs)
            if not pending:
                return
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            # preserve submission order among simultaneously-done jobs so the
            # serial backend yields deterministically
            for future in [f for f in pending if f in done]:
                with self._lock:
                    job = self._jobs.pop(future, None)
                if job is not None:
                    yield job

    # -- one-shot streaming ---------------------------------------------------
    def stream(
        self,
        catalogue: Dict[str, ImageClassifier],
        query_functions: Optional[Dict[str, QueryFunction]] = None,
    ) -> Iterator[AuditVerdict]:
        """Screen a catalogue, yielding each verdict as its model finishes.

        Bit-identical to ``AuditService.audit`` on the same catalogue (the
        per-key seed derivation is shared); only the yield order depends on
        completion timing.  At most ``max_in_flight`` entries are outstanding
        at once, so memory stays constant in the catalogue size.  Uses its
        own pool session, independent of :meth:`submit` state.
        """
        backlog = deque(catalogue.items())
        with self.executor.session() as session:
            pending: Dict[Future, str] = {}
            # a poolless session runs each submit inline, so a wider window
            # would audit max_in_flight models before the first yield —
            # window 1 keeps time-to-first-verdict at one audit
            window = self.max_in_flight if session.parallel else 1

            def top_up() -> None:
                while backlog and len(pending) < window:
                    key, model = backlog.popleft()
                    query_function = (
                        query_functions.get(key) if query_functions is not None else None
                    )
                    future = session.submit(
                        _audit_task, self.detector, key, model, query_function
                    )
                    pending[future] = key

            while backlog or pending:
                top_up()
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for future in [f for f in list(pending) if f in done]:
                    del pending[future]
                    # refill the freed slot before yielding: the workers keep
                    # auditing while the consumer processes this verdict
                    top_up()
                    yield future.result()

    def audit_streaming(
        self,
        catalogue: Dict[str, ImageClassifier],
        query_functions: Optional[Dict[str, QueryFunction]] = None,
    ) -> List[AuditVerdict]:
        """Collect :meth:`stream` into a list ordered by catalogue key order.

        Convenience for callers that want the async machinery (bounded
        memory, overlapped prompting) but a batch-shaped report.
        """
        by_key = {verdict.name: verdict for verdict in self.stream(catalogue, query_functions)}
        return [by_key[key] for key in catalogue]
