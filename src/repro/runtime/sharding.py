"""Sharded artifact store: one cache federated across multiple store roots.

Scaling the suspicious zoo past one directory (or one machine's disk) means
spreading artifacts across several roots while keeping the single-store
programming model.  :class:`ShardedArtifactStore` subclasses
:class:`~repro.runtime.store.ArtifactStore`, so every consumer of the store
interface — ``ExperimentContext``, ``BpromDetector.fit``, the MNTD baseline's
shadow pools, ``StagedPipeline`` — works unchanged:

* **writes** land on the key's *home shard*, selected deterministically from
  the key hash, so concurrent producers agree on placement without
  coordination;
* **reads** probe the home shard first and then fall through to every other
  shard, so artifacts are found wherever they live — a store warmed as a
  single root can be mounted as one shard of many, and shard lists may be
  reordered or extended without invalidating anything;
* ``rebalance()`` migrates stray artifacts to their home shards (after a
  shard list changes) and ``gc()`` sweeps leftover temp directories and
  manifest-less corpses.

Hit/miss statistics are kept both in aggregate (on the sharded store itself)
and per shard (on the federated child stores), which is what the serving
dashboards need to spot a cold or missing shard.
"""

from __future__ import annotations

import os
import shutil
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.runtime.store import (
    _MANIFEST,
    DEFAULT_GRACE_SECONDS,
    LOCKS_DIRNAME,
    MISS,
    Artifact,
    ArtifactStore,
    PathLike,
    key_hash,
)


class ShardedArtifactStore(ArtifactStore):
    """Federates several :class:`ArtifactStore` roots behind one interface.

    ``shard_dirs`` is an ordered list of root directories; a key's home shard
    is ``int(key_hash, 16) % len(shards)``.  The order therefore matters for
    *placement* but never for *visibility*: reads fall through across all
    shards.
    """

    def __init__(self, shard_dirs: Sequence[PathLike], enabled: bool = True) -> None:
        if isinstance(shard_dirs, (str, Path)):  # one root, not a char sequence
            shard_dirs = [shard_dirs]
        roots = [Path(directory) for directory in shard_dirs]
        if not roots:
            raise ValueError("ShardedArtifactStore requires at least one shard directory")
        # resolve before comparing: two spellings (or symlink aliases) of one
        # directory would make rebalance() treat an artifact as its own
        # duplicate and delete the only copy
        if len({str(root.resolve()) for root in roots}) != len(roots):
            raise ValueError(f"duplicate shard directories: {[str(r) for r in roots]}")
        super().__init__(roots[0], enabled=enabled)
        self.shards: List[ArtifactStore] = [
            ArtifactStore(root, enabled=self.enabled) for root in roots
        ]

    # -- addressing -----------------------------------------------------------
    def shard_index(self, key: Any) -> int:
        """Deterministic home-shard index of a key (stable across processes)."""
        return int(key_hash(key), 16) % len(self.shards)

    def shard_for(self, key: Any) -> ArtifactStore:
        """The home shard of a key: where new writes for it land."""
        return self.shards[self.shard_index(key)]

    def directory_for(self, kind: str, key: Any) -> Path:
        return self.shard_for(key).directory_for(kind, key)

    def lock_path(self, kind: str, key: Any) -> Path:
        # the home shard is deterministic across processes, so every worker
        # that shares the shard list agrees on where a key's lock lives
        return self.shard_for(key).lock_path(kind, key)

    def _locate(self, kind: str, key: Any) -> Optional[ArtifactStore]:
        """The shard currently holding the artifact (home first), if any."""
        home = self.shard_index(key)
        for index in range(len(self.shards)):
            shard = self.shards[(home + index) % len(self.shards)]
            if shard.contains(kind, key):
                return shard
        return None

    def contains(self, kind: str, key: Any) -> bool:
        if not self.enabled:
            return False
        return self._locate(kind, key) is not None

    # -- read / write ---------------------------------------------------------
    def open_read(self, kind: str, key: Any) -> Artifact:
        shard = self._locate(kind, key)
        if shard is None:
            raise KeyError(
                f"no {kind!r} artifact for key hash {key_hash(key)} in any of "
                f"{len(self.shards)} shards"
            )
        return shard.open_read(kind, key)

    # open_write is inherited: it resolves through directory_for, which points
    # at the home shard, and keeps the same atomic temp-dir-then-rename path.

    def try_load(self, kind: str, key: Any, load: Callable[[Artifact], Any]) -> Any:
        """Read-through lookup; counts aggregate and per-shard hits/misses.

        Probes shards in home-first order and keeps going past a corrupt copy
        (which the owning shard discards), so an intact replica on another
        shard still serves the read.
        """
        if not self.enabled:
            self.misses += 1
            return MISS
        home = self.shard_index(key)
        probed = False
        for offset in range(len(self.shards)):
            shard = self.shards[(home + offset) % len(self.shards)]
            if not shard.contains(kind, key):
                continue
            probed = True
            value = shard.try_load(kind, key, load)
            if value is not MISS:
                self.hits += 1
                return value
            # corrupt copy discarded (and counted) by that shard; fall through
        self.misses += 1
        if not probed:  # absent everywhere: charge the home shard
            self.shard_for(key).misses += 1
        return MISS

    def delete(self, kind: str, key: Any) -> bool:
        """Remove one artifact from *every* shard holding a copy.

        Reads fall through across shards, so deleting only the home copy
        would leave a stray replica (e.g. pre-rebalance) resurrecting the
        artifact on the next lookup.
        """
        deleted = False
        for shard in self.shards:
            deleted = shard.delete(kind, key) or deleted
        return deleted

    # -- statistics -----------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-shard ``{root: {hits, misses, artifacts}}`` serving statistics."""
        payload: Dict[str, Dict[str, int]] = {}
        for shard in self.shards:
            artifacts = sum(1 for _ in self._iter_artifact_dirs(shard))
            payload[str(shard.root)] = {
                "hits": shard.hits,
                "misses": shard.misses,
                "artifacts": artifacts,
            }
        return payload

    @staticmethod
    def _iter_kind_dirs(shard: ArtifactStore) -> Iterator[Path]:
        """Yield every artifact-kind directory of a shard (skips ``.locks`` etc.)."""
        if shard.root is None or not shard.root.exists():
            return
        for kind_dir in sorted(path for path in shard.root.iterdir() if path.is_dir()):
            if kind_dir.name.startswith("."):
                continue  # .locks and friends are not artifact kinds
            yield kind_dir

    @classmethod
    def _iter_artifact_dirs(cls, shard: ArtifactStore) -> Iterator[Tuple[str, Path]]:
        """Yield ``(kind, directory)`` for every complete artifact in a shard."""
        for kind_dir in cls._iter_kind_dirs(shard):
            for artifact_dir in sorted(path for path in kind_dir.iterdir() if path.is_dir()):
                if artifact_dir.name.startswith(".tmp-"):
                    continue
                if (artifact_dir / f"{_MANIFEST}.json").exists():
                    yield kind_dir.name, artifact_dir

    # -- maintenance ----------------------------------------------------------
    # maintenance_lock is inherited: the sharded store's root *is* its first
    # shard, which every process sharing the shard list agrees on.  Registry
    # writers do not take this lock — in-flight ``open_write`` temp
    # directories are instead protected by the maintenance grace period.

    def touch(self, kind: str, key: Any) -> bool:
        """Stamp every shard's copy (reads fall through, so any may serve)."""
        touched = False
        for shard in self.shards:
            touched = shard.touch(kind, key) or touched
        return touched

    def _gc_candidates(self, kind: str) -> Iterator[Tuple[Path, Path]]:
        """All shards' ``kind`` artifacts, each with its *home-shard* lock path.

        The lock must live on the home shard regardless of which shard
        currently holds the artifact (a pre-rebalance stray included):
        fitters and single-flight loaders compute their per-key lock through
        :meth:`lock_path`, which resolves to the home shard — GC must check
        the same file or it would evict out from under a live holder.
        """
        for shard in self.shards:
            for artifact_dir, _ in ArtifactStore._gc_candidates(shard, kind):
                home = int(artifact_dir.name, 16) % len(self.shards)
                yield artifact_dir, (
                    Path(self.shards[home].root)
                    / LOCKS_DIRNAME
                    / f"{kind}-{artifact_dir.name}.lock"
                )

    @staticmethod
    def _in_grace(path: Path, grace_seconds: float) -> bool:
        """Whether a temp directory is young enough to belong to a live writer."""
        if grace_seconds <= 0:
            return False
        try:
            return (time.time() - path.stat().st_mtime) < grace_seconds
        except OSError:
            return True  # vanished mid-scan: its writer just renamed it into place

    def rebalance(self, lock_wait_seconds: float = 60.0) -> Dict[str, int]:
        """Migrate every artifact to its home shard.

        The artifact directory name *is* the key hash, so homes are computed
        without reading manifests.  First-wins on conflict: if the home shard
        already holds the artifact, the stray copy is dropped.  Run this after
        changing the shard list.  Concurrent maintenance passes are excluded
        by the store's advisory :meth:`maintenance_lock` (waiting up to
        ``lock_wait_seconds``); concurrent *writers* are safe because a
        half-written artifact only ever exists under a ``.tmp-`` name, which
        rebalance never migrates.  Returns ``{"moved": ..., "kept": ...,
        "dropped_duplicates": ...}``.
        """
        moved = kept = dropped = 0
        with self.maintenance_lock(wait_seconds=lock_wait_seconds):
            # snapshot before moving anything, so an artifact migrated into a
            # later-iterated shard is not revisited (and double-counted)
            snapshot = [
                (index, kind, artifact_dir)
                for index, shard in enumerate(self.shards)
                for kind, artifact_dir in self._iter_artifact_dirs(shard)
            ]
            for index, kind, artifact_dir in snapshot:
                home = int(artifact_dir.name, 16) % len(self.shards)
                if home == index:
                    kept += 1
                    continue
                destination = self.shards[home].root / kind / artifact_dir.name
                if destination.exists():
                    shutil.rmtree(artifact_dir, ignore_errors=True)
                    dropped += 1
                else:
                    destination.parent.mkdir(parents=True, exist_ok=True)
                    # cross-device moves are copy-then-delete, so stage into a
                    # .tmp- name and rename: readers (and a crash) never see a
                    # half-copied directory behind a manifest, and gc() sweeps
                    # an interrupted staging dir
                    temp = destination.parent / f".tmp-{destination.name}-{uuid.uuid4().hex[:8]}"
                    shutil.move(str(artifact_dir), str(temp))
                    os.replace(temp, destination)
                    moved += 1
        return {"moved": moved, "kept": kept, "dropped_duplicates": dropped}

    def gc(
        self,
        grace_seconds: float = DEFAULT_GRACE_SECONDS,
        lock_wait_seconds: float = 60.0,
    ) -> Dict[str, int]:
        """Sweep crash leftovers: temp dirs and manifest-less artifact dirs.

        Safe to run while writers are active: an in-progress ``open_write``
        (or an in-flight registry ``get_or_fit``) only ever exposes a
        ``.tmp-`` directory, and temp directories younger than
        ``grace_seconds`` are left alone — only genuinely abandoned ones are
        collected.  Concurrent maintenance passes are excluded by the store's
        advisory :meth:`maintenance_lock`.  Returns
        ``{"temp_dirs": ..., "corrupt_artifacts": ...}``.
        """
        temp_dirs = corrupt = 0
        with self.maintenance_lock(wait_seconds=lock_wait_seconds):
            for shard in self.shards:
                for kind_dir in self._iter_kind_dirs(shard):
                    for child in sorted(path for path in kind_dir.iterdir() if path.is_dir()):
                        if child.name.startswith(".tmp-"):
                            if self._in_grace(child, grace_seconds):
                                continue  # presumed live writer
                            shutil.rmtree(child, ignore_errors=True)
                            temp_dirs += 1
                        elif not (child / f"{_MANIFEST}.json").exists():
                            shutil.rmtree(child, ignore_errors=True)
                            corrupt += 1
        return {"temp_dirs": temp_dirs, "corrupt_artifacts": corrupt}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        roots = [str(shard.root) for shard in self.shards]
        return (
            f"ShardedArtifactStore(shards={roots}, {state}, "
            f"hits={self.hits}, misses={self.misses})"
        )
