"""Content-addressed, disk-backed artifact store for the staged pipeline.

Artifacts are directories under ``<root>/<kind>/<key-hash>/`` holding ``.npz``
array blobs plus JSON metadata.  Keys are arbitrary JSON-serialisable payloads
(profile dicts, seeds, config knobs, dataset fingerprints); the store hashes
their canonical JSON form, so any change to a parameter that affects an
artefact changes its address.  Writes go to a temporary directory that is
atomically renamed into place, so a crashed or concurrent writer can never
leave a half-written artifact that a reader would mistake for a complete one.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import time
import uuid
import warnings
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.config import RuntimeConfig
from repro.datasets.base import ImageDataset
from repro.obs.metrics import MetricsRegistry, counter_property
from repro.runtime.locks import DEFAULT_STALE_SECONDS, DEFAULT_WAIT_SECONDS, AdvisoryLock

PathLike = Union[str, Path]

#: bump when the on-disk layout of any artifact kind changes incompatibly
STORE_FORMAT_VERSION = 1

#: a path younger than this is presumed to belong to a live writer (or an
#: in-flight reader that just stamped it) and is never collected by the
#: maintenance passes
DEFAULT_GRACE_SECONDS = 300.0


def canonical_key(payload: Any) -> str:
    """Canonical JSON encoding of a key payload (sorted keys, stable floats)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)


def key_hash(payload: Any) -> str:
    """Stable hex digest addressing one artifact."""
    return hashlib.sha256(canonical_key(payload).encode("utf-8")).hexdigest()[:20]


def dataset_fingerprint(dataset: ImageDataset) -> str:
    """Content digest of a dataset (images + labels), used inside key payloads."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(dataset.images).tobytes())
    digest.update(np.ascontiguousarray(dataset.labels).tobytes())
    digest.update(str(dataset.num_classes).encode("utf-8"))
    return digest.hexdigest()[:20]


def state_fingerprint(arrays: Dict[str, np.ndarray]) -> str:
    """Content digest of a state dict (e.g. classifier weights).

    Cache keys derived from model *names* alone collide whenever two
    differently trained models share a name (sweep experiments reuse names
    across poison rates); fingerprinting the weights makes the key follow
    the content.
    """
    digest = hashlib.sha256()
    for key in sorted(arrays):
        digest.update(key.encode("utf-8"))
        digest.update(np.ascontiguousarray(arrays[key]).tobytes())
    return digest.hexdigest()[:20]


class Artifact:
    """One artifact directory: named ``.npz`` array blobs plus JSON documents."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)

    def save_arrays(self, name: str, arrays: Dict[str, np.ndarray]) -> Path:
        path = self.directory / f"{name}.npz"
        np.savez_compressed(path, **arrays)
        return path

    def load_arrays(self, name: str) -> Dict[str, np.ndarray]:
        with np.load(self.directory / f"{name}.npz") as archive:
            return {key: archive[key] for key in archive.files}

    def save_json(self, name: str, payload: Any) -> Path:
        path = self.directory / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=repr))
        return path

    def load_json(self, name: str) -> Any:
        return json.loads((self.directory / f"{name}.json").read_text())

    def has(self, name: str) -> bool:
        return (self.directory / f"{name}.npz").exists() or (
            self.directory / f"{name}.json"
        ).exists()


_MANIFEST = "artifact"  # artifact.json, written into the temp dir before rename

#: per-root directory holding advisory lock files; dot-prefixed so artifact
#: iteration (stats, maintenance) never mistakes it for an artifact kind
LOCKS_DIRNAME = ".locks"

#: what a loader may raise on a genuinely corrupt artifact (truncated blob,
#: invalid npz/JSON, missing member): these — and only these — are treated as
#: a cache miss and rebuilt.  Anything else (TypeError, AttributeError, ...)
#: is a loader bug and propagates instead of masquerading as corruption.
CORRUPT_ARTIFACT_ERRORS = (
    OSError,
    ValueError,  # covers json.JSONDecodeError
    KeyError,
    EOFError,
    zipfile.BadZipFile,
    pickle.UnpicklingError,
)

#: sentinel distinguishing "no artifact" from an artifact whose value is None;
#: returning ``None`` for a miss would make a legitimately-``None`` artefact
#: rebuild forever.  ``MISS`` is the public name for callers of ``try_load``.
_MISS = object()
MISS = _MISS


class ArtifactStore:
    """Persistent cache mapping ``(kind, key payload)`` to artifact directories.

    A disabled store (``enabled=False`` or no root) behaves like an
    always-empty cache: ``contains`` is ``False`` and ``fetch`` always builds.
    """

    #: hit/miss tallies live in the mergeable metrics registry so the
    #: gateway's telemetry dashboard can fold them in; the attribute API and
    #: ``stats()`` shape are unchanged
    hits = counter_property("store.hits")
    misses = counter_property("store.misses")

    def __init__(self, root: Optional[PathLike], enabled: bool = True) -> None:
        self.root = Path(root) if root is not None else None
        self.enabled = bool(enabled) and self.root is not None
        self.metrics = MetricsRegistry()
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_config(cls, runtime: Optional[RuntimeConfig]) -> "ArtifactStore":
        """Build the store a runtime config describes.

        ``shard_dirs`` supersedes ``cache_dir``: configuring shard roots
        returns a :class:`~repro.runtime.sharding.ShardedArtifactStore`
        federating them behind this same interface.
        """
        if runtime is None:
            return ArtifactStore(None, enabled=False)
        if runtime.shard_dirs:
            from repro.runtime.sharding import ShardedArtifactStore

            return ShardedArtifactStore(runtime.shard_dirs, enabled=runtime.cache)
        return ArtifactStore(runtime.cache_dir, enabled=runtime.persistent)

    # -- addressing -----------------------------------------------------------
    def directory_for(self, kind: str, key: Any) -> Path:
        if self.root is None:
            raise RuntimeError("artifact store has no root directory")
        return self.root / kind / key_hash(key)

    def contains(self, kind: str, key: Any) -> bool:
        if not self.enabled:
            return False
        return (self.directory_for(kind, key) / f"{_MANIFEST}.json").exists()

    def lock_path(self, kind: str, key: Any) -> Path:
        """Advisory-lock file coordinating cross-process work on one key.

        Lives beside the artifacts (under ``<root>/.locks/``), so every
        process that shares the store root agrees on the lock's location; the
        sharded store overrides this to the key's *home shard* for the same
        reason.  The store only names the path — callers wrap it in
        :class:`repro.runtime.locks.AdvisoryLock`.
        """
        if self.root is None:
            raise RuntimeError("artifact store has no root directory")
        return self.root / LOCKS_DIRNAME / f"{kind}-{key_hash(key)}.lock"

    # -- read / write ---------------------------------------------------------
    def open_read(self, kind: str, key: Any) -> Artifact:
        directory = self.directory_for(kind, key)
        if not (directory / f"{_MANIFEST}.json").exists():
            raise KeyError(f"no {kind!r} artifact for key hash {key_hash(key)}")
        return Artifact(directory)

    @contextmanager
    def open_write(self, kind: str, key: Any):
        """Write an artifact atomically: temp dir -> rename on success."""
        if not self.enabled:
            raise RuntimeError("cannot write to a disabled artifact store")
        final = self.directory_for(kind, key)
        final.parent.mkdir(parents=True, exist_ok=True)
        temp = final.parent / f".tmp-{final.name}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        temp.mkdir(parents=True)
        artifact = Artifact(temp)
        try:
            yield artifact
            artifact.save_json(
                _MANIFEST,
                {
                    "kind": kind,
                    "key": canonical_key(key),
                    "format_version": STORE_FORMAT_VERSION,
                },
            )
            if final.exists():
                # a concurrent writer won the race; keep its artifact
                shutil.rmtree(temp, ignore_errors=True)
            else:
                try:
                    os.replace(temp, final)
                except OSError:
                    # a concurrent writer landed between the check and the
                    # rename; first-wins, discard ours
                    shutil.rmtree(temp, ignore_errors=True)
        except BaseException:
            shutil.rmtree(temp, ignore_errors=True)
            raise

    def delete(self, kind: str, key: Any) -> bool:
        """Remove one artifact; ``True`` when something was deleted.

        ``open_write`` keeps an existing destination (first-wins), so a
        caller that must *replace* an artifact — e.g. the verdict cache
        re-auditing a TTL-expired entry — deletes first, then writes.
        """
        if not self.enabled:
            return False
        directory = self.directory_for(kind, key)
        if not directory.exists():
            return False
        shutil.rmtree(directory, ignore_errors=True)
        return True

    # -- maintenance ----------------------------------------------------------
    def touch(self, kind: str, key: Any) -> bool:
        """Stamp an artifact's last-use time (atime-style LRU bookkeeping).

        The manifest's mtime is the recency coordinate :meth:`gc_kind` sorts
        by; every serving-path read (registry store hit, worker hydration)
        touches, so in-use artifacts sort young and survive eviction.
        ``True`` when something was stamped; an absent (or concurrently
        evicted) artifact returns ``False``.
        """
        if not self.enabled:
            return False
        manifest = self.directory_for(kind, key) / f"{_MANIFEST}.json"
        try:
            os.utime(manifest)
        except OSError:
            return False
        return True

    def maintenance_lock(
        self,
        wait_seconds: float = DEFAULT_WAIT_SECONDS,
        stale_seconds: float = DEFAULT_STALE_SECONDS,
    ) -> AdvisoryLock:
        """The advisory lock serialising maintenance passes on this store.

        One well-known path under the root's lock directory, so every process
        (or gateway node) sharing the store agrees on it; the sharded store
        inherits this with its first shard as the root.  Writers do not take
        this lock — in-flight work is instead protected by per-key advisory
        locks and the maintenance grace period.
        """
        if self.root is None:
            raise RuntimeError("artifact store has no root directory")
        path = self.root / LOCKS_DIRNAME / "maintenance.lock"
        return AdvisoryLock(path, stale_seconds=stale_seconds, wait_seconds=wait_seconds)

    def _gc_candidates(self, kind: str) -> Iterator[Tuple[Path, Path]]:
        """Yield ``(artifact_dir, lock_path)`` for every complete ``kind``
        artifact; the artifact directory name *is* the key hash, so the
        per-key lock path is computed without reading manifests."""
        if self.root is None:
            return
        kind_dir = self.root / kind
        if not kind_dir.exists():
            return
        for artifact_dir in sorted(path for path in kind_dir.iterdir() if path.is_dir()):
            if artifact_dir.name.startswith("."):
                continue  # .tmp- staging directories are a live writer's
            if not (artifact_dir / f"{_MANIFEST}.json").exists():
                continue
            lock_path = self.root / LOCKS_DIRNAME / f"{kind}-{artifact_dir.name}.lock"
            yield artifact_dir, lock_path

    @staticmethod
    def _tree_nbytes(directory: Path) -> int:
        total = 0
        for path in sorted(directory.rglob("*")):
            try:
                if path.is_file():
                    total += path.stat().st_size
            except OSError:
                continue  # racing eviction/rewrite; the next pass recounts
        return total

    def gc_kind(
        self,
        kind: str,
        max_bytes: int,
        grace_seconds: float = DEFAULT_GRACE_SECONDS,
        lock_wait_seconds: float = 60.0,
        stale_seconds: float = DEFAULT_STALE_SECONDS,
    ) -> Dict[str, int]:
        """Evict least-recently-used ``kind`` artifacts down to a byte budget.

        Runs under the store's :meth:`maintenance_lock`, so concurrent GC
        passes from other gateway nodes over the same (sharded) store are
        serialised; raises :class:`~repro.runtime.locks.LockTimeout` when the
        lock cannot be had within ``lock_wait_seconds`` (callers doing
        opportunistic GC pass ``0`` and treat the timeout as "someone else is
        already collecting").  Two classes of artifact are never evicted,
        protecting work in flight:

        * artifacts whose per-key advisory lock file exists — a fitter or
          single-flight loader is working under that key right now;
        * artifacts used within ``grace_seconds`` (the serving paths
          :meth:`touch` on every read, so a detector a worker just hydrated
          sorts young).

        Returns eviction statistics; ``bytes_after`` may exceed ``max_bytes``
        when everything over budget is lock- or grace-protected.
        """
        stats = {
            "scanned": 0,
            "bytes_before": 0,
            "bytes_after": 0,
            "evicted": 0,
            "evicted_bytes": 0,
            "skipped_locked": 0,
            "skipped_grace": 0,
        }
        if not self.enabled:
            return stats
        with self.maintenance_lock(
            wait_seconds=lock_wait_seconds, stale_seconds=stale_seconds
        ):
            now = time.time()
            candidates = []
            for artifact_dir, lock_path in self._gc_candidates(kind):
                try:
                    last_used = (artifact_dir / f"{_MANIFEST}.json").stat().st_mtime
                except OSError:
                    continue  # vanished mid-scan
                candidates.append(
                    (last_used, artifact_dir, lock_path, self._tree_nbytes(artifact_dir))
                )
            total = sum(nbytes for _, _, _, nbytes in candidates)
            stats["scanned"] = len(candidates)
            stats["bytes_before"] = total
            # oldest-first (directory name tiebreak keeps the order stable
            # across filesystems with coarse mtime resolution)
            for last_used, artifact_dir, lock_path, nbytes in sorted(
                candidates, key=lambda item: (item[0], item[1].name)
            ):
                if total <= max_bytes:
                    break
                if lock_path.exists():
                    stats["skipped_locked"] += 1
                    continue
                if grace_seconds > 0 and (now - last_used) < grace_seconds:
                    stats["skipped_grace"] += 1
                    continue
                shutil.rmtree(artifact_dir, ignore_errors=True)
                total -= nbytes
                stats["evicted"] += 1
                stats["evicted_bytes"] += nbytes
            stats["bytes_after"] = total
        return stats

    # -- the memoisation primitive --------------------------------------------
    def try_load(self, kind: str, key: Any, load: Callable[[Artifact], Any]) -> Any:
        """The loaded artifact value, or the :data:`MISS` sentinel.

        The sentinel (rather than ``None``) signals absence, so an artefact
        whose legitimate value is ``None`` is served from cache instead of
        rebuilding forever.  A corrupt artifact (e.g. a blob deleted from
        under an intact manifest) is discarded and reported as a miss: the
        caller rebuilds instead of crashing on a half-present directory.
        Every lookup counts exactly one hit or one miss, corrupt path
        included.  Only the concrete I/O / decode errors in
        :data:`CORRUPT_ARTIFACT_ERRORS` are treated as corruption; a bug in
        the ``load`` callback itself propagates to the caller.
        """
        if not self.contains(kind, key):
            self.misses += 1
            return _MISS
        try:
            value = load(self.open_read(kind, key))
        except CORRUPT_ARTIFACT_ERRORS as exc:
            warnings.warn(
                f"discarding corrupt {kind!r} artifact {key_hash(key)}: {exc!r}; rebuilding"
            )
            shutil.rmtree(self.directory_for(kind, key), ignore_errors=True)
            self.misses += 1
            return _MISS
        self.hits += 1
        return value

    def fetch(
        self,
        kind: str,
        key: Any,
        build: Callable[[], Any],
        save: Optional[Callable[[Artifact, Any], None]] = None,
        load: Optional[Callable[[Artifact], Any]] = None,
    ) -> Any:
        """Load the artifact if present, otherwise build (and persist) it.

        ``save``/``load`` translate between the in-memory value and the
        artifact directory; omitting either makes the corresponding direction
        a no-op (the value is built but not persisted / never loaded).
        """
        if load is not None:
            value = self.try_load(kind, key, load)
            if value is not _MISS:
                return value
        else:
            self.misses += 1
        value = build()
        if save is not None and self.enabled:
            with self.open_write(kind, key) as artifact:
                save(artifact, value)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"ArtifactStore(root={str(self.root)!r}, {state}, hits={self.hits}, misses={self.misses})"
