"""Fleet-scale verdict cache: fingerprint-keyed memoisation of audit verdicts.

Production audit traffic is redundant — the same suspicious model is submitted
by many tenants and users — yet every submission pays the full black-box
prompting bill.  The paper's headline efficiency metric is the *query budget*;
memoising verdicts by model-weight fingerprint amortises that budget
fleet-wide, turning a redundant submission from O(full inspection) into
O(hash + load).

Key construction
----------------
A cached verdict is addressed by the triple

``(model fingerprint, detector digest, precision tier)``

* :func:`model_fingerprint` — an order-stable content hash over the model's
  ``state_dict`` arrays plus its architectural metadata (two differently
  *named* uploads of the same weights share a verdict; two differently
  *trained* models never do);
* the **detector digest** — the registry ``key_hash`` of the tenant's fitted
  detector (or :func:`detector_digest` for bare services), so refitting a
  detector invalidates every verdict it produced;
* the **precision tier**, so float32 and float64 deployments never share an
  entry.

Tiers and dedup
---------------
The cache is two-tier: a byte-budgeted in-memory **weighted LRU** (hits carry
weight; each eviction sweep halves every weight, so formerly-hot entries decay
back out) over persistence in the (optionally sharded)
:class:`~repro.runtime.store.ArtifactStore`.  Concurrent submissions of one
fingerprint are **single-flighted**: in-process via a shared future
(:meth:`VerdictCache.begin`), cross-process via the store's
:class:`~repro.runtime.locks.AdvisoryLock` protocol
(:meth:`VerdictCache.compute_through_store`) — two threads *and* two processes
racing on the same model perform exactly one inspection.

Staleness
---------
``ttl_seconds`` bounds the age of a served verdict (both tiers); an expired
store entry is deleted and re-audited.  Detector refits need no TTL: the new
fit changes the detector digest, which changes the key.

The cache assumes the submission's query endpoint is faithful to the
submitted weights — a ``query_function`` that answers differently than the
model's own ``predict_proba`` would make memoisation unsound, exactly as it
would make the verdict itself unsound.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Tuple

from repro.config import RuntimeConfig
from repro.obs.metrics import MetricsRegistry, counter_property, gauge_property
from repro.runtime.locks import AdvisoryLock
from repro.runtime.store import (
    ArtifactStore,
    MISS,
    canonical_key,
    key_hash,
    state_fingerprint,
)

#: artifact kind under which cached verdicts live in the store
VERDICT_KIND = "audit-verdict"

#: bump when the cached-verdict payload layout changes incompatibly
VERDICT_CACHE_FORMAT_VERSION = 1

#: fixed per-entry bookkeeping charge added to the serialized payload size
#: when accounting the in-memory tier against ``max_bytes``
_ENTRY_OVERHEAD_BYTES = 256

#: cache provenance values an :class:`~repro.runtime.service.AuditVerdict`
#: may carry: ``"cold"`` (inspected now), ``"memory"``/``"store"`` (served
#: from a tier), ``"dedup"`` (shared a concurrent submission's inspection)
CACHE_PROVENANCES = ("cold", "memory", "store", "dedup")


def model_fingerprint(model: Any) -> str:
    """Order-stable content digest of a suspicious model.

    Hashes the architectural metadata (architecture, class count, input
    geometry — *not* the display name, which vendors reuse and attackers
    choose) together with the sorted ``state_dict`` arrays via
    :func:`~repro.runtime.store.state_fingerprint`.  Two uploads of the same
    weights under different names share a fingerprint; retraining changes it.
    """
    digest = hashlib.sha256()
    metadata = {
        "architecture": getattr(model, "architecture", None),
        "num_classes": getattr(model, "num_classes", None),
        "image_size": getattr(model, "image_size", None),
        "in_channels": getattr(model, "in_channels", None),
    }
    digest.update(canonical_key(metadata).encode("utf-8"))
    digest.update(state_fingerprint(model.state_dict()).encode("utf-8"))
    return digest.hexdigest()[:20]


def verdict_cache_key(fingerprint: str, detector_digest: str, precision: str) -> Dict[str, Any]:
    """The store key payload addressing one cached verdict.

    Every coordinate is unconditional: the detector digest ties the verdict
    to the exact fitted detector that produced it (a refit bumps the digest
    and invalidates), and the precision tier keeps float32 and float64
    deployments from ever sharing an entry (lint rule K202 enforces both).
    """
    return {
        "fingerprint": str(fingerprint),
        "detector_digest": str(detector_digest),
        "precision": str(precision),
    }


def detector_digest(detector: Any) -> str:
    """Content digest of a fitted detector, for services outside the registry.

    Gateway tenants use their registry entry's ``key_hash`` (which already
    encodes profile/seed/data/precision); a bare
    :class:`~repro.runtime.service.AuditService` has no registry entry, so
    this hashes the state that inspection actually reads: the meta-classifier
    state, the query pool, the decision threshold and the precision tier.
    Refitting the detector changes the meta state, hence the digest.
    """
    digest = hashlib.sha256()
    meta = getattr(detector, "meta_classifier", None)
    if meta is not None and hasattr(meta, "get_state"):
        state, info = meta.get_state()
        digest.update(state_fingerprint(state).encode("utf-8"))
        digest.update(canonical_key(info).encode("utf-8"))
    pool = getattr(meta, "query_pool", None) if meta is not None else None
    if pool is None:
        pool = getattr(detector, "query_images", None)
    if pool is not None:
        images = getattr(pool, "images", pool)
        digest.update(state_fingerprint({"pool": images}).encode("utf-8"))
    runtime = getattr(detector, "runtime", None)
    summary = {
        "threshold": getattr(detector, "threshold", None),
        "seed": getattr(detector, "seed", None),
        "precision": getattr(runtime, "precision", None)
        or getattr(detector, "precision", None),
        "kind": type(detector).__name__,
    }
    digest.update(canonical_key(summary).encode("utf-8"))
    return digest.hexdigest()[:20]


@dataclass
class _MemoryEntry:
    """One in-memory cached verdict with its weighted-LRU bookkeeping."""

    verdict: Any
    created: float
    nbytes: int
    weight: float = 1.0


class VerdictCache:
    """Two-tier, dedup-aware memoisation of audit verdicts.

    Parameters
    ----------
    store:
        Persistence tier (plain or sharded artifact store); ``None`` derives
        one from ``runtime``.  A disabled store leaves the memory tier and
        in-process dedup fully functional (the cache just forgets on restart).
    runtime:
        Source of defaults: ``verdict_cache_bytes`` (memory budget),
        ``verdict_cache_ttl`` (staleness bound) and the advisory-lock tuning
        (``registry_lock_wait``/``registry_lock_stale`` — verdict inspections
        share the registry's cross-process lock discipline).
    max_bytes / ttl_seconds / enabled:
        Explicit overrides of the runtime-derived defaults.
    clock:
        Injectable time source for the TTL policy (tests freeze it); the
        default is wall-clock, which is what artifact ages are measured in.
    """

    #: all tallies live in a mergeable metrics registry (the attribute API
    #: and the ``stats()`` shape are unchanged); ``inspections`` counts cold
    #: inspections actually performed through this cache instance
    memory_bytes = gauge_property("verdict_cache.memory_bytes")
    memory_hits = counter_property("verdict_cache.memory_hits")
    store_hits = counter_property("verdict_cache.store_hits")
    dedup_hits = counter_property("verdict_cache.dedup_hits")
    misses = counter_property("verdict_cache.misses")
    evictions = counter_property("verdict_cache.evictions")
    expirations = counter_property("verdict_cache.expirations")
    inspections = counter_property("verdict_cache.inspections")

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        runtime: Optional[RuntimeConfig] = None,
        max_bytes: Optional[int] = None,
        ttl_seconds: Optional[float] = None,
        enabled: bool = True,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.runtime = runtime
        if store is None:
            store = ArtifactStore.from_config(runtime)
        self.store = store
        if max_bytes is None and runtime is not None:
            max_bytes = runtime.verdict_cache_bytes
        if ttl_seconds is None and runtime is not None:
            ttl_seconds = runtime.verdict_cache_ttl
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self.enabled = bool(enabled)
        self.clock = clock
        self._lock_wait = runtime.registry_lock_wait if runtime is not None else 600.0
        self._lock_stale = runtime.registry_lock_stale if runtime is not None else 3600.0
        self._lock = threading.Lock()
        #: memory tier: key digest -> entry, ordered cold -> hot (LRU order)
        self._entries: "OrderedDict[str, _MemoryEntry]" = OrderedDict()
        #: in-flight leaders: key digest -> shared future of the inspection
        self._inflight: Dict[str, Any] = {}
        self.metrics = MetricsRegistry()
        self.memory_bytes = 0
        self.memory_hits = 0
        self.store_hits = 0
        self.dedup_hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.inspections = 0

    # -- pickling: a worker-process clone shares only the store tier ---------
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_entries"] = OrderedDict()
        state["_inflight"] = {}
        # the clone tallies from zero into its own registry; the owner's
        # counts stay local and the readers merge snapshots
        state["metrics"] = MetricsRegistry()
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- key construction -----------------------------------------------------
    def key_for(self, model: Any, detector_digest: str, precision: str) -> Dict[str, Any]:
        """The cache key for auditing ``model`` with one fitted detector."""
        return verdict_cache_key(model_fingerprint(model), detector_digest, precision)

    # -- serving --------------------------------------------------------------
    @staticmethod
    def served(verdict: Any, name: str, provenance: str) -> Any:
        """A copy of a cached verdict re-labelled for one submission.

        The stored verdict keeps the key it was minted under; each serving
        rewrites the display name to the current submission's key and stamps
        how the verdict was obtained (``cache`` provenance field).
        """
        return replace(verdict, name=name, cache=provenance)

    def lookup(self, key: Dict[str, Any], name: str) -> Optional[Any]:
        """Serve a verdict from the memory or store tier, or ``None``.

        A memory hit bumps the entry's weight (weighted LRU); a store hit
        promotes the verdict into the memory tier.  Expired entries (older
        than ``ttl_seconds``) are dropped — store entries are deleted so the
        re-audit can persist its fresh verdict.
        """
        if not self.enabled:
            return None
        digest = key_hash(key)
        with self._lock:
            entry = self._memory_get(digest)
            if entry is not None:
                self.memory_hits += 1
                entry.weight += 1.0
                return self.served(entry.verdict, name, "memory")
        verdict = self._load_store(key)
        if verdict is None:
            return None
        with self._lock:
            self.store_hits += 1
            self._memory_put(digest, verdict)
        return self.served(verdict, name, "store")

    # -- in-process single flight ---------------------------------------------
    def begin(self, key: Dict[str, Any], name: str):
        """Claim one submission's place in the in-flight dedup protocol.

        Returns one of::

            ("verdict", verdict)   # memory hit — serve immediately
            ("follower", future)   # another submission is inspecting this
                                   # fingerprint; share its future
            ("leader", token)      # this submission owns the inspection;
                                   # finish with complete()/fail()

        The check-and-claim is atomic, so two racing submissions resolve to
        exactly one leader.  The store tier is *not* consulted here (callers
        do a :meth:`lookup` first, and the leader's
        :meth:`compute_through_store` re-checks it cross-process).
        """
        digest = key_hash(key)
        with self._lock:
            entry = self._memory_get(digest)
            if entry is not None:
                self.memory_hits += 1
                entry.weight += 1.0
                return ("verdict", self.served(entry.verdict, name, "memory"))
            shared = self._inflight.get(digest)
            if shared is not None:
                self.dedup_hits += 1
                return ("follower", shared)
            self.misses += 1
            shared = Future()
            self._inflight[digest] = shared
            return ("leader", (digest, key, shared))

    def follow(self, key: Dict[str, Any]) -> Optional[Future]:
        """The in-flight leader's shared future for ``key``, if any.

        Lets a caller that cannot yet commit to leading (e.g. the gateway's
        non-blocking stream top-up, which must not claim leadership before it
        holds a budget slot) join an existing flight without one.
        """
        digest = key_hash(key)
        with self._lock:
            shared = self._inflight.get(digest)
            if shared is not None:
                self.dedup_hits += 1
            return shared

    def complete(self, token: Tuple[str, Dict[str, Any], Any], verdict: Any) -> None:
        """Leader-side success: publish the verdict to memory and followers."""
        digest, _key, shared = token
        with self._lock:
            if verdict.cache == "cold":
                self.inspections += 1
            self._memory_put(digest, verdict)
            self._inflight.pop(digest, None)
        shared.set_result(verdict)

    def fail(self, token: Tuple[str, Dict[str, Any], Any], exc: BaseException) -> None:
        """Leader-side failure: release the claim, propagate to followers."""
        digest, _key, shared = token
        with self._lock:
            self._inflight.pop(digest, None)
        shared.set_exception(exc)

    # -- cross-process single flight ------------------------------------------
    def compute_through_store(
        self, key: Dict[str, Any], name: str, compute: Callable[[], Any]
    ) -> Any:
        """Run one inspection with store write-back and cross-process dedup.

        Executed where the inspection executes (a worker thread or process):
        re-checks the store, then serialises racing processes through the
        key's advisory lock — the loser finds the winner's verdict on disk
        and loads it instead of inspecting.  Without a persistent store this
        degrades to a plain compute (in-process dedup still applies upstream).
        """
        if not self.enabled or not self.store.enabled:
            return compute()
        verdict = self._load_store(key)
        if verdict is not None:
            with self._lock:
                self.store_hits += 1
            return self.served(verdict, name, "store")
        lock = AdvisoryLock(
            self.store.lock_path(VERDICT_KIND, key),
            stale_seconds=self._lock_stale,
            wait_seconds=self._lock_wait,
        )
        with lock:
            verdict = self._load_store(key)
            if verdict is not None:
                with self._lock:
                    self.store_hits += 1
                return self.served(verdict, name, "store")
            verdict = compute()
            self._write_store(key, verdict)
        return verdict

    def store_verdict(self, key: Dict[str, Any], verdict: Any) -> None:
        """Write-back one cold verdict to both tiers.

        Used by the batch :meth:`~repro.runtime.service.AuditService.audit`
        path, which inspects its misses as one parallel fan-out and fills the
        cache afterwards (the streaming paths fill through
        :meth:`complete`/:meth:`compute_through_store` instead).  A store
        entry that landed concurrently is kept (first-wins).
        """
        if not self.enabled:
            return
        with self._lock:
            if getattr(verdict, "cache", "cold") == "cold":
                self.inspections += 1
            self._memory_put(key_hash(key), verdict)
        if self.store.enabled and not self.store.contains(VERDICT_KIND, key):
            self._write_store(key, verdict)

    def record_miss(self) -> None:
        """Count one cold inspection decision made outside :meth:`begin`."""
        with self._lock:
            self.misses += 1

    def record_dedup(self) -> None:
        """Count one submission that shared another's inspection."""
        with self._lock:
            self.dedup_hits += 1

    # -- the one-call synchronous form ----------------------------------------
    def get_or_compute(self, key: Dict[str, Any], name: str, compute: Callable[[], Any]) -> Any:
        """Serve from any tier, deduplicate in flight, or inspect and fill.

        The synchronous composition of the whole protocol, used by the batch
        :class:`~repro.runtime.service.AuditService` and by tests; the
        streaming paths drive :meth:`lookup`/:meth:`begin` asynchronously.
        """
        if not self.enabled:
            return compute()
        verdict = self.lookup(key, name)
        if verdict is not None:
            return verdict
        claim = self.begin(key, name)
        if claim[0] == "verdict":
            return claim[1]
        if claim[0] == "follower":
            shared = claim[1]
            return self.served(shared.result(), name, "dedup")
        token = claim[1]
        try:
            verdict = self.compute_through_store(key, name, compute)
        except BaseException as exc:
            self.fail(token, exc)
            raise
        self.complete(token, verdict)
        return self.served(verdict, name, verdict.cache)

    # -- memory tier (callers hold self._lock) --------------------------------
    def _expired(self, created: float) -> bool:
        return self.ttl_seconds is not None and (self.clock() - created) > self.ttl_seconds

    def _memory_get(self, digest: str) -> Optional[_MemoryEntry]:
        entry = self._entries.get(digest)
        if entry is None:
            return None
        if self._expired(entry.created):
            del self._entries[digest]
            self.memory_bytes -= entry.nbytes
            self.expirations += 1
            return None
        self._entries.move_to_end(digest)
        return entry

    def _memory_put(self, digest: str, verdict: Any) -> None:
        if self.max_bytes == 0:
            return
        canonical = self._canonical_verdict(verdict)
        nbytes = len(canonical_key(self._verdict_payload(canonical))) + _ENTRY_OVERHEAD_BYTES
        stale = self._entries.pop(digest, None)
        if stale is not None:
            self.memory_bytes -= stale.nbytes
        self._entries[digest] = _MemoryEntry(
            verdict=canonical, created=self.clock(), nbytes=nbytes
        )
        self.memory_bytes += nbytes
        if self.max_bytes is None:
            return
        # weighted LRU: evict the lowest-weight entry (LRU order breaks
        # ties), never the entry just inserted; each eviction halves every
        # weight so long-ago-hot entries decay back toward cold
        while self.memory_bytes > self.max_bytes and len(self._entries) > 1:
            victim = min(
                (d for d in self._entries if d != digest),
                key=lambda d: (self._entries[d].weight, self._position(d)),
            )
            removed = self._entries.pop(victim)
            self.memory_bytes -= removed.nbytes
            self.evictions += 1
            for entry in self._entries.values():
                entry.weight *= 0.5

    def _position(self, digest: str) -> int:
        for index, candidate in enumerate(self._entries):
            if candidate == digest:
                return index
        return len(self._entries)

    # -- store tier ------------------------------------------------------------
    @staticmethod
    def _canonical_verdict(verdict: Any):
        """The tier-resident form of a verdict: provenance reset to cold.

        Tiers store what the inspection produced; provenance describes each
        *serving* and is stamped by :meth:`served` on the way out.
        """
        if getattr(verdict, "cache", "cold") != "cold":
            return replace(verdict, cache="cold")
        return verdict

    @staticmethod
    def _verdict_payload(verdict: Any) -> Dict[str, Any]:
        return {
            "name": verdict.name,
            "backdoor_score": float(verdict.backdoor_score),
            "is_backdoored": bool(verdict.is_backdoored),
            "prompted_accuracy": float(verdict.prompted_accuracy),
            "query_count": int(verdict.query_count),
            "query_calls": int(verdict.query_calls),
        }

    def _load_store(self, key: Dict[str, Any]) -> Optional[Any]:
        """The persisted verdict for ``key``, or ``None`` (absent/expired).

        JSON round-trips floats exactly (repr-based), so a loaded verdict is
        bit-identical to the one written.  An entry older than the TTL is
        deleted — :meth:`~repro.runtime.store.ArtifactStore.open_write` keeps
        existing directories, so the re-audit could never land otherwise.
        """
        if not self.store.enabled:
            return None
        document = self.store.try_load(
            VERDICT_KIND, key, lambda artifact: artifact.load_json("verdict")
        )
        if document is MISS:
            return None
        created = float(document.get("created", 0.0))
        if self._expired(created):
            with self._lock:
                self.expirations += 1
            self.store.delete(VERDICT_KIND, key)
            return None
        payload = document["payload"]
        from repro.runtime.service import AuditVerdict

        return AuditVerdict(
            name=payload["name"],
            backdoor_score=payload["backdoor_score"],
            is_backdoored=payload["is_backdoored"],
            prompted_accuracy=payload["prompted_accuracy"],
            query_count=payload["query_count"],
            query_calls=payload["query_calls"],
        )

    def _write_store(self, key: Dict[str, Any], verdict: Any) -> None:
        if not self.store.enabled:
            return
        canonical = self._canonical_verdict(verdict)
        with self.store.open_write(VERDICT_KIND, key) as artifact:
            artifact.save_json(
                "verdict",
                {
                    "format_version": VERDICT_CACHE_FORMAT_VERSION,
                    "created": self.clock(),
                    "key": dict(key),
                    "payload": self._verdict_payload(canonical),
                },
            )

    # -- dashboard -------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Hit/miss/dedup counters plus the memory tier's occupancy."""
        with self._lock:
            hits = self.memory_hits + self.store_hits + self.dedup_hits
            total = hits + self.misses
            return {
                "enabled": self.enabled,
                "memory_hits": self.memory_hits,
                "store_hits": self.store_hits,
                "dedup_hits": self.dedup_hits,
                "misses": self.misses,
                "hit_rate": (hits / total) if total else 0.0,
                "inspections": self.inspections,
                "entries": len(self._entries),
                "memory_bytes": self.memory_bytes,
                "max_bytes": self.max_bytes,
                "ttl_seconds": self.ttl_seconds,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"VerdictCache({state}, entries={len(self._entries)}, "
            f"memory={self.memory_bytes}B, hits="
            f"{self.memory_hits}/{self.store_hits}/{self.dedup_hits}, "
            f"misses={self.misses})"
        )
