"""Tenant worker pools: the gateway's shared dispatch layer, process-capable.

The per-tenant services (:class:`~repro.runtime.service_async.AsyncAuditService`
and the gateway's MNTD sibling) used to each own a thread pool, so gateway
throughput was capped by the GIL plus whatever BLAS releases.  This module
provides the layer that turns "scales within one process" into "scales with
the machine":

* :class:`WorkerPool` — one persistent executor shared by every tenant of an
  :class:`~repro.runtime.gateway.AuditGateway`, with a ``"thread"`` (default),
  ``"process"`` (true multi-core) or ``"serial"`` (inline) backend.  Tenant
  services submit through its shared
  :class:`~repro.runtime.executor.ExecutorSession` instead of opening pools of
  their own.
* :class:`DetectorRef` — a pickle-cheap address of one fitted detector: the
  :func:`~repro.runtime.registry.registry_key` payload plus the spec and a
  runtime describing the shared store.  Process backends ship the *ref*, not
  the detector.
* :func:`resolve_detector` — worker-side hydration: the first task referencing
  a detector loads it from the shared (sharded) store by registry key —
  **warm-loading, never refitting** — and caches it in the worker process, so
  every later task on that worker serves from memory.

Every task function here is module-level: process backends pickle tasks by
qualified name, so closures, lambdas and bound methods would fail at submit
time (repro-lint L201 guards this invariant across ``repro/runtime``).

Determinism: a hydrated detector round-trips with bit-identical scores
(the PR 1 save/load contract), the per-task seed still derives from the
catalogue key inside ``detector.inspect(seed_key=...)``, and query accounting
travels inside the pickled verdict — so process-backend verdicts are
bit-identical to the thread/serial backends.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.config import RuntimeConfig
from repro.datasets.base import ImageDataset
from repro.defenses.model_level import MNTDDefense
from repro.models.classifier import ImageClassifier
from repro.obs.clock import now
from repro.obs.metrics import MetricsRegistry, counter_property
from repro.obs.trace import TraceContext, collect, get_tracer, relative_to
from repro.prompting.blackbox import QueryFunction
from repro.runtime.executor import ExecutorSession
from repro.runtime.registry import DETECTOR_KIND, DetectorSpec, load_detector_artifact
from repro.runtime.service import AuditVerdict
from repro.runtime.store import MISS, ArtifactStore


@dataclass(frozen=True)
class DetectorRef:
    """A store address of one fitted detector, cheap to pickle to workers.

    ``runtime`` describes how a worker reaches the shared store (cache/shard
    roots) and hydrates — the gateway hands out a serial, single-worker
    override so hydration inside a pool worker never opens a nested pool.
    """

    key_hash: str
    key: Dict[str, Any] = field(repr=False)
    spec: DetectorSpec = field(repr=False)
    runtime: RuntimeConfig = field(repr=False)


#: per-process hydrated-detector cache: key_hash -> detector.  Lives at module
#: level so every task dispatched to one worker process shares it; with the
#: fork start method a detector already hydrated in the parent is inherited.
_HYDRATED: Dict[str, Any] = {}
_HYDRATE_LOCK = threading.Lock()


def resolve_detector(ref: DetectorRef) -> Any:
    """The fitted detector a ref addresses, hydrated at most once per process.

    Warm-loading only: the artifact must already exist in the shared store
    (the gateway's ``register_tenant`` fitted-or-loaded it before any task
    could reference it), so a miss here is an environment error — e.g. a
    worker pointed at the wrong store — and never triggers a refit.
    """
    with _HYDRATE_LOCK:
        detector = _HYDRATED.get(ref.key_hash)
        if detector is not None:
            return detector
        store = ArtifactStore.from_config(ref.runtime)
        detector = store.try_load(
            DETECTOR_KIND,
            ref.key,
            lambda artifact: load_detector_artifact(artifact, ref.spec, ref.runtime),
        )
        if detector is MISS:
            raise RuntimeError(
                f"worker cannot hydrate detector {ref.key_hash}: no "
                f"{DETECTOR_KIND!r} artifact in the store at "
                f"{ref.runtime.cache_dir or ref.runtime.shard_dirs!r} — refitting "
                "in a pool worker is forbidden (the gateway fits before dispatch)"
            )
        # stamp last-use so the disk-budget GC never evicts a detector that
        # live workers are serving from
        store.touch(DETECTOR_KIND, ref.key)
        _HYDRATED[ref.key_hash] = detector
        return detector


# ---------------------------------------------------------------------------
# module-level pool tasks (process backends pickle these by qualified name)
# ---------------------------------------------------------------------------

def _audit_task(
    detector: Any,
    key: str,
    model: ImageClassifier,
    query_function: Optional[QueryFunction],
) -> AuditVerdict:
    """One BPROM inspection; the per-task seed derives from the catalogue key."""
    result = detector.inspect(model, query_function=query_function, seed_key=key)
    return AuditVerdict(
        name=key,
        backdoor_score=result.backdoor_score,
        is_backdoored=result.is_backdoored,
        prompted_accuracy=result.prompted_accuracy,
        query_count=result.query_count,
        query_calls=result.query_calls,
    )


def _ref_audit_task(
    ref: DetectorRef,
    key: str,
    model: ImageClassifier,
    query_function: Optional[QueryFunction],
) -> AuditVerdict:
    """BPROM inspection against a :class:`DetectorRef` (process backend)."""
    return _audit_task(resolve_detector(ref), key, model, query_function)


def _mntd_audit_task(
    defense: MNTDDefense, clean_data: ImageDataset, key: str, model: ImageClassifier
) -> AuditVerdict:
    """One MNTD scoring pass: a query batch plus the meta-forest vote."""
    score = float(defense.score_model(model, clean_data))
    return AuditVerdict(
        name=key,
        backdoor_score=score,
        is_backdoored=score >= defense.threshold,
        prompted_accuracy=float("nan"),
    )


def _ref_mntd_audit_task(
    ref: DetectorRef, clean_data: ImageDataset, key: str, model: ImageClassifier
) -> AuditVerdict:
    """MNTD scoring against a :class:`DetectorRef` (process backend)."""
    return _mntd_audit_task(resolve_detector(ref), clean_data, key, model)


def _traced_task(ctx: TraceContext, fn: Callable[..., Any], *args: Any) -> Any:
    """Run a pool task under a per-task span sink parented on ``ctx``.

    Works on any backend: the sink is a ContextVar, so thread-backend tasks
    never interleave spans, and on the process backend the worker's globally
    *disabled* tracer still collects into the sink.  Spans ship back on the
    verdict as offsets from task entry (monotonic clocks do not compare
    across processes); the gateway rebases them onto its own clock at
    harvest.  Only a cold verdict carries spans — a memoised verdict's work
    happened in some earlier trace.
    """
    t0 = now()
    with collect(ctx) as spans:
        with get_tracer().span("pool.execute"):
            verdict = fn(*args)
    if getattr(verdict, "cache", "cold") == "cold" and hasattr(verdict, "spans"):
        verdict.spans = relative_to(spans, t0)
    return verdict


# ---------------------------------------------------------------------------
# the shared pool
# ---------------------------------------------------------------------------

class _CountingSession(ExecutorSession):
    """An :class:`ExecutorSession` that books every submit on its pool."""

    def __init__(self, pool, owner: "WorkerPool") -> None:
        super().__init__(pool)
        self._owner = owner

    def submit(self, fn: Callable[..., Any], *args) -> Future:
        self._owner._count_task()
        return super().submit(fn, *args)


class WorkerPool:
    """One persistent executor shared by every tenant of a gateway.

    The pool is created lazily on first :meth:`session` call and stays alive
    until :meth:`close`; tenant services share its session, so the machine's
    parallelism is one dial (``workers``) rather than per-tenant pools
    multiplying.  ``backend="process"`` requires that submitted tasks be
    module-level callables with picklable arguments — tenant services submit
    :class:`DetectorRef`-based tasks for exactly this reason.

    Thread-safe: concurrent first submits race on one lock, so exactly one
    pool is ever created.
    """

    #: tasks submitted through the shared session (for :meth:`stats`);
    #: backed by the mergeable metrics registry
    tasks = counter_property("pool.tasks")

    def __init__(self, workers: int = 1, backend: str = "thread") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown worker-pool backend {backend!r}")
        self.workers = int(workers)
        self.backend = backend
        self._pool = None
        self._session: Optional[ExecutorSession] = None
        self._lock = threading.Lock()
        self._closed = False
        self.metrics = MetricsRegistry()
        self.tasks = 0

    @classmethod
    def from_config(cls, runtime: Optional[RuntimeConfig]) -> "WorkerPool":
        if runtime is None:
            return cls(1, "thread")
        return cls(
            workers=runtime.gateway_workers or runtime.workers,
            backend=runtime.gateway_backend,
        )

    @property
    def parallel(self) -> bool:
        """Whether submitted tasks actually run concurrently."""
        return self.backend != "serial" and self.workers > 1

    @property
    def started(self) -> bool:
        """Whether the shared session (and any pool behind it) exists yet."""
        with self._lock:
            return self._session is not None

    def _count_task(self) -> None:
        with self._lock:
            self.tasks += 1

    def session(self) -> ExecutorSession:
        """The shared session; created (with its pool) on first call."""
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if self._session is None:
                if self.parallel:
                    pool_cls = (
                        ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
                    )
                    self._pool = pool_cls(max_workers=self.workers)
                # a serial/one-worker pool yields an inline (poolless) session,
                # preserving the old synchronous-submit behaviour exactly
                self._session = _CountingSession(self._pool, self)
            return self._session

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "backend": self.backend,
                "workers": self.workers,
                "started": self._session is not None,
                "tasks": self.tasks,
            }

    def close(self) -> None:
        """Drain outstanding tasks and shut the pool down (idempotent)."""
        with self._lock:
            self._closed = True
            pool, self._pool, self._session = self._pool, None, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerPool(workers={self.workers}, backend={self.backend!r}, "
            f"tasks={self.tasks})"
        )
