"""Shared utilities: seeded RNG management, timing, validation and serialization."""

from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_image_batch,
    check_labels,
    check_positive_int,
)

__all__ = [
    "RngMixin",
    "new_rng",
    "spawn_rngs",
    "Timer",
    "check_fraction",
    "check_image_batch",
    "check_labels",
    "check_positive_int",
]
