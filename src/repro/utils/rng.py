"""Deterministic random number generation helpers.

Every stochastic component in the library (dataset synthesis, model
initialisation, poisoning, prompt optimisation, defenses) takes either a seed
or an already-constructed :class:`numpy.random.Generator`.  Centralising the
conversion here keeps experiments reproducible: a single integer seed at the
top of an experiment fans out into independent generators for each component.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def normalize_seed(seed: SeedLike) -> int:
    """Collapse any :data:`SeedLike` value into a concrete integer seed.

    ``None`` maps to 0, integers pass through unchanged, and a generator
    contributes one draw from its stream (so distinct generator states yield
    distinct — but still reproducible — child seeds instead of silently
    collapsing to 0).
    """
    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**31 - 1))
    raise TypeError(f"cannot derive a seed from {type(seed).__name__}")


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator or ``None``.

    Passing an existing generator returns it unchanged so callers can share a
    stream; passing ``None`` produces a non-deterministic generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = new_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def _stable_hash(salt) -> int:
    """Process-independent 63-bit hash of a salt value.

    ``hash()`` is randomized per interpreter process for strings, which would
    make derived seeds — and therefore every artifact produced from them —
    irreproducible across runs.  Hashing the ``repr`` with blake2b keeps the
    derivation stable for the int/str/float/tuple salts used in the library.
    """
    digest = hashlib.blake2b(repr(salt).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % (2**63)


def derive_seed(seed: SeedLike, *salts: Iterable) -> int:
    """Derive a stable child seed from a parent seed and hashable salts.

    Used when a component needs a reproducible seed that depends on, e.g., the
    shadow-model index.  The derivation is stable across interpreter processes
    (no reliance on randomized ``hash()``), which is what allows the artifact
    store to reuse trained models between runs.
    """
    base = normalize_seed(seed)
    mask = (1 << 64) - 1
    h = (int(base) * 0x9E3779B97F4A7C15) & mask
    for salt in salts:
        h = ((h ^ _stable_hash(salt)) * 0xC2B2AE3D27D4EB4F) & mask
    return int(h % (2**31 - 1))


class RngMixin:
    """Mixin that stores a generator created from a flexible ``seed`` argument."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = new_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def reseed(self, seed: Optional[int]) -> None:
        """Replace the generator; useful for re-running a component deterministically."""
        self._rng = new_rng(seed)
