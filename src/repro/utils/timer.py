"""A tiny wall-clock timer used by the experiment harness and examples."""

from __future__ import annotations

import time
from typing import Dict, Optional


class Timer:
    """Context-manager timer that accumulates named durations.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("train"):
    ...     pass
    >>> timer.total("train") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._start: Optional[float] = None
        self._label: Optional[str] = None

    def measure(self, label: str) -> "Timer":
        self._label = label
        return self

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is None or self._label is None:
            return
        elapsed = time.perf_counter() - self._start
        self._totals[self._label] = self._totals.get(self._label, 0.0) + elapsed
        self._start = None
        self._label = None

    def total(self, label: str) -> float:
        """Accumulated seconds recorded under ``label`` (0.0 if never recorded)."""
        return self._totals.get(label, 0.0)

    def totals(self) -> Dict[str, float]:
        """A copy of all accumulated durations."""
        return dict(self._totals)
