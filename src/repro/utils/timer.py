"""Named-duration accumulator over the shared :mod:`repro.obs` clock.

The bench/example-facing face of one timing primitive: the
:class:`~repro.obs.clock.Stopwatch` measures the interval, the Timer only
accumulates it under a label (benches keep their existing output fields).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.clock import Stopwatch


class Timer:
    """Context-manager timer that accumulates named durations.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("train"):
    ...     pass
    >>> timer.total("train") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._watch = Stopwatch()
        self._label: Optional[str] = None

    def measure(self, label: str) -> "Timer":
        self._label = label
        return self

    def __enter__(self) -> "Timer":
        self._watch.start()
        return self

    def __exit__(self, *exc) -> None:
        if not self._watch.running or self._label is None:
            return
        self._totals[self._label] = self._totals.get(self._label, 0.0) + self._watch.stop()
        self._label = None

    def total(self, label: str) -> float:
        """Accumulated seconds recorded under ``label`` (0.0 if never recorded)."""
        return self._totals.get(label, 0.0)

    def totals(self) -> Dict[str, float]:
        """A copy of all accumulated durations."""
        return dict(self._totals)
