"""Input validation helpers shared across the library.

These raise early, descriptive errors instead of letting malformed arrays
propagate into numpy broadcasting surprises deep inside training loops.
"""

from __future__ import annotations

import numpy as np


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_fraction(value: float, name: str, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` lies in (0, 1] (or [0, 1] when ``allow_zero``)."""
    value = float(value)
    low_ok = value >= 0.0 if allow_zero else value > 0.0
    if not (low_ok and value <= 1.0):
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value}")
    return value


def check_image_batch(x: np.ndarray, name: str = "x") -> np.ndarray:
    """Validate an NCHW float image batch and return it as float64/float32."""
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"{name} must have shape (N, C, H, W), got shape {x.shape}")
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(np.float64)
    return x


def check_labels(y: np.ndarray, num_classes: int | None = None, name: str = "y") -> np.ndarray:
    """Validate an integer label vector, optionally bounding it by ``num_classes``."""
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"{name} must be a 1-D label vector, got shape {y.shape}")
    if not np.issubdtype(y.dtype, np.integer):
        if np.any(y != np.floor(y)):
            raise ValueError(f"{name} must contain integer labels")
        y = y.astype(np.int64)
    if num_classes is not None:
        if y.size and (y.min() < 0 or y.max() >= num_classes):
            raise ValueError(
                f"{name} labels must be in [0, {num_classes}), got range "
                f"[{y.min()}, {y.max()}]"
            )
    return y.astype(np.int64)
