"""Shared fixtures: a micro experiment profile and tiny datasets/models.

Everything here is sized so the full test suite runs in a few minutes on a
single CPU core; the micro profile uses the MLP architecture, which trains in
milliseconds, for the end-to-end pipeline tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ExperimentProfile, PromptConfig, TrainingConfig
from repro.datasets.base import ImageDataset
from repro.datasets.synthetic import SyntheticImageDistribution, SyntheticStyle
from repro.models.registry import build_classifier

MICRO_PROFILE = ExperimentProfile(
    name="micro",
    image_size=12,
    train_per_class=12,
    test_per_class=8,
    max_classes=5,
    reserved_fraction=0.10,
    clean_shadow_models=2,
    backdoor_shadow_models=2,
    clean_suspicious_models=2,
    backdoor_suspicious_models=2,
    query_samples=4,
    meta_trees=10,
    classifier=TrainingConfig(epochs=6, batch_size=16, learning_rate=1e-2),
    prompt=PromptConfig(
        source_size=12,
        inner_size=8,
        epochs=4,
        batch_size=16,
        learning_rate=5e-2,
        blackbox_iterations=5,
        blackbox_population=4,
    ),
)


@pytest.fixture(scope="session")
def micro_profile() -> ExperimentProfile:
    return MICRO_PROFILE


@pytest.fixture(scope="session")
def tiny_distribution() -> SyntheticImageDistribution:
    return SyntheticImageDistribution(
        num_classes=4,
        image_size=12,
        channels=3,
        style=SyntheticStyle(style_seed=7),
        name="tiny",
    )


@pytest.fixture(scope="session")
def tiny_dataset(tiny_distribution) -> ImageDataset:
    return tiny_distribution.sample(per_class=10, rng=0)


@pytest.fixture(scope="session")
def tiny_test_dataset(tiny_distribution) -> ImageDataset:
    return tiny_distribution.sample(per_class=6, rng=1)


@pytest.fixture(scope="session")
def trained_mlp(tiny_dataset):
    """A small MLP classifier trained on the tiny dataset (shared across tests)."""
    classifier = build_classifier(
        "mlp", tiny_dataset.num_classes, image_size=tiny_dataset.image_size, rng=0
    )
    classifier.fit(
        tiny_dataset, TrainingConfig(epochs=10, batch_size=16, learning_rate=1e-2), rng=1
    )
    return classifier


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
