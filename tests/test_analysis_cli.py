"""Engine/CLI tests: suppressions, baselines, output formats, and the
regression guarantee that the real tree lints clean."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import fingerprint, lint_paths, lint_source, load_baseline, write_baseline
from repro.analysis.__main__ import main
from repro.analysis.baseline import split_new

REPO_ROOT = Path(__file__).resolve().parent.parent

BAD_SOURCE = textwrap.dedent(
    """
    import numpy as np
    x = np.random.rand(3)
    """
)


# -- suppressions -------------------------------------------------------------


def test_suppression_with_reason_silences_finding():
    source = textwrap.dedent(
        """
        import numpy as np
        x = np.random.rand(3)  # repro-lint: disable=D101 -- fixture exercising legacy path
        """
    )
    result = lint_source(source, "src/repro/core/fixture.py")
    assert result.ok
    assert [f.rule for f in result.suppressed] == ["D101"]


def test_suppression_without_reason_is_itself_a_finding():
    source = textwrap.dedent(
        """
        import numpy as np
        x = np.random.rand(3)  # repro-lint: disable=D101
        """
    )
    result = lint_source(source, "src/repro/core/fixture.py")
    # the D101 is silenced, but the bare mute is reported
    assert [f.rule for f in result.findings] == ["S001"]
    assert [f.rule for f in result.suppressed] == ["D101"]


def test_suppression_only_covers_named_rules():
    source = textwrap.dedent(
        """
        import numpy as np
        x = np.random.rand(3)  # repro-lint: disable=D105 -- wrong rule named
        """
    )
    result = lint_source(source, "src/repro/core/fixture.py")
    assert [f.rule for f in result.findings] == ["D101"]


def test_suppression_disable_all():
    source = textwrap.dedent(
        """
        import numpy as np
        x = np.random.rand(3)  # repro-lint: disable=all -- fixture
        """
    )
    result = lint_source(source, "src/repro/core/fixture.py")
    assert result.ok


def test_parse_error_reported():
    result = lint_source("def broken(:\n", "src/repro/core/fixture.py")
    assert [f.rule for f in result.findings] == ["X001"]


# -- baseline round-trip ------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    result = lint_source(BAD_SOURCE, "src/repro/core/fixture.py")
    assert not result.ok

    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, result.findings)
    tolerated = load_baseline(baseline_file)
    assert sum(tolerated.values()) == len(result.findings)

    new, baselined = split_new(result.findings, tolerated)
    assert new == []
    assert len(baselined) == len(result.findings)


def test_baseline_fingerprint_survives_line_drift():
    before = lint_source(BAD_SOURCE, "src/repro/core/fixture.py")
    shifted = "# a new comment line\n" + BAD_SOURCE
    after = lint_source(shifted, "src/repro/core/fixture.py")
    assert fingerprint(before.findings[0]) == fingerprint(after.findings[0])


def test_baseline_does_not_cover_new_findings(tmp_path):
    result = lint_source(BAD_SOURCE, "src/repro/core/fixture.py")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, result.findings)

    grown = BAD_SOURCE + "y = np.random.randn(2)\n"
    regrown = lint_source(grown, "src/repro/core/fixture.py")
    new, baselined = split_new(regrown.findings, load_baseline(baseline_file))
    assert len(baselined) == 1
    assert len(new) == 1 and "randn" in new[0].line_text


# -- CLI ----------------------------------------------------------------------


def _write_fixture_tree(tmp_path: Path, source: str) -> Path:
    module = tmp_path / "src" / "repro" / "core" / "fixture.py"
    module.parent.mkdir(parents=True)
    module.write_text(source)
    return module


def test_cli_exit_codes(tmp_path, capsys, monkeypatch):
    module = _write_fixture_tree(tmp_path, BAD_SOURCE)
    monkeypatch.chdir(tmp_path)

    assert main([str(module)]) == 1
    assert "D101" in capsys.readouterr().out

    module.write_text("x = 1\n")
    assert main([str(module)]) == 0


def test_cli_baseline_flow(tmp_path, capsys, monkeypatch):
    module = _write_fixture_tree(tmp_path, BAD_SOURCE)
    monkeypatch.chdir(tmp_path)
    baseline = tmp_path / "baseline.json"

    assert main([str(module), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main([str(module), "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys, monkeypatch):
    module = _write_fixture_tree(tmp_path, BAD_SOURCE)
    monkeypatch.chdir(tmp_path)
    assert main([str(module), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "D101"


def test_cli_select_and_ignore(tmp_path, capsys, monkeypatch):
    module = _write_fixture_tree(tmp_path, BAD_SOURCE)
    monkeypatch.chdir(tmp_path)
    assert main([str(module), "--select", "P"]) == 0
    capsys.readouterr()
    assert main([str(module), "--ignore", "D101"]) == 0


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("D101", "P103", "K201", "L302", "S001", "X001"):
        assert rule_id in out


# -- the regression guarantee -------------------------------------------------


def test_src_tree_lints_clean():
    """`python -m repro.analysis src/` must stay clean with no baseline."""
    result = lint_paths([REPO_ROOT / "src"])
    assert result.files > 100
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, f"repro-lint findings in src/:\n{rendered}"


def test_module_entry_point_runs_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout
